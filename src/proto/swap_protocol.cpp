#include "swap_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "chain/auditor.hpp"
#include "crypto/secret.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oracle.hpp"

namespace swapgame::proto {

const char* to_string(SwapOutcome outcome) noexcept {
  switch (outcome) {
    case SwapOutcome::kNotInitiated:
      return "not-initiated";
    case SwapOutcome::kBobDeclinedT2:
      return "bob-declined-t2";
    case SwapOutcome::kAliceDeclinedT3:
      return "alice-declined-t3";
    case SwapOutcome::kBobMissedT4:
      return "bob-missed-t4";
    case SwapOutcome::kSuccess:
      return "success";
    case SwapOutcome::kAliceLostAtomicity:
      return "alice-lost-atomicity";
    case SwapOutcome::kBobLostAtomicity:
      return "bob-lost-atomicity";
    case SwapOutcome::kTimelockExpiredBoth:
      return "timelock-expired-both";
    case SwapOutcome::kFaultAborted:
      return "fault-aborted";
  }
  return "unknown";
}

namespace {

using chain::Hours;

/// One protocol execution.  Owns the event queue, both ledgers and (when
/// collateralized) the oracle; drives the four decision steps.
class SwapRun {
 public:
  SwapRun(const SwapSetup& setup, agents::Strategy& alice,
          agents::Strategy& bob, const PricePath& path)
      : setup_(setup), alice_strategy_(&alice), bob_strategy_(&bob),
        path_(&path), schedule_(model::idealized_schedule(setup.params, 0.0)),
        latency_rng_a_(setup.latency_seed),
        latency_rng_b_(setup.latency_seed ^ 0x517CC1B727220A95ULL),
        chain_a_(make_chain_a_params(setup), queue_, &latency_rng_a_),
        chain_b_(make_chain_b_params(setup), queue_, &latency_rng_b_) {
    if (!(setup_.expiry_margin >= 0.0) || !std::isfinite(setup_.expiry_margin)) {
      throw std::invalid_argument("run_swap: expiry_margin must be >= 0");
    }
    // Shift the HTLC expiries (and thus the failure-path receipts) by the
    // safety margin; decision epochs stay on the idealized schedule.
    schedule_.t_a += setup_.expiry_margin;
    schedule_.t_b += setup_.expiry_margin;
    schedule_.t7 = schedule_.t_b + setup_.params.tau_b;
    schedule_.t8 = schedule_.t_a + setup_.params.tau_a;
    if (!(setup_.p_star > 0.0) || !std::isfinite(setup_.p_star)) {
      throw std::invalid_argument("run_swap: p_star must be positive");
    }
    if (!(setup_.collateral >= 0.0) || !std::isfinite(setup_.collateral)) {
      throw std::invalid_argument("run_swap: collateral must be >= 0");
    }
    if (!(setup_.premium >= 0.0) || !std::isfinite(setup_.premium)) {
      throw std::invalid_argument("run_swap: premium must be >= 0");
    }
    const double q = setup_.collateral;
    chain_a_.create_account(kAlice, chain::Amount::from_tokens(
                                        setup_.p_star + q + setup_.premium +
                                        setup_.alice_extra_token_a));
    chain_a_.create_account(kBob, chain::Amount::from_tokens(
                                      q + setup_.bob_extra_token_a));
    chain_b_.create_account(kAlice, chain::Amount{});
    chain_b_.create_account(kBob, chain::Amount::from_tokens(1.0));
    initial_supply_a_ = chain_a_.total_supply();
    initial_supply_b_ = chain_b_.total_supply();

    // Fault injectors are attached only when their model is active, so a
    // zero-fault run is byte-identical to one without any fault plumbing.
    if (setup_.faults.chain_a.any()) {
      injector_a_.emplace(setup_.faults.chain_a, setup_.faults.seed);
      chain_a_.set_fault_injector(&*injector_a_);
    }
    if (setup_.faults.chain_b.any()) {
      injector_b_.emplace(setup_.faults.chain_b,
                          setup_.faults.seed ^ 0x9E3779B97F4A7C15ULL);
      chain_b_.set_fault_injector(&*injector_b_);
    }
    if (setup_.audit) {
      auditor_a_.attach(chain_a_);
      auditor_b_.attach(chain_b_);
    }
    if (setup_.metrics != nullptr) queue_.set_metrics(setup_.metrics);
    if (setup_.trace != nullptr) {
      chain_a_.set_trace(setup_.trace);
      chain_b_.set_trace(setup_.trace);
      if (injector_a_) {
        injector_a_->set_trace(setup_.trace,
                               chain::to_string(chain::ChainId::kChainA));
      }
      if (injector_b_) {
        injector_b_->set_trace(setup_.trace,
                               chain::to_string(chain::ChainId::kChainB));
      }
      setup_.trace->record(0.0, obs::TraceKind::kRunStart,
                           {{"p_star", setup_.p_star},
                            {"collateral", setup_.collateral},
                            {"premium", setup_.premium},
                            {"t_a", schedule_.t_a},
                            {"t_b", schedule_.t_b},
                            {"expiry_margin", setup_.expiry_margin},
                            {"faults", setup_.faults.any()}});
    }
  }

  SwapResult execute() {
    at_t1();
    queue_.run();  // drain confirmations, refunds and oracle releases
    return finalize();
  }

 private:
  static chain::ChainParams make_chain_a_params(const SwapSetup& setup) {
    // The model has no mempool-visibility parameter for Chain_a (nothing in
    // the game reads Chain_a's mempool); reuse eps_b where it fits, else
    // half the confirmation time.
    const model::SwapParams& p = setup.params;
    chain::ChainParams cp;
    cp.id = chain::ChainId::kChainA;
    cp.confirmation_time = p.tau_a;
    cp.mempool_visibility = p.eps_b < p.tau_a ? p.eps_b : 0.5 * p.tau_a;
    cp.confirmation_jitter = setup.confirmation_jitter_a;
    return cp;
  }

  static chain::ChainParams make_chain_b_params(const SwapSetup& setup) {
    const model::SwapParams& p = setup.params;
    chain::ChainParams cp;
    cp.id = chain::ChainId::kChainB;
    cp.confirmation_time = p.tau_b;
    cp.mempool_visibility = p.eps_b;
    cp.confirmation_jitter = setup.confirmation_jitter_b;
    return cp;
  }

  void log(const std::string& what) {
    std::ostringstream os;
    os << "[t=" << queue_.now() << "h] " << what;
    audit_.push_back(os.str());
  }

  agents::DecisionContext context() const {
    return {path_->price_at(queue_.now()), setup_.p_star, queue_.now()};
  }

  /// Records a decision epoch with its full game-theoretic context: who
  /// moved, at which stage, what they saw (price vs. the agreed rate) and
  /// the closed-form rule that produced the action.  The rule string is
  /// only computed on traced runs.
  void trace_decision(const char* party, agents::Strategy& strategy,
                      agents::Stage stage, const agents::DecisionContext& ctx,
                      model::Action action) {
    if (setup_.trace == nullptr) return;
    setup_.trace->record(queue_.now(), obs::TraceKind::kDecision,
                         {{"party", party},
                          {"stage", agents::to_string(stage)},
                          {"strategy", std::string(strategy.name())},
                          {"action", std::string(model::to_string(action))},
                          {"price", ctx.price},
                          {"p_star", ctx.p_star},
                          {"rule", strategy.decision_rule(stage)}});
  }

  // --- Fault-tolerant broadcasting. ---------------------------------------
  /// A tracked transaction is re-submitted (with backoff) when the fault
  /// model drops it; `id` always points at the most recent broadcast.
  struct TrackedTx {
    chain::TxId id;
    int rebroadcasts = 0;
    bool abandoned = false;  ///< gave up re-broadcasting before the deadline
  };
  using TrackedPtr = std::shared_ptr<TrackedTx>;

  TrackedPtr submit_tracked(chain::Ledger& chain, chain::TxPayload payload,
                            Hours deadline) {
    auto tracked = std::make_shared<TrackedTx>();
    tracked->id = chain.submit(payload);
    watch_broadcast(chain, tracked, std::move(payload), deadline, 0);
    return tracked;
  }

  /// The sender detects a drop once the transaction fails to appear in the
  /// mempool (one visibility period after broadcast) and re-broadcasts with
  /// exponential backoff until `deadline` (the relevant HTLC expiry, past
  /// which a landing would be useless anyway).
  void watch_broadcast(chain::Ledger& chain, const TrackedPtr& tracked,
                       chain::TxPayload payload, Hours deadline, int attempt) {
    if (chain.transaction(tracked->id).status != chain::TxStatus::kDropped) {
      return;
    }
    const Hours eps = chain.params().mempool_visibility;
    const Hours backoff = eps * static_cast<double>(1 << std::min(attempt, 4));
    const Hours retry_at = queue_.now() + eps + backoff;
    if (retry_at >= deadline) {
      tracked->abandoned = true;
      log("broadcast lost and deadline too close to retry; giving up");
      if (setup_.trace != nullptr) {
        setup_.trace->record(queue_.now(), obs::TraceKind::kBroadcastAbandoned,
                             {{"chain", chain::to_string(chain.params().id)},
                              {"attempts", tracked->rebroadcasts},
                              {"deadline", deadline}});
      }
      return;
    }
    queue_.schedule_at(
        retry_at, [this, &chain, tracked, payload = std::move(payload),
                   deadline, attempt]() mutable {
          tracked->id = chain.submit(payload);
          ++tracked->rebroadcasts;
          ++rebroadcasts_;
          log("re-broadcast after drop (attempt " +
              std::to_string(attempt + 1) + ")");
          if (setup_.trace != nullptr) {
            setup_.trace->record(queue_.now(), obs::TraceKind::kRebroadcast,
                                 {{"chain", chain::to_string(chain.params().id)},
                                  {"tx", tracked->id.value},
                                  {"attempt", attempt + 1}});
          }
          watch_broadcast(chain, tracked, std::move(payload), deadline,
                          attempt + 1);
        });
  }

  enum class WaitFor { kConfirmation, kVisibility };

  /// Schedules `step` for when `tracked` is confirmed (or failed) /
  /// mempool-visible.  Without a drop this is exactly max(earliest, ready
  /// time) -- identical to the pre-fault scheduling, so zero-fault runs are
  /// unchanged.  While re-broadcasts are in flight it polls each eps+tau;
  /// once the horizon passes (or re-broadcasting was abandoned) it runs the
  /// step regardless, letting the normal verification-failure / timeout
  /// paths classify the wreckage.
  void advance_when(WaitFor what, chain::Ledger& chain,
                    const TrackedPtr& tracked, Hours earliest, Hours horizon,
                    std::function<void()> step) {
    const chain::Transaction& tx = chain.transaction(tracked->id);
    if (tx.status != chain::TxStatus::kDropped) {
      const Hours ready =
          what == WaitFor::kConfirmation ? tx.confirmed_at : tx.visible_at;
      queue_.schedule_at(std::max({earliest, ready, queue_.now()}),
                         std::move(step));
      return;
    }
    if (tracked->abandoned || queue_.now() >= horizon) {
      queue_.schedule_at(std::max(earliest, queue_.now()), std::move(step));
      return;
    }
    const Hours recheck = queue_.now() + chain.params().mempool_visibility +
                          chain.params().confirmation_time;
    queue_.schedule_at(recheck,
                       [this, what, &chain, tracked, earliest, horizon,
                        step = std::move(step)]() mutable {
                         advance_when(what, chain, tracked, earliest, horizon,
                                      std::move(step));
                       });
  }

  /// True (and the epoch re-scheduled for the window's end) when the acting
  /// party is inside one of its offline windows.
  bool defer_while_offline(const std::vector<chain::FaultWindow>& windows,
                           void (SwapRun::*step)(), const char* who) {
    const Hours online = chain::first_time_outside(windows, queue_.now());
    if (online <= queue_.now()) return false;
    log(std::string(who) + " is offline; epoch deferred to t=" +
        std::to_string(online));
    if (setup_.trace != nullptr) {
      setup_.trace->record(queue_.now(), obs::TraceKind::kOffline,
                           {{"party", who}, {"until", online}});
    }
    queue_.schedule_at(online, [this, step] { (this->*step)(); });
    return true;
  }

  // --- t1: Alice initiates (and with collateral, both engage). ------------
  void at_t1() {
    if (defer_while_offline(setup_.faults.alice_offline, &SwapRun::at_t1,
                            "alice")) {
      return;
    }
    if (setup_.collateral > 0.0 &&
        defer_while_offline(setup_.faults.bob_offline, &SwapRun::at_t1,
                            "bob")) {
      return;
    }
    const agents::DecisionContext ctx = context();
    const model::Action alice_move =
        alice_strategy_->decide(agents::Stage::kT1Initiate, ctx);
    trace_decision("alice", *alice_strategy_, agents::Stage::kT1Initiate, ctx,
                   alice_move);
    model::Action bob_move = model::Action::kCont;
    if (setup_.collateral > 0.0) {
      // Section IV: engagement is a simultaneous decision at t1.
      bob_move = bob_strategy_->decide(agents::Stage::kT1Initiate, ctx);
      trace_decision("bob", *bob_strategy_, agents::Stage::kT1Initiate, ctx,
                     bob_move);
    }
    if (alice_move == model::Action::kStop || bob_move == model::Action::kStop) {
      outcome_ = SwapOutcome::kNotInitiated;
      log("t1: swap not initiated (alice=" +
          std::string(model::to_string(alice_move)) + ", bob=" +
          std::string(model::to_string(bob_move)) + ")");
      return;
    }

    if (setup_.collateral > 0.0) {
      const chain::Amount q = chain::Amount::from_tokens(setup_.collateral);
      chain_a_.charge_collateral(kAlice, q);
      chain_a_.charge_collateral(kBob, q);
      oracle_.emplace(queue_, chain_a_, chain_b_, kAlice, kBob, q);
      log("t1: oracle charged both collaterals (" + q.to_string() +
          " token-a each)");
    }

    math::Xoshiro256 rng(setup_.secret_seed);
    secret_ = crypto::Secret::generate(rng);
    hash_ = secret_.commitment();
    if (oracle_) oracle_->arm(hash_, schedule_);

    deploy_a_ = submit_tracked(
        chain_a_,
        chain::DeployHtlcPayload{kAlice, kBob,
                                 chain::Amount::from_tokens(setup_.p_star),
                                 hash_, schedule_.t_a},
        schedule_.t_a);
    log("t1: alice deployed HTLC on Chain_a (amount=" +
        std::to_string(setup_.p_star) + ", expiry=t_a=" +
        std::to_string(schedule_.t_a) + ", hash=" + hash_.to_hex().substr(0, 16) +
        "...)");
    if (setup_.premium > 0.0) {
      // Han et al. premium: an inverse escrow that refunds Alice on reveal
      // and pays Bob if she waives after commitment.  It is cancelled back
      // to Alice if Bob never locks (see at_t2).
      premium_escrow_ = submit_tracked(
          chain_a_,
          chain::DeployHtlcPayload{kAlice, kBob,
                                   chain::Amount::from_tokens(setup_.premium),
                                   hash_, schedule_.t_a,
                                   chain::HtlcKind::kInverse},
          schedule_.t_a);
      log("t1: alice escrowed premium " + std::to_string(setup_.premium) +
          " in an inverse HTLC on Chain_a");
    }
    // Bob acts when he OBSERVES Alice's confirmation: with zero jitter this
    // is exactly t2 = t1 + tau_a; with jitter the epoch shifts accordingly.
    advance_when(WaitFor::kConfirmation, chain_a_, deploy_a_, schedule_.t2,
                 schedule_.t_a, [this] { at_t2(); });
  }

  // --- t2: Bob verifies and locks. ----------------------------------------
  void at_t2() {
    if (defer_while_offline(setup_.faults.bob_offline, &SwapRun::at_t2,
                            "bob")) {
      return;
    }
    if (!verify_alice_contract()) {
      outcome_ = SwapOutcome::kBobDeclinedT2;
      log("t2: alice's contract failed verification; bob walks away");
      cancel_premium_escrow();
      return;
    }
    const agents::DecisionContext ctx = context();
    const model::Action move =
        bob_strategy_->decide(agents::Stage::kT2Lock, ctx);
    trace_decision("bob", *bob_strategy_, agents::Stage::kT2Lock, ctx, move);
    if (move == model::Action::kStop) {
      outcome_ = SwapOutcome::kBobDeclinedT2;
      log("t2: bob declined to lock (price=" +
          std::to_string(path_->price_at(queue_.now())) + ")");
      cancel_premium_escrow();
      return;
    }
    deploy_b_ = submit_tracked(
        chain_b_,
        chain::DeployHtlcPayload{kBob, kAlice, chain::Amount::from_tokens(1.0),
                                 hash_, schedule_.t_b},
        schedule_.t_b);
    log("t2: bob deployed HTLC on Chain_b (amount=1, expiry=t_b=" +
        std::to_string(schedule_.t_b) + ")");
    // Alice acts when she observes Bob's confirmation.
    advance_when(WaitFor::kConfirmation, chain_b_, deploy_b_, schedule_.t3,
                 schedule_.t_b, [this] { at_t3(); });
  }

  // --- t3: Alice verifies and reveals. -------------------------------------
  void at_t3() {
    if (defer_while_offline(setup_.faults.alice_offline, &SwapRun::at_t3,
                            "alice")) {
      return;
    }
    if (!verify_bob_contract()) {
      outcome_ = SwapOutcome::kAliceDeclinedT3;
      log("t3: bob's contract failed verification; alice withholds the secret");
      return;
    }
    const agents::DecisionContext ctx = context();
    const model::Action move =
        alice_strategy_->decide(agents::Stage::kT3Reveal, ctx);
    trace_decision("alice", *alice_strategy_, agents::Stage::kT3Reveal, ctx,
                   move);
    if (move == model::Action::kStop) {
      outcome_ = SwapOutcome::kAliceDeclinedT3;
      log("t3: alice withheld the secret (price=" +
          std::to_string(path_->price_at(queue_.now())) + ")");
      return;
    }
    claim_b_ = submit_tracked(
        chain_b_,
        chain::ClaimHtlcPayload{chain_b_.pending_contract_of(deploy_b_->id),
                                secret_, kAlice},
        schedule_.t_b);
    log("t3: alice claimed on Chain_b, revealing the secret");
    if (premium_escrow_) {
      submit_tracked(chain_a_,
                     chain::ClaimHtlcPayload{
                         chain_a_.pending_contract_of(premium_escrow_->id),
                         secret_, kAlice},
                     schedule_.t_a);
      log("t3: alice reclaimed her premium escrow on Chain_a");
    }
    // Bob acts when the secret becomes mempool-visible.
    advance_when(WaitFor::kVisibility, chain_b_, claim_b_, schedule_.t4,
                 schedule_.t_b, [this] { at_t4(); });
  }

  // --- t4: Bob extracts the secret from the mempool and claims. -----------
  void at_t4() {
    if (defer_while_offline(setup_.faults.bob_offline, &SwapRun::at_t4,
                            "bob")) {
      return;
    }
    std::optional<crypto::Secret> observed;
    for (const chain::ObservedSecret& s : chain_b_.visible_secrets()) {
      if (s.secret.opens(hash_)) {
        observed = s.secret;
        break;
      }
    }
    if (!observed) {
      outcome_ = SwapOutcome::kBobMissedT4;
      log("t4: no secret visible in Chain_b mempool; bob cannot claim");
      return;
    }
    if (setup_.trace != nullptr) {
      setup_.trace->record(queue_.now(), obs::TraceKind::kSecretObserved,
                           {{"party", "bob"},
                            {"chain", chain::to_string(chain_b_.params().id)}});
    }
    const agents::DecisionContext ctx = context();
    const model::Action move =
        bob_strategy_->decide(agents::Stage::kT4Claim, ctx);
    trace_decision("bob", *bob_strategy_, agents::Stage::kT4Claim, ctx, move);
    if (move == model::Action::kStop) {
      outcome_ = SwapOutcome::kBobMissedT4;
      log("t4: bob (irrationally) declined to claim");
      return;
    }
    claim_a_ = submit_tracked(
        chain_a_,
        chain::ClaimHtlcPayload{chain_a_.pending_contract_of(deploy_a_->id),
                                *observed, kBob},
        schedule_.t_a);
    outcome_ = SwapOutcome::kSuccess;
    log("t4: bob claimed on Chain_a with the observed secret");
  }

  // If Bob never locks, Alice could not possibly perform, so the premium
  // escrow must not penalize her: the watcher cancels it back as soon as
  // Bob's walk-away is known.
  void cancel_premium_escrow() {
    if (!premium_escrow_) return;
    submit_tracked(chain_a_,
                   chain::CancelHtlcPayload{
                       chain_a_.pending_contract_of(premium_escrow_->id),
                       kAlice},
                   schedule_.t_a);
    log("premium watcher cancelled the escrow (bob never locked)");
  }

  bool verify_alice_contract() {
    // Bob checks the *confirmed* contract: existence, funding, terms
    // (Section II-B Step 2).
    if (!deploy_a_) return false;
    const chain::Transaction& tx = chain_a_.transaction(deploy_a_->id);
    if (tx.status != chain::TxStatus::kConfirmed) return false;
    const chain::HtlcContract& c = chain_a_.htlc(*tx.created_contract);
    return c.state == chain::HtlcState::kLocked && c.recipient == kBob &&
           c.amount == chain::Amount::from_tokens(setup_.p_star) &&
           c.hash_lock == hash_ && c.expiry >= schedule_.t_a;
  }

  bool verify_bob_contract() {
    if (!deploy_b_) return false;
    const chain::Transaction& tx = chain_b_.transaction(deploy_b_->id);
    if (tx.status != chain::TxStatus::kConfirmed) return false;
    const chain::HtlcContract& c = chain_b_.htlc(*tx.created_contract);
    return c.state == chain::HtlcState::kLocked && c.recipient == kAlice &&
           c.amount == chain::Amount::from_tokens(1.0) &&
           c.hash_lock == hash_ && c.expiry >= schedule_.t_b;
  }

  // --- Result assembly. -----------------------------------------------------
  /// With confirmation jitter, a claim broadcast in time can still confirm
  /// after its time lock; the state-machine outcome (decided at broadcast
  /// time) is reconciled against the contracts' final settlement.  With
  /// zero jitter this never changes anything (asserted by tests).
  /// True when the deploy created a live contract on `chain`.
  bool contract_created(const chain::Ledger& chain,
                        const TrackedPtr& deploy) const {
    if (!deploy) return false;
    const chain::Transaction& tx = chain.transaction(deploy->id);
    return tx.created_contract && chain.has_htlc(*tx.created_contract);
  }

  void reconcile_outcome() {
    // A deploy that was broadcast but never produced a contract (every
    // re-broadcast dropped, or confirmation slipped past the expiry) is a
    // fault abort: the swap died on the wire, not by a party's choice.
    if (setup_.faults.any()) {
      const bool a_dead = deploy_a_ && !contract_created(chain_a_, deploy_a_);
      const bool b_dead = deploy_b_ && !contract_created(chain_b_, deploy_b_);
      if (a_dead || b_dead) {
        outcome_ = SwapOutcome::kFaultAborted;
        log(std::string("reconcile: ") + (a_dead ? "alice's" : "bob's") +
            " deploy never took effect; fault abort");
        return;
      }
    }
    if (!contract_created(chain_a_, deploy_a_) ||
        !contract_created(chain_b_, deploy_b_)) {
      return;
    }
    const chain::HtlcState sa =
        chain_a_.htlc(*chain_a_.transaction(deploy_a_->id).created_contract)
            .state;
    const chain::HtlcState sb =
        chain_b_.htlc(*chain_b_.transaction(deploy_b_->id).created_contract)
            .state;
    if (sa == chain::HtlcState::kClaimed && sb == chain::HtlcState::kClaimed) {
      outcome_ = SwapOutcome::kSuccess;
    } else if (sa == chain::HtlcState::kClaimed &&
               sb == chain::HtlcState::kRefunded) {
      outcome_ = SwapOutcome::kAliceLostAtomicity;
      log("reconcile: alice's claim missed t_b while bob's succeeded");
    } else if (sa == chain::HtlcState::kRefunded &&
               sb == chain::HtlcState::kClaimed &&
               outcome_ != SwapOutcome::kBobMissedT4) {
      outcome_ = SwapOutcome::kBobLostAtomicity;
      log("reconcile: bob's claim missed t_a while alice's succeeded");
    } else if (sa == chain::HtlcState::kRefunded &&
               sb == chain::HtlcState::kRefunded &&
               (outcome_ == SwapOutcome::kSuccess ||
                outcome_ == SwapOutcome::kBobMissedT4)) {
      // Both claims were broadcast but both confirmed too late -- or (under
      // faults) alice's claim was swallowed so no secret ever surfaced and
      // both legs timed out.  Either way both refunded: benign failure.
      outcome_ = SwapOutcome::kTimelockExpiredBoth;
      log("reconcile: both legs refunded; benign timeout for both");
    }
  }

  SwapResult finalize() {
    reconcile_outcome();
    SwapResult result;
    result.outcome = outcome_;
    result.success = outcome_ == SwapOutcome::kSuccess;
    result.schedule = schedule_;
    result.collateral = setup_.collateral;
    result.premium = setup_.premium;

    result.alice.final_token_a = chain_a_.balance(kAlice).tokens();
    result.alice.final_token_b = chain_b_.balance(kAlice).tokens();
    result.bob.final_token_a = chain_a_.balance(kBob).tokens();
    result.bob.final_token_b = chain_b_.balance(kBob).tokens();

    result.conservation_ok = chain_a_.total_supply() == initial_supply_a_ &&
                             chain_b_.total_supply() == initial_supply_b_;

    if (setup_.audit) {
      result.invariants_ok = auditor_a_.ok() && auditor_b_.ok();
      for (const chain::InvariantAuditor* auditor :
           {&auditor_a_, &auditor_b_}) {
        for (const chain::InvariantAuditor::Violation& v :
             auditor->violations()) {
          result.invariant_violations.push_back(
              "[t=" + std::to_string(v.at) + "h tx " +
              std::to_string(v.tx.value) + "] " + v.what);
        }
      }
    }
    result.dropped_txs =
        static_cast<int>((injector_a_ ? injector_a_->dropped() : 0) +
                         (injector_b_ ? injector_b_->dropped() : 0));
    result.rebroadcasts = rebroadcasts_;

    if (setup_.faults.any()) {
      compute_faulted_values(result);
    } else {
      compute_realized_values(result);
    }
    if (setup_.trace != nullptr) {
      setup_.trace->record(queue_.now(), obs::TraceKind::kOutcome,
                           {{"outcome", to_string(result.outcome)},
                            {"success", result.success},
                            {"alice_utility", result.alice.realized_utility},
                            {"bob_utility", result.bob.realized_utility},
                            {"dropped_txs", result.dropped_txs},
                            {"rebroadcasts", result.rebroadcasts},
                            {"conservation_ok", result.conservation_ok},
                            {"invariants_ok", result.invariants_ok}});
    }
    if (setup_.metrics != nullptr) {
      obs::MetricsRegistry& m = *setup_.metrics;
      m.counter("swap.runs").inc();
      m.counter(std::string("swap.outcome.") + to_string(result.outcome))
          .inc();
      if (result.dropped_txs > 0) {
        m.counter("swap.dropped_txs")
            .inc(static_cast<std::uint64_t>(result.dropped_txs));
      }
      if (result.rebroadcasts > 0) {
        m.counter("swap.rebroadcasts")
            .inc(static_cast<std::uint64_t>(result.rebroadcasts));
      }
      if (!result.conservation_ok) m.counter("swap.conservation_failures").inc();
      if (!result.invariants_ok) m.counter("swap.invariant_failures").inc();
      // Realized-utility range: the paper's Table III utilities live well
      // inside [-4, 12) for every bench configuration.
      m.histogram("swap.alice_utility", -4.0, 12.0, 32)
          .observe(result.alice.realized_utility);
      m.histogram("swap.bob_utility", -4.0, 12.0, 32)
          .observe(result.bob.realized_utility);
    }
    result.audit = std::move(audit_);
    return result;
  }

  /// Discount factor to t1 at rate r for a receipt at time t.
  static double disc(double r, double t1, double t) {
    return std::exp(-r * (t - t1));
  }

  void compute_realized_values(SwapResult& result) const {
    const model::SwapParams& p = setup_.params;
    const double q = setup_.collateral;
    const double p_star = setup_.p_star;
    const model::Schedule& s = schedule_;
    const double rA = p.alice.r;
    const double rB = p.bob.r;
    const auto price = [this](double t) { return path_->price_at(t); };

    const double pr = setup_.premium;
    double alice_swap = 0.0, bob_swap = 0.0;       // swap asset flows
    double alice_coll = 0.0, bob_coll = 0.0;       // collateral flows
    double alice_coll_back = 0.0, bob_coll_back = 0.0;  // tokens, undiscounted
    double alice_prem = 0.0, bob_prem = 0.0;       // premium flows
    double alice_prem_back = 0.0, bob_prem_gain = 0.0;
    double alice_receipt = s.t1, bob_receipt = s.t1;

    const double oracle_t3_receipt = s.t3 + p.tau_a;
    const double oracle_t4_receipt = s.t4 + p.tau_a;
    // Premium escrow settlement receipt times: Alice's claim or the
    // watcher's cancel are submitted at t3 and confirm tau_a later; the
    // timeout path pays Bob at t_a + tau_a = t8.
    const double premium_alice_receipt = s.t3 + p.tau_a;
    const double premium_bob_receipt = s.t8;

    switch (outcome_) {
      case SwapOutcome::kNotInitiated:
        alice_swap = p_star;
        bob_swap = price(s.t1);
        alice_coll = q;  // never charged
        bob_coll = q;
        alice_coll_back = q;
        bob_coll_back = q;
        alice_prem = pr;  // never escrowed
        alice_prem_back = pr;
        break;
      case SwapOutcome::kBobDeclinedT2:
        alice_swap = p_star * disc(rA, s.t1, s.t8);
        bob_swap = price(s.t2) * disc(rB, s.t1, s.t2);
        if (q > 0.0) {
          alice_coll = 2.0 * q * disc(rA, s.t1, oracle_t3_receipt);
          alice_coll_back = 2.0 * q;
        }
        if (pr > 0.0) {
          // Watcher cancels the escrow back to Alice.
          alice_prem = pr * disc(rA, s.t1, premium_alice_receipt);
          alice_prem_back = pr;
        }
        alice_receipt = s.t8;
        bob_receipt = s.t2;
        break;
      case SwapOutcome::kAliceDeclinedT3:
        alice_swap = p_star * disc(rA, s.t1, s.t8);
        bob_swap = price(s.t7) * disc(rB, s.t1, s.t7);
        if (q > 0.0) {
          bob_coll = q * disc(rB, s.t1, oracle_t3_receipt) +
                     q * disc(rB, s.t1, oracle_t4_receipt);
          bob_coll_back = 2.0 * q;
        }
        if (pr > 0.0) {
          // The escrow times out at t_a and pays Bob at t8.
          bob_prem = pr * disc(rB, s.t1, premium_bob_receipt);
          bob_prem_gain = pr;
        }
        alice_receipt = s.t8;
        bob_receipt = s.t7;
        break;
      case SwapOutcome::kBobMissedT4:
        // Alice receives the token-b at t5 AND her token-a refund at t8;
        // Bob loses his principal entirely.
        alice_swap = price(s.t5) * disc(rA, s.t1, s.t5) +
                     p_star * disc(rA, s.t1, s.t8);
        bob_swap = 0.0;
        if (q > 0.0) {
          bob_coll = q * disc(rB, s.t1, oracle_t3_receipt);
          alice_coll = q * disc(rA, s.t1, oracle_t4_receipt);
          alice_coll_back = q;
          bob_coll_back = q;
        }
        if (pr > 0.0) {
          // Alice revealed and reclaimed her escrow.
          alice_prem = pr * disc(rA, s.t1, premium_alice_receipt);
          alice_prem_back = pr;
        }
        alice_receipt = s.t8;
        bob_receipt = oracle_t3_receipt;
        break;
      case SwapOutcome::kTimelockExpiredBoth:
        // Both refunded: economics of a benign failure, except Alice did
        // fulfil her obligations, so her deposits come back.
        alice_swap = p_star * disc(rA, s.t1, s.t8);
        bob_swap = price(s.t7) * disc(rB, s.t1, s.t7);
        if (q > 0.0) {
          alice_coll = q * disc(rA, s.t1, oracle_t4_receipt);
          bob_coll = q * disc(rB, s.t1, oracle_t3_receipt);
          alice_coll_back = q;
          bob_coll_back = q;
        }
        if (pr > 0.0) {
          alice_prem = pr * disc(rA, s.t1, premium_alice_receipt);
          alice_prem_back = pr;
        }
        alice_receipt = s.t8;
        bob_receipt = s.t7;
        break;
      case SwapOutcome::kAliceLostAtomicity:
        // Alice revealed but her claim missed t_b: Bob holds everything.
        // Receipt times are approximated by the idealized schedule (exact
        // per-run times vary with the jitter draws; balances are exact).
        alice_swap = 0.0;
        bob_swap = p_star * disc(rB, s.t1, s.t6) +
                   price(s.t7) * disc(rB, s.t1, s.t7);
        if (q > 0.0) {
          alice_coll = q * disc(rA, s.t1, oracle_t4_receipt);
          bob_coll = q * disc(rB, s.t1, oracle_t3_receipt);
          alice_coll_back = q;
          bob_coll_back = q;
        }
        if (pr > 0.0) {
          alice_prem = pr * disc(rA, s.t1, premium_alice_receipt);
          alice_prem_back = pr;
        }
        alice_receipt = s.t1;
        bob_receipt = s.t7;
        break;
      case SwapOutcome::kBobLostAtomicity:
        // Bob's claim missed t_a: Alice holds both assets (same flows as
        // kBobMissedT4).
        alice_swap = price(s.t5) * disc(rA, s.t1, s.t5) +
                     p_star * disc(rA, s.t1, s.t8);
        bob_swap = 0.0;
        if (q > 0.0) {
          bob_coll = q * disc(rB, s.t1, oracle_t3_receipt);
          alice_coll = q * disc(rA, s.t1, oracle_t4_receipt);
          alice_coll_back = q;
          bob_coll_back = q;
        }
        if (pr > 0.0) {
          alice_prem = pr * disc(rA, s.t1, premium_alice_receipt);
          alice_prem_back = pr;
        }
        alice_receipt = s.t8;
        bob_receipt = s.t1;
        break;
      case SwapOutcome::kFaultAborted:
        // Only reachable under an active fault model, which routes through
        // compute_faulted_values instead of this exact-flow accounting.
        break;
      case SwapOutcome::kSuccess:
        alice_swap = price(s.t5) * disc(rA, s.t1, s.t5);
        bob_swap = p_star * disc(rB, s.t1, s.t6);
        if (q > 0.0) {
          alice_coll = q * disc(rA, s.t1, oracle_t4_receipt);
          bob_coll = q * disc(rB, s.t1, oracle_t3_receipt);
          alice_coll_back = q;
          bob_coll_back = q;
        }
        if (pr > 0.0) {
          alice_prem = pr * disc(rA, s.t1, premium_alice_receipt);
          alice_prem_back = pr;
        }
        alice_receipt = s.t5;
        bob_receipt = s.t6;
        break;
    }

    const double sA = result.success ? p.alice.alpha : 0.0;
    const double sB = result.success ? p.bob.alpha : 0.0;
    result.alice.realized_value = alice_swap + alice_coll + alice_prem;
    result.bob.realized_value = bob_swap + bob_coll + bob_prem;
    // Per Eq. (32) side deposits (collateral, premium) are not
    // premium-scaled.
    result.alice.realized_utility =
        (1.0 + sA) * alice_swap + alice_coll + alice_prem;
    result.bob.realized_utility = (1.0 + sB) * bob_swap + bob_coll + bob_prem;
    result.alice.receipt_time = alice_receipt;
    result.bob.receipt_time = bob_receipt;
    result.alice_collateral_back = alice_coll_back;
    result.bob_collateral_back = bob_coll_back;
    result.alice_premium_back = alice_prem_back;
    result.bob_premium_gain = bob_prem_gain;
  }

  /// Valuation under an active fault model.  Re-broadcasts, deferred
  /// mempool entries and halts shift every settlement time, so the exact
  /// per-outcome receipt algebra above no longer applies.  Instead each
  /// party's FINAL ledger holdings are valued: token-a at face value,
  /// token-b at the price of the party's terminal receipt epoch
  /// (approximated by the idealized schedule), discounted to t1; the
  /// utility premium (1 + alpha) applies on success per Eq. (2)/(32).
  /// Oracle-released collateral is already inside the final balances; the
  /// per-component *_back breakdowns are not attributed under faults.
  void compute_faulted_values(SwapResult& result) const {
    const model::SwapParams& p = setup_.params;
    const model::Schedule& s = schedule_;
    const auto price = [this](double t) { return path_->price_at(t); };

    // Terminal receipt epochs: success settles at t5/t6, a never-initiated
    // swap leaves everything liquid at t1, every failure path waits out the
    // last refund (t8 for Alice's chain-a lock, t7 for Bob's chain-b lock).
    double alice_receipt = s.t8;
    double bob_receipt = s.t7;
    if (outcome_ == SwapOutcome::kNotInitiated) {
      alice_receipt = s.t1;
      bob_receipt = s.t1;
    } else if (outcome_ == SwapOutcome::kSuccess) {
      alice_receipt = s.t5;
      bob_receipt = s.t6;
    }

    const double alice_value =
        (result.alice.final_token_a +
         result.alice.final_token_b * price(alice_receipt)) *
        disc(p.alice.r, s.t1, alice_receipt);
    const double bob_value =
        (result.bob.final_token_a +
         result.bob.final_token_b * price(bob_receipt)) *
        disc(p.bob.r, s.t1, bob_receipt);
    const double sA = result.success ? p.alice.alpha : 0.0;
    const double sB = result.success ? p.bob.alpha : 0.0;
    result.alice.realized_value = alice_value;
    result.bob.realized_value = bob_value;
    result.alice.realized_utility = (1.0 + sA) * alice_value;
    result.bob.realized_utility = (1.0 + sB) * bob_value;
    result.alice.receipt_time = alice_receipt;
    result.bob.receipt_time = bob_receipt;
  }

  const chain::Address kAlice{"alice"};
  const chain::Address kBob{"bob"};

  SwapSetup setup_;
  agents::Strategy* alice_strategy_;
  agents::Strategy* bob_strategy_;
  const PricePath* path_;
  model::Schedule schedule_;
  math::Xoshiro256 latency_rng_a_;
  math::Xoshiro256 latency_rng_b_;
  chain::EventQueue queue_;
  chain::Ledger chain_a_;
  chain::Ledger chain_b_;
  std::optional<CollateralOracle> oracle_;
  std::optional<chain::FaultInjector> injector_a_;
  std::optional<chain::FaultInjector> injector_b_;
  // Declared after the ledgers so they detach before the ledgers die.
  chain::InvariantAuditor auditor_a_;
  chain::InvariantAuditor auditor_b_;
  crypto::Secret secret_;
  crypto::Digest256 hash_;
  TrackedPtr deploy_a_;
  TrackedPtr premium_escrow_;
  TrackedPtr deploy_b_;
  TrackedPtr claim_b_;
  TrackedPtr claim_a_;
  chain::Amount initial_supply_a_;
  chain::Amount initial_supply_b_;
  SwapOutcome outcome_ = SwapOutcome::kNotInitiated;
  int rebroadcasts_ = 0;
  std::vector<std::string> audit_;
};

}  // namespace

SwapResult run_swap(const SwapSetup& setup, agents::Strategy& alice,
                    agents::Strategy& bob, const PricePath& path) {
  setup.params.validate();
  SwapRun run(setup, alice, bob, path);
  return run.execute();
}

}  // namespace swapgame::proto
