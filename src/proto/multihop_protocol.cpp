#include "multihop_protocol.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "agents/naive.hpp"
#include "crypto/secret.hpp"

namespace swapgame::proto {

const char* to_string(MultihopOutcome outcome) noexcept {
  switch (outcome) {
    case MultihopOutcome::kAllCommitted:
      return "all-committed";
    case MultihopOutcome::kAbortedAtLock:
      return "aborted-at-lock";
    case MultihopOutcome::kLeaderAborted:
      return "leader-aborted";
    case MultihopOutcome::kPartialClaims:
      return "partial-claims";
  }
  return "unknown";
}

namespace {

/// One cyclic-swap execution.
class MultihopRun {
 public:
  MultihopRun(const MultihopSetup& setup, const PricePath& path)
      : setup_(setup), path_(&path) {
    const std::size_t n = setup_.parties.size();
    if (n < 2) {
      throw std::invalid_argument("run_multihop_swap: need >= 2 parties");
    }
    if (!(setup_.tau > 0.0) || !(setup_.eps > 0.0) ||
        !(setup_.eps < setup_.tau)) {
      throw std::invalid_argument(
          "run_multihop_swap: need 0 < eps < tau (Eq. 3 per chain)");
    }
    if (!(setup_.safety_margin >= 0.0)) {
      throw std::invalid_argument(
          "run_multihop_swap: safety_margin must be >= 0");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!(setup_.parties[i].amount > 0.0)) {
        throw std::invalid_argument("run_multihop_swap: amounts must be > 0");
      }
      chains_.push_back(std::make_unique<chain::Ledger>(
          chain::ChainParams{chain::ChainId::kChainA, setup_.tau, setup_.eps},
          queue_));
      // Chain i: P_i (payer) and P_{i+1} (payee).
      const std::string& payer = setup_.parties[i].name;
      const std::string& payee = setup_.parties[(i + 1) % n].name;
      chains_[i]->create_account(
          {payer}, chain::Amount::from_tokens(setup_.parties[i].amount));
      chains_[i]->create_account({payee}, chain::Amount{});
      initial_supply_.push_back(chains_[i]->total_supply());
    }
    deploys_.resize(n);
  }

  MultihopResult execute() {
    math::Xoshiro256 rng(setup_.secret_seed);
    secret_ = crypto::Secret::generate(rng);
    lock_step(0);
    queue_.run();
    return finalize();
  }

 private:
  static agents::Strategy& fallback_honest() {
    static agents::HonestStrategy honest;
    return honest;
  }

  agents::Strategy& strategy_of(std::size_t i) {
    return setup_.parties[i].strategy ? *setup_.parties[i].strategy
                                      : fallback_honest();
  }

  void log(const std::string& what) {
    std::ostringstream os;
    os << "[t=" << queue_.now() << "h] " << what;
    audit_.push_back(os.str());
  }

  agents::DecisionContext context() const {
    return {path_->price_at(queue_.now()), 0.0, queue_.now()};
  }

  /// Expiry of the lock on chain j: its claim is the (N-1-j)-th of the
  /// claim phase; provision for that claim's confirmation plus the margin.
  double expiry_of(std::size_t j) const {
    const double n = static_cast<double>(setup_.parties.size());
    const double claim_index = n - 1.0 - static_cast<double>(j);
    return n * setup_.tau + claim_index * setup_.eps + setup_.tau +
           setup_.safety_margin;
  }

  void lock_step(std::size_t i) {
    const std::size_t n = setup_.parties.size();
    const agents::Stage stage =
        i == 0 ? agents::Stage::kT1Initiate : agents::Stage::kT2Lock;
    if (strategy_of(i).decide(stage, context()) == model::Action::kStop) {
      outcome_ = MultihopOutcome::kAbortedAtLock;
      log(setup_.parties[i].name + " declined to lock; cycle aborts");
      return;
    }
    deploys_[i] = chains_[i]->submit(chain::DeployHtlcPayload{
        {setup_.parties[i].name},
        {setup_.parties[(i + 1) % n].name},
        chain::Amount::from_tokens(setup_.parties[i].amount),
        secret_.commitment(),
        expiry_of(i)});
    ++locks_deployed_;
    log(setup_.parties[i].name + " locked " +
        std::to_string(setup_.parties[i].amount) + " on chain " +
        std::to_string(i) + " (expiry " + std::to_string(expiry_of(i)) + "h)");
    if (i + 1 < n) {
      // The next party locks once this lock is confirmed.
      queue_.schedule_at(chains_[i]->transaction(*deploys_[i]).confirmed_at,
                         [this, i] { lock_step(i + 1); });
    } else {
      // All locks in flight; the leader starts the claim phase when the
      // last lock confirms.
      queue_.schedule_at(chains_[i]->transaction(*deploys_[i]).confirmed_at,
                         [this] { leader_claim(); });
    }
  }

  void leader_claim() {
    const std::size_t n = setup_.parties.size();
    if (strategy_of(0).decide(agents::Stage::kT3Reveal, context()) ==
        model::Action::kStop) {
      outcome_ = MultihopOutcome::kLeaderAborted;
      log(setup_.parties[0].name + " withheld the secret; all legs refund");
      return;
    }
    // P_0 claims its incoming leg on chain n-1, revealing the secret there.
    chains_[n - 1]->submit(chain::ClaimHtlcPayload{
        chains_[n - 1]->pending_contract_of(*deploys_[n - 1]), secret_,
        {setup_.parties[0].name}});
    log(setup_.parties[0].name + " claimed on chain " + std::to_string(n - 1) +
        ", revealing the secret");
    schedule_claim_step(/*claim_index=*/1);
  }

  /// The claim_index-th backward claim: party P_{n-claim_index} reads the
  /// secret from chain n-claim_index (where the previous claim landed) and
  /// claims its incoming leg on chain n-claim_index-1.
  void schedule_claim_step(std::size_t claim_index) {
    const std::size_t n = setup_.parties.size();
    if (claim_index >= n) return;  // full cycle claimed
    queue_.schedule_in(setup_.eps, [this, claim_index] {
      const std::size_t n_parties = setup_.parties.size();
      const std::size_t watcher = n_parties - claim_index;  // P_{n-k}
      const std::size_t watch_chain = watcher % n_parties;  // its outgoing
      const std::size_t claim_chain = watch_chain - 1;      // its incoming
      // Extract the secret from the watched chain's mempool.
      std::optional<crypto::Secret> observed;
      for (const chain::ObservedSecret& s :
           chains_[watch_chain]->visible_secrets()) {
        if (s.secret.opens(secret_.commitment())) observed = s.secret;
      }
      if (!observed) {
        log(setup_.parties[watcher].name + " saw no secret; cannot claim");
        return;
      }
      if (strategy_of(watcher).decide(agents::Stage::kT4Claim, context()) ==
          model::Action::kStop) {
        log(setup_.parties[watcher].name + " (irrationally) skipped its claim");
        return;
      }
      chains_[claim_chain]->submit(chain::ClaimHtlcPayload{
          chains_[claim_chain]->pending_contract_of(*deploys_[claim_chain]),
          *observed,
          {setup_.parties[watcher].name}});
      log(setup_.parties[watcher].name + " claimed on chain " +
          std::to_string(claim_chain));
      schedule_claim_step(claim_index + 1);
    });
  }

  MultihopResult finalize() {
    const std::size_t n = setup_.parties.size();
    MultihopResult result;
    result.locks_deployed = locks_deployed_;
    result.audit = std::move(audit_);

    result.conservation_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(chains_[i]->total_supply() == initial_supply_[i])) {
        result.conservation_ok = false;
      }
    }
    int claimed = 0;
    double last_claim = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!deploys_[i]) continue;
      const chain::HtlcId id = chains_[i]->pending_contract_of(*deploys_[i]);
      if (chains_[i]->has_htlc(id) &&
          chains_[i]->htlc(id).state == chain::HtlcState::kClaimed) {
        ++claimed;
        last_claim = std::max(last_claim, chains_[i]->htlc(id).settled_at);
      }
    }
    result.legs_claimed = claimed;
    result.completion_time = last_claim;
    if (locks_deployed_ == static_cast<int>(n) &&
        outcome_ != MultihopOutcome::kLeaderAborted) {
      if (claimed == static_cast<int>(n)) {
        outcome_ = MultihopOutcome::kAllCommitted;
      } else if (claimed > 0) {
        outcome_ = MultihopOutcome::kPartialClaims;
      }
    }
    result.outcome = outcome_;

    result.paid.resize(n);
    result.received.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // P_i pays on chain i and is paid on chain (i-1+n) % n.
      const std::size_t in_chain = (i + n - 1) % n;
      result.paid[i] =
          setup_.parties[i].amount -
          chains_[i]->balance({setup_.parties[i].name}).tokens();
      result.received[i] =
          chains_[in_chain]->balance({setup_.parties[i].name}).tokens();
    }
    return result;
  }

  MultihopSetup setup_;
  const PricePath* path_;
  chain::EventQueue queue_;
  std::vector<std::unique_ptr<chain::Ledger>> chains_;
  std::vector<chain::Amount> initial_supply_;
  std::vector<std::optional<chain::TxId>> deploys_;
  crypto::Secret secret_;
  int locks_deployed_ = 0;
  MultihopOutcome outcome_ = MultihopOutcome::kAbortedAtLock;
  std::vector<std::string> audit_;
};

}  // namespace

MultihopResult run_multihop_swap(const MultihopSetup& setup,
                                 const PricePath& path) {
  MultihopRun run(setup, path);
  return run.execute();
}

}  // namespace swapgame::proto
