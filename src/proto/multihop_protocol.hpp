// Multi-party cyclic atomic swaps (Herlihy, PODC'18 -- paper Section II-C:
// "Herlihy provided a first extensive analysis of the scheme").
//
// N parties arranged in a cycle, each paying the next on its own chain:
// P_0 -> P_1 on chain 0, P_1 -> P_2 on chain 1, ..., P_{N-1} -> P_0 on
// chain N-1.  The leader P_0 generates the secret; locks are deployed
// forward along the cycle (each party locks only after its incoming lock
// is confirmed), and claims propagate backward from the leader:
//
//   lock phase:   P_0 locks, P_1 locks, ..., P_{N-1} locks
//   claim phase:  P_0 claims on chain N-1 (revealing the secret), then
//                 P_{N-1} claims on chain N-2, ..., P_1 claims on chain 0.
//
// Herlihy's timelock staircase: the k-th deployed lock must remain
// claimable until its claim -- the (2N-1-k)-th protocol step -- completes,
// so expiries DECREASE along the deployment order.  We provision each
// lock's expiry for its worst-case claim time plus a safety margin.
//
// The two-party instance coincides with the paper's swap (without the
// mempool-leak shortcut: each claimer knows the secret only after the
// upstream claim is mempool-visible on the neighbouring chain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agents/strategy.hpp"
#include "chain/event_queue.hpp"
#include "chain/ledger.hpp"
#include "price_path.hpp"

namespace swapgame::proto {

/// Per-party configuration of a cyclic swap.
struct HopParty {
  std::string name;      ///< account name, unique in the cycle
  double amount = 1.0;   ///< amount it locks for the next party (its chain)
  /// Decision rule consulted at its lock step (Stage::kT2Lock) and claim
  /// step (Stage::kT4Claim).  Non-owning; must outlive the run.
  agents::Strategy* strategy = nullptr;
};

/// Cycle-wide configuration.
struct MultihopSetup {
  std::vector<HopParty> parties;   ///< N >= 2
  double tau = 3.0;                ///< confirmation time, all chains (hours)
  double eps = 1.0;                ///< mempool visibility, all chains
  double safety_margin = 1.0;      ///< extra slack per expiry (hours)
  std::uint64_t secret_seed = 0xC1C1E;
};

/// How the cyclic swap ended.
enum class MultihopOutcome : std::uint8_t {
  kAllCommitted,   ///< every leg claimed
  kAbortedAtLock,  ///< some party declined to lock; all deployed legs refund
  kLeaderAborted,  ///< the leader declined to start the claim phase
  kPartialClaims,  ///< secret revealed but some party skipped its claim:
                   ///< the skipper paid without being paid (the 2-party
                   ///< t4-miss generalized)
};

[[nodiscard]] const char* to_string(MultihopOutcome outcome) noexcept;

/// Result of one cyclic-swap run.
struct MultihopResult {
  MultihopOutcome outcome = MultihopOutcome::kAbortedAtLock;
  int locks_deployed = 0;   ///< how many parties locked before the abort
  int legs_claimed = 0;     ///< claimed legs (== N on commit)
  bool conservation_ok = false;  ///< per-chain supply invariants held
  /// Per-party net balance change on its outgoing chain (it pays) and its
  /// incoming chain (it is paid), in tokens.
  std::vector<double> paid;      ///< amount actually debited
  std::vector<double> received;  ///< amount actually credited
  std::vector<std::string> audit;
  double completion_time = 0.0;  ///< when the last claim confirmed
};

/// Runs one cyclic swap.  Every party with a null strategy behaves
/// honestly.  The price path is consulted for decision contexts (parties
/// see the same exogenous price signal).
[[nodiscard]] MultihopResult run_multihop_swap(const MultihopSetup& setup,
                                               const PricePath& path);

}  // namespace swapgame::proto
