// The AC^3TW witness-commitment protocol (Zakhary et al., paper Section
// II-C) executed on the two-ledger substrate.
//
// A trusted witness -- the "centralized trusted witness" of AC^3TW --
// generates the secret and hands both parties its hash.  Each party locks
// into an ordinary HTLC whose preimage only the witness knows:
//
//   t1: Alice decides; on cont she locks P* token-a on Chain_a
//       (recipient Bob, expiry t_a).
//   t2: Bob verifies and decides; on cont he locks 1 token-b on Chain_b
//       (recipient Alice, expiry t_b).
//   t3 = t2 + tau_b (Bob's lock confirmed): the witness checks both locks.
//       Both present  -> it submits BOTH claims (atomic commit).
//       Bob missing   -> it stays silent; the time locks refund (abort).
//
// Neither party ever learns the secret, so neither holds any post-lock
// optionality: the paper's t3/t4 decisions do not exist in this family.
// (Substitution note: Zakhary et al. exchange votes/proofs rather than a
// hash preimage; a witness-held preimage over standard HTLCs realizes the
// same commit/abort semantics on our substrate -- see DESIGN.md.)
#pragma once

#include "swap_protocol.hpp"

namespace swapgame::proto {

/// Runs one witness-commitment swap.  Reuses SwapSetup/SwapResult; the
/// collateral/premium knobs are ignored (the witness makes them moot), and
/// outcomes are limited to kNotInitiated, kBobDeclinedT2 and kSuccess.
/// Strategies are consulted at Stage::kT1Initiate (Alice) and
/// Stage::kT2Lock (Bob) only.
[[nodiscard]] SwapResult run_witness_swap(const SwapSetup& setup,
                                          agents::Strategy& alice,
                                          agents::Strategy& bob,
                                          const PricePath& path);

}  // namespace swapgame::proto
