// The trusted collateral Oracle of paper Section IV.
//
// Watches both ledgers and settles the Chain_a collateral vault:
//   * at t3: if Bob's HTLC (same hash lock) is confirmed on Chain_b, his
//     obligation is fulfilled -> release Q to Bob; otherwise Bob stopped ->
//     release both collaterals (2Q) to Alice.
//   * at t4: (only if Bob fulfilled) if Alice's secret is visible on
//     Chain_b, her obligation is fulfilled -> release Q to Alice;
//     otherwise she waived -> release her Q to Bob.
// Releases are ordinary Chain_a transactions confirming after tau_a, so
// recipients receive funds at t3 + tau_a / t4 + tau_a as in the paper.
//
// The paper notes this Oracle "is theoretical as there is presently no
// Oracle service" with these powers; here it is an explicit trusted
// component so the collateral game can be executed end-to-end.
#pragma once

#include "chain/event_queue.hpp"
#include "chain/ledger.hpp"
#include "crypto/digest.hpp"
#include "model/timeline.hpp"

namespace swapgame::proto {

class CollateralOracle {
 public:
  /// Both ledgers and the queue must outlive the oracle.
  CollateralOracle(chain::EventQueue& queue, chain::Ledger& chain_a,
                   chain::Ledger& chain_b, chain::Address alice_on_a,
                   chain::Address bob_on_a, chain::Amount collateral_each);

  /// Arms the oracle for a swap that both agents engaged in at t1: the
  /// settlement checks are scheduled at schedule.t3 and schedule.t4.
  /// Call after charging both collaterals into the Chain_a vault.
  void arm(const crypto::Digest256& hash_lock, const model::Schedule& schedule);

  /// Settlement summary (release transactions submitted, in tokens).
  [[nodiscard]] double released_to_alice() const noexcept {
    return released_alice_.tokens();
  }
  [[nodiscard]] double released_to_bob() const noexcept {
    return released_bob_.tokens();
  }

 private:
  void check_bob_fulfilled();  ///< t3 settlement rule
  void check_alice_fulfilled();  ///< t4 settlement rule
  void release(const chain::Address& to, chain::Amount amount);

  chain::EventQueue* queue_;
  chain::Ledger* chain_a_;
  chain::Ledger* chain_b_;
  chain::Address alice_;
  chain::Address bob_;
  chain::Amount q_;
  crypto::Digest256 hash_lock_;
  bool bob_fulfilled_ = false;
  chain::Amount released_alice_;
  chain::Amount released_bob_;
};

}  // namespace swapgame::proto
