// The HTLC atomic-swap protocol state machine (paper Sections II-B, III-B).
//
// Executes one swap between two Strategy-driven agents on two simulated
// ledgers following the idealized timeline of Eq. (13):
//
//   t1: Alice decides; on cont she generates the secret and deploys the
//       HTLC on Chain_a (amount P*, hash lock, expiry t_a).
//   t2 = t1 + tau_a: Bob verifies Alice's confirmed contract and decides;
//       on cont he deploys the mirrored HTLC on Chain_b (amount 1,
//       same hash, expiry t_b).
//   t3 = t2 + tau_b: Alice verifies Bob's confirmed contract and decides;
//       on cont she claims on Chain_b, revealing the secret.
//   t4 = t3 + eps_b: Bob reads the secret from Chain_b's mempool and
//       decides; on cont he claims on Chain_a.
//
// Declined or missed steps leave the deployed HTLCs to auto-refund at
// expiry (t7/t8 receipts).  The driver never moves funds itself -- every
// flow goes through ledger transactions -- and it checks ledger
// conservation after the run.
//
// The collateralized variant (Section IV) charges both agents Q into the
// Chain_a vault at t1 and lets a CollateralOracle settle it (see oracle.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agents/strategy.hpp"
#include "chain/event_queue.hpp"
#include "chain/faults.hpp"
#include "chain/ledger.hpp"
#include "model/params.hpp"
#include "model/timeline.hpp"
#include "price_path.hpp"

namespace swapgame::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace swapgame::obs

namespace swapgame::proto {

/// How the swap ended.
enum class SwapOutcome : std::uint8_t {
  kNotInitiated,    ///< Alice stopped at t1; nothing ever hit a chain
  kBobDeclinedT2,   ///< Bob did not lock; Alice auto-refunded
  kAliceDeclinedT3, ///< Alice did not reveal; both auto-refunded
  kBobMissedT4,     ///< Bob failed to claim a revealed secret (irrational /
                    ///< crash): Alice received token-b AND gets token-a back
  kSuccess,         ///< both legs settled per Table I
  /// Atomicity violations reachable only with confirmation jitter
  /// (ChainParams::confirmation_jitter > 0), i.e. when the paper's
  /// constant-tau assumption 1 is relaxed (Zakhary et al.'s critique,
  /// Section II-C): one leg's claim confirmed, the other leg's missed its
  /// time lock.
  kAliceLostAtomicity,  ///< Alice revealed; Bob claimed token-a, but her
                        ///< token-b claim confirmed after t_b (refunded to
                        ///< Bob).  Alice lost her principal.
  kBobLostAtomicity,    ///< Alice's token-b claim confirmed, but Bob's
                        ///< token-a claim confirmed after t_a.  Bob lost.
  kTimelockExpiredBoth, ///< both claims missed their locks (extreme
                        ///< jitter): both legs refunded -- benign failure,
                        ///< atomicity preserved.
  kFaultAborted,        ///< a deploy was swallowed by the fault model (all
                        ///< re-broadcasts dropped / confirmed past expiry):
                        ///< the swap died on the wire, not by choice.  Only
                        ///< reachable when SwapFaults::any().
};

[[nodiscard]] const char* to_string(SwapOutcome outcome) noexcept;

/// Fault environment of one swap run (see chain/faults.hpp and
/// docs/FAULTS.md): per-chain fault models plus per-party offline windows.
/// Default-constructed = assumption-1 behaviour, bit-identical to a run
/// without any fault plumbing.
struct SwapFaults {
  chain::FaultModel chain_a;
  chain::FaultModel chain_b;
  /// While a party is inside an offline window it cannot act: its decision
  /// epochs are deferred to the window's end (possibly past an expiry, in
  /// which case the usual timeout paths fire).
  std::vector<chain::FaultWindow> alice_offline;
  std::vector<chain::FaultWindow> bob_offline;
  /// Seed for the fault draws, independent of secret/latency seeds.
  std::uint64_t seed = 0xFA017;

  [[nodiscard]] bool any() const noexcept {
    return chain_a.any() || chain_b.any() || !alice_offline.empty() ||
           !bob_offline.empty();
  }
};

/// Per-agent realized result, token-denominated.
struct AgentResult {
  double final_token_a = 0.0;  ///< final Chain_a balance (tokens)
  double final_token_b = 0.0;  ///< final Chain_b balance (tokens)
  double receipt_time = 0.0;   ///< when the agent's terminal asset unencumbered
  /// Realized discounted portfolio value at t1 (token-a numeraire): each
  /// terminal holding valued at its receipt time price and discounted at
  /// the agent's rate r.
  double realized_value = 0.0;
  /// realized_value scaled by (1 + alpha * S) -- the paper's Eq. (2)/(32)
  /// utility realized on this path.
  double realized_utility = 0.0;
};

/// Full audit record of one protocol run.
struct SwapResult {
  SwapOutcome outcome = SwapOutcome::kNotInitiated;
  bool success = false;
  AgentResult alice;
  AgentResult bob;
  model::Schedule schedule;          ///< the idealized timeline used
  std::vector<std::string> audit;    ///< timestamped step log
  bool conservation_ok = false;      ///< ledger supply invariant held
  double collateral = 0.0;           ///< Q used (0 = basic protocol)
  /// Collateral each agent got back (tokens); only meaningful when Q > 0.
  double alice_collateral_back = 0.0;
  double bob_collateral_back = 0.0;
  double premium = 0.0;              ///< pr used (0 = no premium escrow)
  /// Premium settlement (tokens): back to Alice, or forfeited to Bob.
  double alice_premium_back = 0.0;
  double bob_premium_gain = 0.0;
  /// InvariantAuditor verdict over both chains (always true when auditing
  /// is disabled via SwapSetup::audit = false).
  bool invariants_ok = true;
  std::vector<std::string> invariant_violations;
  /// Fault telemetry: submissions the fault model swallowed, and how many
  /// re-broadcasts the parties issued after detecting a drop.
  int dropped_txs = 0;
  int rebroadcasts = 0;
};

/// Static setup of one swap.
struct SwapSetup {
  model::SwapParams params;   ///< timings + (for utilities) preferences
  double p_star = 2.0;        ///< agreed exchange rate
  double collateral = 0.0;    ///< Q per agent (Section IV); 0 disables
  /// Han et al. premium pr escrowed by Alice on Chain_a in an inverse HTLC
  /// (Section II-C baseline); 0 disables.  Composes with collateral.
  double premium = 0.0;
  /// Extra spending balance beyond the swap amounts (lets failed paths and
  /// collateral charges never bounce for lack of funds).
  double alice_extra_token_a = 0.0;
  double bob_extra_token_a = 0.0;
  /// Seed for Alice's secret generation (deterministic runs).
  std::uint64_t secret_seed = 0x5ECE7;

  // --- Robustness knobs (bench X9): relax assumption 1. -------------------
  /// Per-transaction uniform extra confirmation delay on each chain
  /// (hours); 0 = the paper's constant-tau model.
  double confirmation_jitter_a = 0.0;
  double confirmation_jitter_b = 0.0;
  /// Extra slack added to both HTLC expiries beyond the idealized t_a/t_b
  /// (safety margin against jitter).  The refund receipts shift
  /// accordingly.
  double expiry_margin = 0.0;
  /// Seed for the confirmation-jitter draws.
  std::uint64_t latency_seed = 0x1A7E4C1;

  // --- Fault model (bench X14): relax assumption 1 beyond timing. ---------
  /// Crash faults, censorship, halts and party outages; default = none.
  /// When active, parties re-broadcast dropped transactions with backoff
  /// and realized values are computed from final ledger balances (see
  /// docs/FAULTS.md).
  SwapFaults faults;
  /// Attach an InvariantAuditor to both ledgers for the run (cheap; on by
  /// default).  Verdict lands in SwapResult::invariants_ok.
  bool audit = true;

  // --- Observability (docs/OBSERVABILITY.md). -----------------------------
  /// Structured event sink for this run: broadcasts, confirmations, HTLC
  /// settlements, fault injections and every agent decision epoch with its
  /// game-theoretic context.  nullptr (the default) disables tracing at
  /// zero cost (a single null check per would-be event).
  obs::TraceRecorder* trace = nullptr;
  /// Aggregate counters/histograms across runs (thread-safe; shareable by
  /// concurrent run_swap calls).  nullptr disables.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Runs one complete swap and returns the audited result.  The function
/// owns its event queue and ledgers, so concurrent calls are independent.
///
/// @param setup     swap terms; setup.params must validate.
/// @param alice     Alice's decision rule (Stage::kT1Initiate, kT3Reveal).
/// @param bob       Bob's decision rule (Stage::kT2Lock, kT4Claim).
/// @param path      token-b price observed at decision/receipt times.
[[nodiscard]] SwapResult run_swap(const SwapSetup& setup,
                                  agents::Strategy& alice,
                                  agents::Strategy& bob,
                                  const PricePath& path);

}  // namespace swapgame::proto
