// Optionality decomposition: pricing the "free American option".
//
// Han et al. (paper Section II-C) view the HTLC swap as giving the
// initiator a free American option; the paper's own contribution is that
// BOTH agents hold optionality (Bob can also walk at t2).  This module
// makes those claims quantitative using the StrategyEvaluator:
//
//   alice_option_value = U^A(rational Alice, rational Bob)
//                      - U^A(committed Alice, rational Bob)
//   bob_option_value   = U^B(rational Alice, rational Bob)
//                      - U^B(rational Alice, committed Bob)
//
// where "committed" means contractually bound to continue (cutoff 0 /
// full region).  Also computes the cross-impact each agent's optionality
// has on the OTHER agent, and the premium pr that makes Alice indifferent
// between keeping and giving up her option (the fair premium Han et al.'s
// mechanism would have her pay).
#pragma once

#include "params.hpp"
#include "strategy_value.hpp"

namespace swapgame::model {

/// The four corners of the commitment square plus derived option values.
struct OptionalityDecomposition {
  // U^A / U^B under (Alice strategy, Bob strategy) in
  // {rational (R), committed (C)} x {rational, committed}:
  double alice_rr = 0.0, bob_rr = 0.0;  ///< both rational (equilibrium)
  double alice_cr = 0.0, bob_cr = 0.0;  ///< Alice committed, Bob rational
  double alice_rc = 0.0, bob_rc = 0.0;  ///< Alice rational, Bob committed
  double alice_cc = 0.0, bob_cc = 0.0;  ///< both committed (honest protocol)

  /// What Alice's own optionality is worth to her (>= 0 by optimality).
  [[nodiscard]] double alice_option_value() const noexcept {
    return alice_rr - alice_cr;
  }
  /// What Bob's own optionality is worth to him.
  [[nodiscard]] double bob_option_value() const noexcept {
    return bob_rr - bob_rc;
  }
  /// Cost Alice's optionality imposes on Bob (Bob's value drop when Alice
  /// goes from committed to rational, holding Bob rational).
  [[nodiscard]] double alice_option_cost_to_bob() const noexcept {
    return bob_cr - bob_rr;
  }
  /// Cost Bob's optionality imposes on Alice.
  [[nodiscard]] double bob_option_cost_to_alice() const noexcept {
    return alice_rc - alice_rr;
  }

  double success_rate_rr = 0.0;  ///< completion probability, both rational
  double success_rate_cc = 0.0;  ///< = 1 by construction (both committed)
};

/// Computes the full decomposition at one (params, P*).
[[nodiscard]] OptionalityDecomposition decompose_optionality(
    const SwapParams& params, double p_star);

/// The premium that compensates Bob for Alice's optionality: the smallest
/// pr at which Bob's equilibrium value in the premium game reaches (within
/// relative tolerance `value_tol` -- the limit is approached
/// asymptotically as Alice's cutoff shrinks, never attained exactly) his
/// value against a committed Alice.  Returns nullopt if no premium in
/// [0, pr_hi] achieves it.
[[nodiscard]] std::optional<double> compensating_premium(
    const SwapParams& params, double p_star, double pr_hi = 4.0,
    double tol = 1e-4, double value_tol = 1e-6);

}  // namespace swapgame::model
