#include "collateral_optimizer.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "collateral_game.hpp"
#include "solver_cache.hpp"

namespace swapgame::model {

namespace {

double objective_of(const CollateralGame& game, CollateralObjective objective) {
  switch (objective) {
    case CollateralObjective::kSuccessRate:
      return game.success_rate();
    case CollateralObjective::kJointSurplus:
      return (game.alice_t1_cont() - game.alice_t1_stop()) +
             (game.bob_t1_cont() - game.bob_t1_stop());
  }
  throw std::logic_error("objective_of: unknown objective");
}

}  // namespace

CollateralChoice optimize_collateral(const SwapParams& params, double p_star,
                                     CollateralObjective objective,
                                     double q_lo, double q_hi, int grid) {
  if (!(q_hi > q_lo) || !(q_lo >= 0.0) || grid < 2) {
    throw std::invalid_argument(
        "optimize_collateral: need 0 <= q_lo < q_hi and grid >= 2");
  }
  // Q moves smoothly along the grid and golden-section iterates, so one
  // warm-chained sweeper serves the whole optimization.
  CollateralGameSweeper sweeper(params);
  CollateralChoice best;
  bool found = false;
  for (int i = 0; i <= grid; ++i) {
    const double q = q_lo + (q_hi - q_lo) * static_cast<double>(i) / grid;
    const auto game = sweeper.at(p_star, q);
    const bool engaged = game->engaged();
    if (objective == CollateralObjective::kJointSurplus && !engaged) continue;
    const double value = objective_of(*game, objective);
    if (!found || value > best.objective_value) {
      best = {q, value, game->success_rate(), engaged};
      found = true;
    }
  }
  if (!found) {
    // No engagement-feasible Q: report the unconstrained Q = q_lo outcome.
    const auto game = sweeper.at(p_star, q_lo);
    best = {q_lo, objective_of(*game, objective), game->success_rate(),
            game->engaged()};
  }

  // Golden-section refinement around the best grid cell (the objective is
  // smooth and single-peaked at paper-scale parameters).
  const double cell = (q_hi - q_lo) / grid;
  double lo = std::max(q_lo, best.collateral - cell);
  double hi = std::min(q_hi, best.collateral + cell);
  constexpr double kPhi = 0.6180339887498949;
  for (int iter = 0; iter < 40 && hi - lo > 1e-6; ++iter) {
    const double m1 = hi - kPhi * (hi - lo);
    const double m2 = lo + kPhi * (hi - lo);
    const auto g1 = sweeper.at(p_star, m1);
    const auto g2 = sweeper.at(p_star, m2);
    const bool ok1 = objective != CollateralObjective::kJointSurplus || g1->engaged();
    const bool ok2 = objective != CollateralObjective::kJointSurplus || g2->engaged();
    const double v1 = ok1 ? objective_of(*g1, objective) : -1e300;
    const double v2 = ok2 ? objective_of(*g2, objective) : -1e300;
    if (v1 < v2) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  const double q_refined = 0.5 * (lo + hi);
  const auto refined = sweeper.at(p_star, q_refined);
  const bool engaged = refined->engaged();
  if (objective != CollateralObjective::kJointSurplus || engaged) {
    const double value = objective_of(*refined, objective);
    if (value > best.objective_value) {
      best = {q_refined, value, refined->success_rate(), engaged};
    }
  }
  return best;
}

std::optional<double> min_collateral_for_sr(const SwapParams& params,
                                            double p_star, double target_sr,
                                            double q_hi, double tol) {
  if (!(target_sr > 0.0 && target_sr <= 1.0)) {
    throw std::invalid_argument("min_collateral_for_sr: target in (0, 1]");
  }
  CollateralGameSweeper sweeper(params);
  const auto sr_of = [&](double q) {
    return sweeper.at(p_star, q)->success_rate();
  };
  if (sr_of(0.0) >= target_sr) return 0.0;
  if (sr_of(q_hi) < target_sr) return std::nullopt;
  double lo = 0.0, hi = q_hi;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (sr_of(mid) >= target_sr) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace swapgame::model
