#include "premium_uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "basic_game.hpp"
#include "math/gbm.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"

namespace swapgame::model {

void AlphaPrior::validate_and_normalize() {
  if (alphas.empty() || alphas.size() != weights.size()) {
    throw std::invalid_argument("AlphaPrior: support/weights size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    if (!std::isfinite(alphas[i]) || alphas[i] < -1.0) {
      throw std::invalid_argument("AlphaPrior: alpha must be finite and >= -1");
    }
    if (!(weights[i] >= 0.0) || !std::isfinite(weights[i])) {
      throw std::invalid_argument("AlphaPrior: weights must be >= 0");
    }
    total += weights[i];
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("AlphaPrior: total weight must be positive");
  }
  for (double& w : weights) w /= total;
}

AlphaPrior AlphaPrior::point(double alpha) {
  AlphaPrior p{{alpha}, {1.0}};
  p.validate_and_normalize();
  return p;
}

double AlphaPrior::mean() const noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) m += alphas[i] * weights[i];
  return m;
}

UncertainPremiumGame::UncertainPremiumGame(const SwapParams& params,
                                           AlphaPrior belief_alpha_a,
                                           AlphaPrior belief_alpha_b,
                                           double p_star)
    : params_(params), belief_a_(std::move(belief_alpha_a)),
      belief_b_(std::move(belief_alpha_b)), p_star_(p_star) {
  params_.validate();
  belief_a_.validate_and_normalize();
  belief_b_.validate_and_normalize();
  if (!(p_star > 0.0) || !std::isfinite(p_star)) {
    throw std::invalid_argument("UncertainPremiumGame: p_star must be > 0");
  }
  compute_band();
}

double UncertainPremiumGame::cutoff_for_alpha(double alpha) const {
  const double rA = params_.alice.r;
  const double mu = params_.gbm.mu;
  return std::exp((rA - mu) * params_.tau_b -
                  rA * (params_.eps_b + 2.0 * params_.tau_a)) *
         p_star_ / (1.0 + alpha);
}

double UncertainPremiumGame::bob_t2_cont_bayes(double p_t2) const {
  // Eq. (21) with the indicator split averaged over the alpha^A prior: each
  // candidate Alice has her own cutoff, so the reveal probability and the
  // refund partial expectation are prior mixtures.
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double bob_t3_cont = (1.0 + params_.bob.alpha) * p_star_ *
                             std::exp(-params_.bob.r *
                                      (params_.eps_b + params_.tau_a));
  const double refund_growth =
      std::exp((params_.gbm.mu - params_.bob.r) * 2.0 * params_.tau_b);
  double value = 0.0;
  for (std::size_t i = 0; i < belief_a_.alphas.size(); ++i) {
    const double L = cutoff_for_alpha(belief_a_.alphas[i]);
    const double branch = law.survival(L) * bob_t3_cont +
                          refund_growth * law.partial_expectation_below(L);
    value += belief_a_.weights[i] * branch;
  }
  return value * std::exp(-params_.bob.r * params_.tau_b);
}

std::optional<math::Interval> UncertainPremiumGame::band_for_bob(
    double alpha_b) const {
  // Same construction as BasicGame::compute_t2_band but with the Bayesian
  // continuation value and a hypothetical alpha^B.
  SwapParams p = params_;
  p.bob.alpha = alpha_b;
  const UncertainPremiumGame* self = this;
  const auto gap = [self, &p](double price) {
    // Rebuild Bob's Bayesian cont value with premium alpha_b.
    const math::GbmLaw law(p.gbm, price, p.tau_b);
    const double bob_t3_cont =
        (1.0 + p.bob.alpha) * self->p_star_ *
        std::exp(-p.bob.r * (p.eps_b + p.tau_a));
    const double refund_growth =
        std::exp((p.gbm.mu - p.bob.r) * 2.0 * p.tau_b);
    double value = 0.0;
    for (std::size_t i = 0; i < self->belief_a_.alphas.size(); ++i) {
      const double L = self->cutoff_for_alpha(self->belief_a_.alphas[i]);
      value += self->belief_a_.weights[i] *
               (law.survival(L) * bob_t3_cont +
                refund_growth * law.partial_expectation_below(L));
    }
    return value * std::exp(-p.bob.r * p.tau_b) - price;
  };
  const double scan_hi = 10.0 * std::max(p_star_, params_.p_t0);
  // Same strict-preference tie-break as the complete-information solvers,
  // so the degenerate-equality regimes and SR comparisons line up.
  const double tie = 1e-10 * scan_hi;
  const auto tied_gap = [&gap, tie](double price) { return gap(price) - tie; };
  const std::vector<double> roots =
      math::find_all_roots(tied_gap, 1e-7 * scan_hi, scan_hi, 2048);
  if (roots.size() < 2) return std::nullopt;
  return math::Interval{roots.front(), roots.back()};
}

void UncertainPremiumGame::compute_band() {
  band_ = band_for_bob(params_.bob.alpha);
}

double UncertainPremiumGame::alice_t1_cont_bayes() const {
  // Alice mixes over the bands of each candidate Bob.  Inside a candidate
  // band her value is the complete-information alice_t2_cont (her own t3
  // behaviour does not depend on beliefs); outside she is refunded.
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  const BasicGame reference(params_, p_star_);
  double value = 0.0;
  for (std::size_t i = 0; i < belief_b_.alphas.size(); ++i) {
    const auto band = band_for_bob(belief_b_.alphas[i]);
    double branch;
    if (!band) {
      branch = reference.alice_t2_stop();
    } else {
      const double inside = math::gauss_legendre(
          [&](double x) { return law.pdf(x) * reference.alice_t2_cont(x); },
          band->lo, band->hi, 48);
      const double outside_prob = law.cdf(band->lo) + law.survival(band->hi);
      branch = inside + outside_prob * reference.alice_t2_stop();
    }
    value += belief_b_.weights[i] * branch;
  }
  return value * std::exp(-params_.alice.r * params_.tau_a);
}

Action UncertainPremiumGame::alice_decision_t1() const {
  return alice_t1_cont_bayes() > alice_t1_stop() ? Action::kCont
                                                 : Action::kStop;
}

double UncertainPremiumGame::realized_success_rate() const {
  if (!band_) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double L = cutoff_for_alpha(params_.alice.alpha);  // true cutoff
  return math::gauss_legendre(
      [&](double x) {
        const math::GbmLaw law_b(params_.gbm, x, params_.tau_b);
        return law_a.pdf(x) * law_b.survival(L);
      },
      band_->lo, band_->hi, 48);
}

double UncertainPremiumGame::believed_success_rate() const {
  if (!band_) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  return math::gauss_legendre(
      [&](double x) {
        const math::GbmLaw law_b(params_.gbm, x, params_.tau_b);
        double reveal = 0.0;
        for (std::size_t i = 0; i < belief_a_.alphas.size(); ++i) {
          reveal += belief_a_.weights[i] *
                    law_b.survival(cutoff_for_alpha(belief_a_.alphas[i]));
        }
        return law_a.pdf(x) * reveal;
      },
      band_->lo, band_->hi, 48);
}

}  // namespace swapgame::model
