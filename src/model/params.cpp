#include "params.hpp"

#include <cmath>
#include <stdexcept>

namespace swapgame::model {

void AgentParams::validate() const {
  if (!std::isfinite(alpha) || alpha < -1.0) {
    throw std::invalid_argument("AgentParams: alpha must be finite and >= -1");
  }
  if (!std::isfinite(r) || !(r > 0.0)) {
    throw std::invalid_argument("AgentParams: r must be finite and > 0");
  }
}

void SwapParams::validate() const {
  alice.validate();
  bob.validate();
  gbm.validate();
  if (!(tau_a > 0.0) || !std::isfinite(tau_a)) {
    throw std::invalid_argument("SwapParams: tau_a must be > 0");
  }
  if (!(tau_b > 0.0) || !std::isfinite(tau_b)) {
    throw std::invalid_argument("SwapParams: tau_b must be > 0");
  }
  if (!(eps_b > 0.0) || !std::isfinite(eps_b)) {
    throw std::invalid_argument("SwapParams: eps_b must be > 0");
  }
  if (!(eps_b < tau_b)) {
    throw std::invalid_argument("SwapParams: eps_b must be < tau_b (Eq. 3)");
  }
  if (!(p_t0 > 0.0) || !std::isfinite(p_t0)) {
    throw std::invalid_argument("SwapParams: p_t0 must be > 0");
  }
}

SwapParams SwapParams::table3_defaults() {
  SwapParams p;
  p.alice = {0.3, 0.01};
  p.bob = {0.3, 0.01};
  p.tau_a = 3.0;
  p.tau_b = 4.0;
  p.eps_b = 1.0;
  p.p_t0 = 2.0;
  p.gbm = {0.002, 0.1};
  return p;
}

const char* to_string(Action a) noexcept {
  return a == Action::kCont ? "cont" : "stop";
}

}  // namespace swapgame::model
