// Success-premium uncertainty (paper Section I: "we study the game with
// uncertainty in counterparties' success premium").
//
// The complete-information game assumes each agent knows the other's
// (alpha, r) exactly (assumption 7).  Here that is relaxed for alpha: each
// agent holds a discrete common-knowledge prior over the counterparty's
// success premium and best-responds to the induced *mixture* of threshold
// behaviours:
//
//  * Bob at t2 does not know Alice's t3 cutoff; his continuation value
//    averages the reveal probability over his prior on alpha^A.
//  * Alice at t1 does not know Bob's t2 band; her initiation value averages
//    over the bands induced by her prior on alpha^B (each such Bob himself
//    best-responds under the alpha^A prior).
//
// The realized success rate then depends on the *true* premiums, which may
// differ from the prior mean -- quantifying how mis-calibrated beliefs
// erode the success rate (bench X4).
#pragma once

#include <optional>
#include <vector>

#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

/// Discrete prior over a counterparty's success premium alpha.
struct AlphaPrior {
  std::vector<double> alphas;
  std::vector<double> weights;  ///< nonnegative, normalized by validate()

  /// Throws std::invalid_argument on size mismatch, empty support, negative
  /// weights or zero total mass; normalizes weights to sum to 1.
  void validate_and_normalize();

  /// Convenience: a point mass (recovers complete information).
  [[nodiscard]] static AlphaPrior point(double alpha);

  [[nodiscard]] double mean() const noexcept;
};

/// Bayesian swap game under alpha-uncertainty at a fixed exchange rate.
class UncertainPremiumGame {
 public:
  /// @param params        baseline parameters; params.alice.alpha and
  ///                      params.bob.alpha are the *true* premiums used for
  ///                      realized outcomes.
  /// @param belief_alpha_a Bob's prior over Alice's premium.
  /// @param belief_alpha_b Alice's prior over Bob's premium.
  UncertainPremiumGame(const SwapParams& params, AlphaPrior belief_alpha_a,
                       AlphaPrior belief_alpha_b, double p_star);

  /// Bob's t2 continuation value averaging Alice's reveal behaviour over
  /// the alpha^A prior.
  [[nodiscard]] double bob_t2_cont_bayes(double p_t2) const;

  /// Bob's continuation band under his prior (the band a Bayesian Bob with
  /// the *true* alpha^B actually plays).
  [[nodiscard]] std::optional<math::Interval> bob_t2_band_bayes() const noexcept {
    return band_;
  }

  /// Alice's t1 initiation value under her prior over alpha^B: a mixture of
  /// values across the bands each candidate Bob would play.
  [[nodiscard]] double alice_t1_cont_bayes() const;
  [[nodiscard]] double alice_t1_stop() const noexcept { return p_star_; }
  [[nodiscard]] Action alice_decision_t1() const;

  /// Realized success rate: Bayesian Bob's band (true alpha^B, prior on
  /// alpha^A) combined with the *true* Alice cutoff.
  [[nodiscard]] double realized_success_rate() const;

  /// Success rate Bob *believes* he faces (averaging the reveal probability
  /// over his alpha^A prior).  The gap to realized_success_rate() measures
  /// the cost of belief mis-calibration.
  [[nodiscard]] double believed_success_rate() const;

 private:
  /// Alice's t3 cutoff for a hypothetical premium value (Eq. 18 with
  /// alpha^A = alpha).
  [[nodiscard]] double cutoff_for_alpha(double alpha) const;
  /// Band of a Bob with premium alpha_b best-responding under the alpha^A
  /// prior.
  [[nodiscard]] std::optional<math::Interval> band_for_bob(double alpha_b) const;
  void compute_band();

  SwapParams params_;
  AlphaPrior belief_a_;
  AlphaPrior belief_b_;
  double p_star_;
  std::optional<math::Interval> band_;
};

}  // namespace swapgame::model
