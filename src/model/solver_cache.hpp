// Solver acceleration for parameter sweeps (ROADMAP: hot-path speed).
//
// Every figure/table sweep builds hundreds of games at closely spaced
// (P*, Q) points, and each cold construction re-isolates the t2-region
// roots over a 2048/4096-sample scan -- the dominant cost of regenerating
// the paper's artifacts.  Neighbouring grid points have nearly identical
// root structure, so a sweep can warm-start each solve from the previous
// point's roots (see BasicGame's warm constructor) and memoize games that
// several scans query at the same rate.
//
// The sweepers below are deliberately NOT thread-safe: a parallel sweep
// creates one sweeper per worker chunk (grid points inside a chunk are
// contiguous, so the warm chain stays coherent).  The process-wide
// feasible-band cache *is* thread-safe.
//
// Invalidation: none needed.  Games are immutable, sweeper state is only a
// hint (always verified against the target game's own indifference
// function, with a cold-scan fallback), and the feasible-band cache is
// keyed by the exact bit patterns of every SwapParams field plus the scan
// window -- any parameter change is a different key.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "basic_game.hpp"
#include "collateral_game.hpp"
#include "params.hpp"

namespace swapgame::model {

/// Warm-chained, memoizing factory for BasicGame over a P* sweep.
/// Queries at an exact P* seen before return the cached game; new P* values
/// are solved warm-started from the most recently built game's t2 roots.
/// Results agree with cold construction to solver tolerance (~1e-12).
/// Not thread-safe -- use one sweeper per thread/chunk.
class BasicGameSweeper {
 public:
  explicit BasicGameSweeper(const SwapParams& params);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }

  /// The game at `p_star` (shared ownership; cached for repeat queries).
  std::shared_ptr<const BasicGame> at(double p_star);

 private:
  SwapParams params_;
  std::vector<double> last_roots_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const BasicGame>> memo_;
};

/// Warm-chained, memoizing factory for CollateralGame over a (P*, Q) sweep.
/// Chains both the embedded basic game's roots and the collateral region's
/// roots; the chain survives moves in either coordinate (hints are always
/// verified, so a structural change just falls back to the cold scan).
/// Not thread-safe -- use one sweeper per thread/chunk.
class CollateralGameSweeper {
 public:
  explicit CollateralGameSweeper(const SwapParams& params);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }

  /// The game at (`p_star`, `collateral`) (shared; cached for repeats).
  std::shared_ptr<const CollateralGame> at(double p_star, double collateral);

 private:
  struct Key {
    std::uint64_t p_bits = 0;
    std::uint64_t q_bits = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  SwapParams params_;
  std::vector<double> last_basic_roots_;
  std::vector<double> last_roots_;
  std::unordered_map<Key, std::shared_ptr<const CollateralGame>, KeyHash> memo_;
};

/// Process-wide memoized alice_feasible_band: the band depends only on
/// SwapParams (P*-independent), and several artifacts re-derive it for the
/// same parameter set.  Keyed by the exact bits of every parameter and the
/// scan window; thread-safe.
[[nodiscard]] FeasibleBand cached_feasible_band(const SwapParams& params,
                                                double scan_lo = 0.05,
                                                double scan_hi = 10.0,
                                                int scan_samples = 400);

}  // namespace swapgame::model
