// Backward induction for the basic HTLC swap game (paper Section III-E).
//
// The solver evaluates both agents' stage utilities at every decision point
// (t4, t3, t2, t1), derives the rational thresholds --
//   * Alice's t3 reveal cutoff  P_t3_lo                    (Eq. 18),
//   * Bob's t2 continuation band (P_t2_lo, P_t2_hi)        (Eq. 24),
//   * Alice's t1 feasible exchange-rate band (P*_lo, P*_hi) (Eqs. 29/30)
// -- and the post-initiation success rate SR(P*) (Eq. 31).
//
// Partial expectations of the lognormal transition law give closed forms
// for the t2 utilities; the t1 utilities and SR integrate t2 quantities
// over the price law by adaptive quadrature.
#pragma once

#include <optional>
#include <vector>

#include "math/cached_value.hpp"
#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

/// All backward-induction utilities and thresholds for one (params, P_star)
/// pair.  Immutable after construction; thresholds are computed eagerly.
class BasicGame {
 public:
  /// @throws std::invalid_argument on invalid params or p_star <= 0.
  BasicGame(const SwapParams& params, double p_star);

  /// Warm-started construction for parameter sweeps: `t2_root_hints` are the
  /// t2-region roots (see t2_roots()) of a game at nearby parameters.  The
  /// hints only accelerate the root isolation -- each hinted root is
  /// re-bracketed locally, Brent-polished on this game's own indifference
  /// function, and cross-checked by a coarse verification scan; on any
  /// mismatch the solver falls back to the full cold scan.  Results agree
  /// with the cold constructor to solver tolerance (~1e-12).
  BasicGame(const SwapParams& params, double p_star,
            const std::vector<double>& t2_root_hints);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }
  [[nodiscard]] double p_star() const noexcept { return p_star_; }

  // --- t4: Bob's claim decision (Section III-E1). -------------------------
  /// Bob continues with certainty once the secret is visible: claiming
  /// dominates forfeiting the locked token-a.
  [[nodiscard]] Action bob_decision_t4() const noexcept { return Action::kCont; }

  // --- t3: Alice's reveal decision (Eqs. (14)-(19)). ----------------------
  [[nodiscard]] double alice_t3_cont(double p_t3) const;  ///< Eq. (14)
  [[nodiscard]] double alice_t3_stop() const;             ///< Eq. (16)
  [[nodiscard]] double bob_t3_cont() const;               ///< Eq. (15)
  [[nodiscard]] double bob_t3_stop(double p_t3) const;    ///< Eq. (17)
  /// The cutoff price P_t3_lo of Eq. (18): Alice continues iff P_t3 exceeds it.
  [[nodiscard]] double alice_t3_cutoff() const noexcept { return t3_cutoff_; }
  [[nodiscard]] Action alice_decision_t3(double p_t3) const;  ///< Eq. (19)

  // --- t2: Bob's lock decision (Eqs. (20)-(24)). --------------------------
  [[nodiscard]] double alice_t2_cont(double p_t2) const;  ///< Eq. (20)
  [[nodiscard]] double alice_t2_stop() const;             ///< Eq. (22)
  [[nodiscard]] double bob_t2_cont(double p_t2) const;    ///< Eq. (21)
  [[nodiscard]] double bob_t2_stop(double p_t2) const;    ///< Eq. (23)
  /// Bob's continuation band (P_t2_lo, P_t2_hi) for the paper's standard
  /// regime (two indifference points).  nullopt when the cont region is
  /// empty (alpha^B too small -- Section III-E3 note) OR when it is not a
  /// single interval (possible outside the paper's mu < r regime); the
  /// fully general region is bob_t2_region().
  [[nodiscard]] std::optional<math::Interval> bob_t2_band() const noexcept;
  /// Bob's continuation region in full generality: with mu >= r his refund
  /// branch outgrows his discounting and the region extends down to 0
  /// (single indifference point), a case the paper's Table III defaults
  /// never reach.
  [[nodiscard]] const math::IntervalSet& bob_t2_region() const noexcept {
    return t2_region_;
  }
  /// The sorted indifference roots defining bob_t2_region(); feed these to
  /// the warm-start constructor of a game at nearby parameters.
  [[nodiscard]] const std::vector<double>& t2_roots() const noexcept {
    return t2_roots_;
  }
  [[nodiscard]] Action bob_decision_t2(double p_t2) const;  ///< Eq. (24)

  // --- t1: Alice's initiation decision (Eqs. (25)-(30)). ------------------
  [[nodiscard]] double alice_t1_cont() const;  ///< Eq. (25)
  [[nodiscard]] double alice_t1_stop() const;  ///< Eq. (27): P_star
  [[nodiscard]] double bob_t1_cont() const;    ///< Eq. (26)
  [[nodiscard]] double bob_t1_stop() const;    ///< Eq. (28): P_t1
  [[nodiscard]] Action alice_decision_t1() const;  ///< Eq. (30)

  // --- Success rate (Section III-F). ---------------------------------------
  /// SR(P_star): probability the swap completes given Alice initiated at t1
  /// (Eq. (31)).  Zero when Bob's t2 band is empty.
  [[nodiscard]] double success_rate() const;

  /// P[P_t2 in Bob's cont region] under the tau_a transition law from P_t0:
  /// the first factor of the Eq. (31) integral, in closed form (lognormal
  /// CDF differences).  This is the analytic mean of the "Bob locked at t2"
  /// indicator, which the variance-reduced Monte-Carlo engine uses as its
  /// control variate (sim/estimators.hpp).
  [[nodiscard]] double bob_t2_cont_probability() const;

 private:
  void compute_t3_cutoff();
  void compute_t2_region(const std::vector<double>* hints);
  [[nodiscard]] double compute_alice_t1_cont() const;
  [[nodiscard]] double compute_bob_t1_cont() const;
  [[nodiscard]] double compute_success_rate() const;

  SwapParams params_;
  double p_star_;
  double t3_cutoff_ = 0.0;
  math::IntervalSet t2_region_;
  std::vector<double> t2_roots_;
  // Quadrature-backed t1 quantities, integrated once per game instance even
  // when the game is shared across Monte-Carlo samples or sweep threads.
  math::CachedDouble alice_t1_cont_cache_;
  math::CachedDouble bob_t1_cont_cache_;
  math::CachedDouble success_rate_cache_;
};

/// Alice's feasible exchange-rate band (P*_lo, P*_hi) at t1: the set of
/// rates for which she initiates (Eq. (29) reports (1.5, 2.5) at Table III
/// defaults).  Found by root-scanning alice_t1_cont(P*) - P* over
/// [scan_lo, scan_hi].
struct FeasibleBand {
  bool viable = false;  ///< false when no rate makes Alice initiate
  double lo = 0.0;
  double hi = 0.0;
};

[[nodiscard]] FeasibleBand alice_feasible_band(const SwapParams& params,
                                               double scan_lo = 0.05,
                                               double scan_hi = 10.0,
                                               int scan_samples = 400);

/// The P_star maximizing SR within the feasible band (Section III-F3 uses
/// "P* chosen optimally"); returns nullopt when the band is empty.
struct OptimalRate {
  double p_star = 0.0;
  double success_rate = 0.0;
};

[[nodiscard]] std::optional<OptimalRate> sr_maximizing_rate(
    const SwapParams& params, int grid = 200);

}  // namespace swapgame::model
