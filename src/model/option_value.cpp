#include "option_value.hpp"

#include <cmath>
#include <stdexcept>

#include "premium_game.hpp"

namespace swapgame::model {

OptionalityDecomposition decompose_optionality(const SwapParams& params,
                                               double p_star) {
  const StrategyEvaluator evaluator(params, p_star);
  const ThresholdProfile rational = evaluator.equilibrium();
  const ThresholdProfile honest = ThresholdProfile::honest();

  // Mixed profiles: one side committed, the other best-responding to that
  // commitment (the deviator re-optimizes against the committed opponent).
  ThresholdProfile alice_committed;  // Alice cutoff 0; Bob best-responds
  alice_committed.alice_cutoff = 0.0;
  alice_committed.bob_region = evaluator.bob_best_response(0.0);

  ThresholdProfile bob_committed;  // Bob full region; Alice best-responds
  bob_committed.alice_cutoff = evaluator.alice_best_response_cutoff();
  bob_committed.bob_region = honest.bob_region;

  OptionalityDecomposition d;
  d.alice_rr = evaluator.alice_value(rational);
  d.bob_rr = evaluator.bob_value(rational);
  d.alice_cr = evaluator.alice_value(alice_committed);
  d.bob_cr = evaluator.bob_value(alice_committed);
  d.alice_rc = evaluator.alice_value(bob_committed);
  d.bob_rc = evaluator.bob_value(bob_committed);
  d.alice_cc = evaluator.alice_value(honest);
  d.bob_cc = evaluator.bob_value(honest);
  d.success_rate_rr = evaluator.success_rate(rational);
  d.success_rate_cc = evaluator.success_rate(honest);
  return d;
}

std::optional<double> compensating_premium(const SwapParams& params,
                                           double p_star, double pr_hi,
                                           double tol, double value_tol) {
  if (!(pr_hi > 0.0) || !(tol > 0.0) || !(value_tol > 0.0)) {
    throw std::invalid_argument("compensating_premium: bad search bounds");
  }
  // Bob's target: his value against a committed Alice (no optionality risk
  // from her side), with him best-responding.  Reached only in the limit,
  // hence the relative tolerance.
  const StrategyEvaluator evaluator(params, p_star);
  ThresholdProfile alice_committed;
  alice_committed.alice_cutoff = 0.0;
  alice_committed.bob_region = evaluator.bob_best_response(0.0);
  const double target =
      evaluator.bob_value(alice_committed) * (1.0 - value_tol);

  const auto bob_value_at = [&](double pr) {
    const PremiumGame game(params, p_star, pr);
    return game.bob_t1_cont();
  };
  if (bob_value_at(0.0) >= target) return 0.0;
  if (bob_value_at(pr_hi) < target) return std::nullopt;
  double lo = 0.0, hi = pr_hi;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (bob_value_at(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace swapgame::model
