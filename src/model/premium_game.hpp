// The premium mechanism of Han, Lin & Yu (AFT'19) as a comparison baseline
// (paper Section II-C: "to reduce the risk of malicious behaviour by the
// swap initiator, the authors propose to implement a premium mechanism").
//
// Alice (the initiator, who holds the free American option) escrows a
// premium `pr` of token-a on Chain_a at t1 in an INVERSE hash-time-locked
// escrow carrying the swap's hash:
//   * if the secret is revealed before the escrow's expiry t_a (Alice
//     performed), the escrow refunds Alice;
//   * if not (Alice waived after Bob locked), the escrow pays Bob at t_a;
//   * if Bob never locks, the escrow is cancelled back to Alice.
// Unlike Section IV's collateral, only the INITIATOR posts -- the
// mechanism targets Alice's t3 optionality and leaves Bob's t2 optionality
// untouched, which is exactly the asymmetry this module lets the benches
// compare (X5).
//
// Derivations mirror CollateralGame with one-sided deposits; thresholds:
//   L_pr = e^{(r^A - mu) tau_b} / (1 + alpha^A)
//          * max(P* e^{-r^A (eps_b + 2 tau_a)} - pr e^{-r^A tau_a}, 0)
// and Bob's t2 continuation region is again an odd-root interval set: for
// near-worthless token-b Bob locks anyway, *hoping* Alice aborts so he
// harvests the premium.
#pragma once

#include "basic_game.hpp"
#include "math/cached_value.hpp"
#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

/// Backward induction for the premium game at one (params, P_star, pr).
class PremiumGame {
 public:
  /// @throws std::invalid_argument on invalid params, p_star <= 0, pr < 0.
  PremiumGame(const SwapParams& params, double p_star, double premium);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }
  [[nodiscard]] double p_star() const noexcept { return p_star_; }
  [[nodiscard]] double premium() const noexcept { return pr_; }
  [[nodiscard]] const BasicGame& basic() const noexcept { return basic_; }

  // --- t3: Alice's reveal decision. ----------------------------------------
  /// Cont recovers the premium (claim confirms tau_a after t3).
  [[nodiscard]] double alice_t3_cont(double p_t3) const;
  /// Stop forfeits the premium to Bob; otherwise Eq. (16).
  [[nodiscard]] double alice_t3_stop() const;
  [[nodiscard]] double bob_t3_cont() const;           ///< Eq. (15), unchanged
  [[nodiscard]] double bob_t3_stop(double p_t3) const;  ///< Eq. (17) + premium
  [[nodiscard]] double alice_t3_cutoff() const noexcept { return t3_cutoff_; }
  [[nodiscard]] Action alice_decision_t3(double p_t3) const;

  // --- t2: Bob's lock decision. ---------------------------------------------
  [[nodiscard]] double alice_t2_cont(double p_t2) const;
  [[nodiscard]] double bob_t2_cont(double p_t2) const;
  [[nodiscard]] double bob_t2_stop(double p_t2) const;  ///< Eq. (23)
  [[nodiscard]] const math::IntervalSet& bob_t2_region() const noexcept {
    return t2_region_;
  }
  [[nodiscard]] Action bob_decision_t2(double p_t2) const;

  // --- t1: Alice's initiation decision (only she posts). --------------------
  [[nodiscard]] double alice_t1_cont() const;
  [[nodiscard]] double alice_t1_stop() const;  ///< P* + pr
  [[nodiscard]] double bob_t1_cont() const;
  [[nodiscard]] double bob_t1_stop() const;    ///< P_t0
  [[nodiscard]] Action alice_decision_t1() const;

  // --- Success rate. ----------------------------------------------------------
  [[nodiscard]] double success_rate() const;

 private:
  void compute_t3_cutoff();
  void compute_t2_region();
  [[nodiscard]] double compute_alice_t1_cont() const;
  [[nodiscard]] double compute_bob_t1_cont() const;
  [[nodiscard]] double compute_success_rate() const;

  SwapParams params_;
  double p_star_;
  double pr_;
  BasicGame basic_;
  double t3_cutoff_ = 0.0;
  math::IntervalSet t2_region_;
  // Quadrature-backed t1 quantities, integrated once per game instance even
  // when the game is shared across Monte-Carlo samples or sweep threads.
  math::CachedDouble alice_t1_cont_cache_;
  math::CachedDouble bob_t1_cont_cache_;
  math::CachedDouble success_rate_cache_;
};

/// Alice's feasible rate set under a given premium (she must prefer
/// initiating over keeping P* + pr).
[[nodiscard]] math::IntervalSet premium_viable_rates(const SwapParams& params,
                                                     double premium,
                                                     double scan_lo = 0.05,
                                                     double scan_hi = 10.0,
                                                     int scan_samples = 400);

}  // namespace swapgame::model
