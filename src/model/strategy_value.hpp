// Valuation of arbitrary threshold-strategy profiles and best responses.
//
// The backward-induction solution (BasicGame) produces one particular
// profile; this module values ANY profile of the same shape --
//   Alice: reveal at t3 iff P_t3 > cutoff    (0 = honest, +inf = never)
//   Bob:   lock at t2 iff P_t2 in region     ((0, inf) = honest, {} = never)
// -- which enables:
//   * equilibrium verification: the rational thresholds are mutual best
//     responses, and any deviation in threshold space loses utility
//     (tested by grid search);
//   * optionality decomposition: the value an agent extracts by playing
//     the rational threshold instead of committing to honesty (the "free
//     American option" of Han et al., paper Section II-C) -- see
//     option_value.hpp;
//   * what-if analysis for non-equilibrium opponents (e.g. the honest
//     counterparties of the market_scenarios example).
//
// Values are at-t1 expected utilities CONDITIONAL on the swap being
// initiated (Alice's t1 participation choice is an outer comparison
// against P*, exactly as in Eq. (30)).
#pragma once

#include <limits>

#include "basic_game.hpp"
#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

/// A pair of threshold strategies.
struct ThresholdProfile {
  /// Alice reveals iff P_t3 > alice_cutoff.
  double alice_cutoff = 0.0;
  /// Bob locks iff P_t2 is in bob_region.
  math::IntervalSet bob_region;

  [[nodiscard]] static ThresholdProfile honest();
};

/// Values threshold profiles for one (params, P*) pair.
class StrategyEvaluator {
 public:
  StrategyEvaluator(const SwapParams& params, double p_star);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }
  [[nodiscard]] double p_star() const noexcept { return p_star_; }

  /// Alice's expected utility at t1 given both agents play `profile` and
  /// the swap is initiated.
  [[nodiscard]] double alice_value(const ThresholdProfile& profile) const;

  /// Bob's expected utility at t1 under the same conditions.
  [[nodiscard]] double bob_value(const ThresholdProfile& profile) const;

  /// Completion probability under the profile.
  [[nodiscard]] double success_rate(const ThresholdProfile& profile) const;

  /// Alice's best-response cutoff.  Her t3 choice is pointwise optimal, so
  /// the best response is the Eq. (18) cutoff regardless of Bob's region
  /// (a dominant threshold).
  [[nodiscard]] double alice_best_response_cutoff() const;

  /// Bob's best-response region to a given Alice cutoff: the set where his
  /// continuation value (under that cutoff) exceeds keeping the token.
  [[nodiscard]] math::IntervalSet bob_best_response(double alice_cutoff) const;

  /// The backward-induction equilibrium profile (from BasicGame).
  [[nodiscard]] ThresholdProfile equilibrium() const;

 private:
  /// Alice's t2-anchored continuation value at price x under her cutoff.
  [[nodiscard]] double alice_t2_value(double x, double cutoff) const;
  /// Bob's t2-anchored continuation value at price x under Alice's cutoff.
  [[nodiscard]] double bob_t2_value(double x, double cutoff) const;
  /// Integral of pdf_a * f over the region (pieces truncated at a far
  /// quantile for unbounded tails).
  [[nodiscard]] double integrate_region(
      const math::IntervalSet& region,
      const std::function<double(double)>& f) const;

  SwapParams params_;
  double p_star_;
  BasicGame game_;
  double tail_hi_;  ///< effective upper bound for unbounded region pieces
};

}  // namespace swapgame::model
