#include "solver_cache.hpp"

#include <array>
#include <cstring>
#include <mutex>

namespace swapgame::model {

namespace {

std::uint64_t bits_of(double x) noexcept {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(x));
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

std::size_t hash_combine(std::size_t seed, std::uint64_t v) noexcept {
  // splitmix64-style mixing; quality only affects bucket spread.
  v += 0x9E3779B97F4A7C15ULL + seed;
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::size_t>(v ^ (v >> 31));
}

}  // namespace

// ---------------------------------------------------------- BasicGameSweeper

BasicGameSweeper::BasicGameSweeper(const SwapParams& params) : params_(params) {
  params_.validate();
}

std::shared_ptr<const BasicGame> BasicGameSweeper::at(double p_star) {
  const std::uint64_t key = bits_of(p_star);
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  auto game = std::make_shared<const BasicGame>(params_, p_star, last_roots_);
  last_roots_ = game->t2_roots();
  return memo_.emplace(key, std::move(game)).first->second;
}

// ----------------------------------------------------- CollateralGameSweeper

CollateralGameSweeper::CollateralGameSweeper(const SwapParams& params)
    : params_(params) {
  params_.validate();
}

std::size_t CollateralGameSweeper::KeyHash::operator()(
    const Key& k) const noexcept {
  return hash_combine(hash_combine(0, k.p_bits), k.q_bits);
}

std::shared_ptr<const CollateralGame> CollateralGameSweeper::at(
    double p_star, double collateral) {
  const Key key{bits_of(p_star), bits_of(collateral)};
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  auto game = std::make_shared<const CollateralGame>(
      params_, p_star, collateral, last_basic_roots_, last_roots_);
  last_basic_roots_ = game->basic().t2_roots();
  last_roots_ = game->t2_roots();
  return memo_.emplace(key, std::move(game)).first->second;
}

// ------------------------------------------------------- feasible-band cache

namespace {

struct BandKey {
  std::array<std::uint64_t, 12> bits{};
  int samples = 0;
  bool operator==(const BandKey&) const = default;
};

struct BandKeyHash {
  std::size_t operator()(const BandKey& k) const noexcept {
    std::size_t h = hash_combine(0, static_cast<std::uint64_t>(k.samples));
    for (const std::uint64_t b : k.bits) h = hash_combine(h, b);
    return h;
  }
};

}  // namespace

FeasibleBand cached_feasible_band(const SwapParams& params, double scan_lo,
                                  double scan_hi, int scan_samples) {
  const BandKey key{
      {bits_of(params.alice.alpha), bits_of(params.alice.r),
       bits_of(params.bob.alpha), bits_of(params.bob.r), bits_of(params.tau_a),
       bits_of(params.tau_b), bits_of(params.eps_b), bits_of(params.p_t0),
       bits_of(params.gbm.mu), bits_of(params.gbm.sigma), bits_of(scan_lo),
       bits_of(scan_hi)},
      scan_samples};

  static std::mutex mutex;
  static std::unordered_map<BandKey, FeasibleBand, BandKeyHash> cache;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
  }
  // Solve outside the lock: bands for distinct params can compute in
  // parallel, and a rare duplicate solve is benign (deterministic result).
  const FeasibleBand band =
      alice_feasible_band(params, scan_lo, scan_hi, scan_samples);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, band);
  }
  return band;
}

}  // namespace swapgame::model
