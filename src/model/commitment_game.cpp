#include "commitment_game.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/gbm.hpp"
#include "math/roots.hpp"

namespace swapgame::model {

CommitmentGame::CommitmentGame(const SwapParams& params, double p_star)
    : params_(params), p_star_(p_star) {
  params_.validate();
  if (!(p_star > 0.0) || !std::isfinite(p_star)) {
    throw std::invalid_argument("CommitmentGame: p_star must be positive");
  }
  // Bob's indifference: (1 + alpha^B) P* e^{-r^B (tau_b + tau_a)} = p.
  bob_hi_ = (1.0 + params_.bob.alpha) * p_star_ *
            std::exp(-params_.bob.r * (params_.tau_b + params_.tau_a));
}

double CommitmentGame::bob_t2_cont() const {
  // His lock confirms at t3 = t2 + tau_b; the witness commits and his
  // token-a transfer confirms tau_a later.
  return (1.0 + params_.bob.alpha) * p_star_ *
         std::exp(-params_.bob.r * (params_.tau_b + params_.tau_a));
}

double CommitmentGame::bob_t2_stop(double p_t2) const { return p_t2; }

Action CommitmentGame::bob_decision_t2(double p_t2) const {
  return p_t2 <= bob_hi_ ? Action::kCont : Action::kStop;
}

double CommitmentGame::alice_t1_cont() const {
  // Completion branch (P_t2 <= threshold): she receives the token-b at
  // t3 + tau_b = t1 + tau_a + 2 tau_b, whose conditional expected value is
  // the lower partial expectation grown over the remaining 2 tau_b.
  // Abort branch: refund at t_a + tau_a = t1 + 3 tau_a + tau_b.
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  const double mu = params_.gbm.mu;
  const double rA = params_.alice.r;
  const double complete =
      (1.0 + params_.alice.alpha) * law.partial_expectation_below(bob_hi_) *
      std::exp(2.0 * mu * params_.tau_b -
               rA * (params_.tau_a + 2.0 * params_.tau_b));
  const double abort = law.survival(bob_hi_) * p_star_ *
                       std::exp(-rA * (3.0 * params_.tau_a + params_.tau_b));
  return complete + abort;
}

double CommitmentGame::alice_t1_stop() const { return p_star_; }

Action CommitmentGame::alice_decision_t1() const {
  return alice_t1_cont() > alice_t1_stop() ? Action::kCont : Action::kStop;
}

double CommitmentGame::bob_t1_cont() const {
  // From t1, Bob's t2 value is bob_t2_cont below the threshold and the
  // realized token-b price above it.
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  return (law.cdf(bob_hi_) * bob_t2_cont() +
          law.partial_expectation_above(bob_hi_)) *
         std::exp(-params_.bob.r * params_.tau_a);
}

double CommitmentGame::bob_t1_stop() const { return params_.p_t0; }

double CommitmentGame::success_rate() const {
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  return law.cdf(bob_hi_);
}

FeasibleBand commitment_feasible_band(const SwapParams& params, double scan_lo,
                                      double scan_hi, int scan_samples) {
  params.validate();
  const auto gap = [&params](double p_star) {
    const CommitmentGame game(params, p_star);
    return game.alice_t1_cont() - game.alice_t1_stop();
  };
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, scan_samples);
  FeasibleBand band;
  if (roots.size() >= 2) {
    band.viable = true;
    band.lo = roots.front();
    band.hi = roots.back();
  }
  return band;
}

}  // namespace swapgame::model
