#include "strategy_value.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include "math/gbm.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"

namespace swapgame::model {

ThresholdProfile ThresholdProfile::honest() {
  ThresholdProfile profile;
  profile.alice_cutoff = 0.0;
  profile.bob_region = math::IntervalSet(
      {{0.0, std::numeric_limits<double>::infinity()}});
  return profile;
}

StrategyEvaluator::StrategyEvaluator(const SwapParams& params, double p_star)
    : params_(params), p_star_(p_star), game_(params, p_star) {
  // Far tail of the t2 price law: integrating beyond contributes < 1e-9.
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  tail_hi_ = law_a.quantile(1.0 - 1e-10);
}

double StrategyEvaluator::alice_t2_value(double x, double cutoff) const {
  // Eq. (20) with an arbitrary reveal cutoff.
  const math::GbmLaw law(params_.gbm, x, params_.tau_b);
  const double cont_part =
      (1.0 + params_.alice.alpha) *
      std::exp((params_.gbm.mu - params_.alice.r) * params_.tau_b) *
      law.partial_expectation_above(cutoff);
  const double stop_part = law.cdf(cutoff) * game_.alice_t3_stop();
  return (cont_part + stop_part) * std::exp(-params_.alice.r * params_.tau_b);
}

double StrategyEvaluator::bob_t2_value(double x, double cutoff) const {
  // Eq. (21) with an arbitrary reveal cutoff.
  const math::GbmLaw law(params_.gbm, x, params_.tau_b);
  const double cont_part = law.survival(cutoff) * game_.bob_t3_cont();
  const double stop_part =
      std::exp((params_.gbm.mu - params_.bob.r) * 2.0 * params_.tau_b) *
      law.partial_expectation_below(cutoff);
  return (cont_part + stop_part) * std::exp(-params_.bob.r * params_.tau_b);
}

double StrategyEvaluator::integrate_region(
    const math::IntervalSet& region,
    const std::function<double(double)>& f) const {
  double total = 0.0;
  for (const math::Interval& piece : region.intervals()) {
    const double lo = std::max(piece.lo, 1e-12);
    const double hi = std::isinf(piece.hi) ? tail_hi_ : piece.hi;
    if (!(hi > lo)) continue;
    total += math::gauss_legendre(f, lo, hi, 48);
  }
  return total;
}

double StrategyEvaluator::alice_value(const ThresholdProfile& profile) const {
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double cutoff = profile.alice_cutoff;
  const double inside = integrate_region(
      profile.bob_region,
      [&](double x) { return law_a.pdf(x) * alice_t2_value(x, cutoff); });
  double inside_prob = 0.0;
  for (const math::Interval& piece : profile.bob_region.intervals()) {
    const double hi = std::isinf(piece.hi) ? tail_hi_ : piece.hi;
    inside_prob += law_a.cdf(hi) - law_a.cdf(piece.lo);
  }
  const double outside_prob = std::max(0.0, 1.0 - inside_prob);
  return (inside + outside_prob * game_.alice_t2_stop()) *
         std::exp(-params_.alice.r * params_.tau_a);
}

double StrategyEvaluator::bob_value(const ThresholdProfile& profile) const {
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double cutoff = profile.alice_cutoff;
  const double inside = integrate_region(
      profile.bob_region,
      [&](double x) { return law_a.pdf(x) * bob_t2_value(x, cutoff); });
  double inside_pe = 0.0;
  for (const math::Interval& piece : profile.bob_region.intervals()) {
    const double hi = std::isinf(piece.hi) ? tail_hi_ : piece.hi;
    inside_pe += law_a.partial_expectation_below(hi) -
                 law_a.partial_expectation_below(piece.lo);
  }
  const double outside = std::max(0.0, law_a.expectation() - inside_pe);
  return (inside + outside) * std::exp(-params_.bob.r * params_.tau_a);
}

double StrategyEvaluator::success_rate(const ThresholdProfile& profile) const {
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double cutoff = profile.alice_cutoff;
  return integrate_region(profile.bob_region, [&](double x) {
    const math::GbmLaw law_b(params_.gbm, x, params_.tau_b);
    return law_a.pdf(x) * law_b.survival(cutoff);
  });
}

double StrategyEvaluator::alice_best_response_cutoff() const {
  return game_.alice_t3_cutoff();
}

math::IntervalSet StrategyEvaluator::bob_best_response(
    double alice_cutoff) const {
  const auto gap = [&](double p) { return bob_t2_value(p, alice_cutoff) - p; };
  const double scan_hi =
      10.0 * std::max({p_star_, params_.p_t0, alice_cutoff});
  const std::vector<double> roots =
      math::find_all_roots(gap, 1e-9, scan_hi, 2048);
  return math::IntervalSet::from_alternating_roots(roots, 0.0, scan_hi,
                                                   gap(1e-9) > 0.0);
}

ThresholdProfile StrategyEvaluator::equilibrium() const {
  ThresholdProfile profile;
  profile.alice_cutoff = game_.alice_t3_cutoff();
  profile.bob_region = game_.bob_t2_region();
  return profile;
}

}  // namespace swapgame::model
