// Sensitivity analysis of the success rate (paper Section I/V: "A
// sensitivity analysis reveals that price volatility significantly
// affects the success rate of the transaction").
//
// Central finite differences of SR with respect to every model parameter,
// with parameter-proportional steps, plus elasticities
// (dSR/dx * x / SR) so the parameters' leverage can be ranked on a common
// scale.  The paper's qualitative signs (Section III-F) become checkable
// numbers: d(SR)/d(sigma) < 0, d(SR)/d(mu) > 0, d(SR)/d(alpha) > 0,
// d(SR)/d(r) < 0, d(SR)/d(tau) < 0.
#pragma once

#include <string>
#include <vector>

#include "params.hpp"

namespace swapgame::model {

/// One parameter's sensitivity.
struct ParameterSensitivity {
  std::string name;       ///< e.g. "sigma", "alpha_A"
  double value = 0.0;     ///< the parameter's base value
  double derivative = 0.0;  ///< dSR / d(parameter), central difference
  double elasticity = 0.0;  ///< derivative * value / SR (dimensionless)
};

/// Full sensitivity report at one (params, P*).
struct SensitivityReport {
  double success_rate = 0.0;  ///< SR at the base point
  std::vector<ParameterSensitivity> parameters;  ///< sorted |elasticity| desc

  /// Lookup by name; throws std::out_of_range if absent.
  [[nodiscard]] const ParameterSensitivity& operator[](
      const std::string& name) const;
};

/// Computes dSR/dx for x in {sigma, mu, alpha_A, alpha_B, r_A, r_B, tau_a,
/// tau_b, eps_b, p_star, p_t0} by central differences with relative step
/// `rel_step` (absolute fallback 1e-4 for near-zero parameters like mu).
/// @throws std::invalid_argument for rel_step <= 0 or an SR of zero at the
///         base point (elasticities undefined).
[[nodiscard]] SensitivityReport success_rate_sensitivities(
    const SwapParams& params, double p_star, double rel_step = 5e-3);

}  // namespace swapgame::model
