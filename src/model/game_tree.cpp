#include "game_tree.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/gbm.hpp"

namespace swapgame::model {

namespace {

// Equal-probability stratification of a transition law: stratum k covers
// quantiles [k/N, (k+1)/N) and is represented by its conditional mean
// N * (PE(q_{k+1}) - PE(q_k)), which makes expectations of payoffs linear
// in price exact.
std::vector<double> stratum_means(const math::GbmLaw& law, int strata) {
  std::vector<double> means;
  means.reserve(strata);
  const double n = static_cast<double>(strata);
  double pe_prev = 0.0;  // PE_below(quantile(0)) = PE_below(0) = 0
  for (int k = 1; k <= strata; ++k) {
    const double pe_next =
        (k == strata) ? law.expectation()
                      : law.partial_expectation_below(
                            law.quantile(static_cast<double>(k) / n));
    means.push_back(n * (pe_next - pe_prev));
    pe_prev = pe_next;
  }
  return means;
}

}  // namespace

GameTreeSolution solve_game_tree(const SwapParams& params, double p_star,
                                 const GameTreeConfig& config) {
  params.validate();
  if (!(p_star > 0.0) || !std::isfinite(p_star)) {
    throw std::invalid_argument("solve_game_tree: p_star must be positive");
  }
  if (config.strata < 2) {
    throw std::invalid_argument("solve_game_tree: need at least 2 strata");
  }
  if (!(config.collateral >= 0.0) || !std::isfinite(config.collateral)) {
    throw std::invalid_argument("solve_game_tree: collateral must be >= 0");
  }

  const double q = config.collateral;
  const double mu = params.gbm.mu;
  const double rA = params.alice.r;
  const double rB = params.bob.r;
  const double aA = params.alice.alpha;
  const double aB = params.bob.alpha;
  const double tau_a = params.tau_a;
  const double tau_b = params.tau_b;
  const double eps_b = params.eps_b;

  // Stage payoffs at t3, per the timeline of Eq. (13) (collateral terms per
  // Section IV; they vanish at q = 0).
  const double alice_recovery = q * std::exp(-rA * (eps_b + tau_a));
  const double bob_own_recovery = q * std::exp(-rB * tau_a);
  const double bob_forfeit_gain = q * std::exp(-rB * (eps_b + tau_a));
  const double alice_t3_stop = p_star * std::exp(-rA * (eps_b + 2.0 * tau_a));
  const double bob_t3_cont = (1.0 + aB) * p_star * std::exp(-rB * (eps_b + tau_a));
  const double alice_t2_stop =
      p_star * std::exp(-rA * (tau_b + eps_b + 2.0 * tau_a)) +
      2.0 * q * std::exp(-rA * (tau_b + tau_a));

  const math::GbmLaw law_a(params.gbm, params.p_t0, tau_a);
  const std::vector<double> t2_prices = stratum_means(law_a, config.strata);

  GameTreeSolution out;
  out.alice_t1_stop = p_star + q;
  out.bob_t1_stop = params.p_t0 + q;

  double alice_t1_sum = 0.0;
  double bob_t1_sum = 0.0;
  double sr_sum = 0.0;
  int bob_cont_count = 0;

  for (double x : t2_prices) {
    // --- t3 layer conditional on P_t2 = x. -------------------------------
    const math::GbmLaw law_b(params.gbm, x, tau_b);
    const std::vector<double> t3_prices = stratum_means(law_b, config.strata);
    double alice_t3_sum = 0.0;
    double bob_t3_sum = 0.0;
    int alice_cont_count = 0;
    for (double y : t3_prices) {
      const double cont_value =
          (1.0 + aA) * y * std::exp((mu - rA) * tau_b) + alice_recovery;
      if (cont_value > alice_t3_stop) {
        ++alice_cont_count;
        alice_t3_sum += cont_value;
        bob_t3_sum += bob_t3_cont;
      } else {
        alice_t3_sum += alice_t3_stop;
        bob_t3_sum += y * std::exp((mu - rB) * 2.0 * tau_b) + bob_forfeit_gain;
      }
    }
    const double n3 = static_cast<double>(t3_prices.size());
    const double alice_t2_cont = alice_t3_sum / n3 * std::exp(-rA * tau_b);
    const double bob_t2_cont =
        (bob_own_recovery + bob_t3_sum / n3) * std::exp(-rB * tau_b);
    const double alice_reveal_prob = static_cast<double>(alice_cont_count) / n3;

    // --- Bob's decision at t2. --------------------------------------------
    const bool bob_cont = bob_t2_cont > x;
    if (bob_cont) {
      ++bob_cont_count;
      alice_t1_sum += alice_t2_cont;
      bob_t1_sum += bob_t2_cont;
      sr_sum += alice_reveal_prob;
    } else {
      alice_t1_sum += alice_t2_stop;
      bob_t1_sum += x;  // Bob keeps token-b (and forfeits q, already sunk)
    }
  }

  const double n2 = static_cast<double>(t2_prices.size());
  out.alice_t1_cont = alice_t1_sum / n2 * std::exp(-rA * tau_a);
  out.bob_t1_cont = bob_t1_sum / n2 * std::exp(-rB * tau_a);
  out.success_rate = sr_sum / n2;
  out.bob_cont_fraction = static_cast<double>(bob_cont_count) / n2;
  return out;
}

}  // namespace swapgame::model
