#include "premium_game.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "math/gbm.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"

namespace swapgame::model {

namespace {

constexpr int kRegionScanSamples = 4096;

}  // namespace

PremiumGame::PremiumGame(const SwapParams& params, double p_star,
                         double premium)
    : params_(params), p_star_(p_star), pr_(premium), basic_(params, p_star) {
  if (!(premium >= 0.0) || !std::isfinite(premium)) {
    throw std::invalid_argument("PremiumGame: premium must be >= 0 and finite");
  }
  compute_t3_cutoff();
  compute_t2_region();
}

// ---------------------------------------------------------------- t3 stage

double PremiumGame::alice_t3_cont(double p_t3) const {
  // Reveal + immediately claim the escrow on Chain_a: the claim confirms
  // tau_a after t3.
  return basic_.alice_t3_cont(p_t3) +
         pr_ * std::exp(-params_.alice.r * params_.tau_a);
}

double PremiumGame::alice_t3_stop() const { return basic_.alice_t3_stop(); }

double PremiumGame::bob_t3_cont() const { return basic_.bob_t3_cont(); }

double PremiumGame::bob_t3_stop(double p_t3) const {
  // The escrow times out at t_a = t3 + eps_b + tau_a and pays Bob tau_a
  // later, i.e. eps_b + 2 tau_a after t3.
  return basic_.bob_t3_stop(p_t3) +
         pr_ * std::exp(-params_.bob.r * (params_.eps_b + 2.0 * params_.tau_a));
}

void PremiumGame::compute_t3_cutoff() {
  const double rA = params_.alice.r;
  const double mu = params_.gbm.mu;
  const double refund =
      p_star_ * std::exp(-rA * (params_.eps_b + 2.0 * params_.tau_a));
  const double recovery = pr_ * std::exp(-rA * params_.tau_a);
  const double shifted = refund - recovery;
  t3_cutoff_ = shifted <= 0.0
                   ? 0.0
                   : std::exp((rA - mu) * params_.tau_b) * shifted /
                         (1.0 + params_.alice.alpha);
}

Action PremiumGame::alice_decision_t3(double p_t3) const {
  return p_t3 > t3_cutoff_ ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t2 stage

double PremiumGame::alice_t2_cont(double p_t2) const {
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double L = t3_cutoff_;
  const double recovery = pr_ * std::exp(-params_.alice.r * params_.tau_a);
  const double cont_part =
      (1.0 + params_.alice.alpha) *
          std::exp((params_.gbm.mu - params_.alice.r) * params_.tau_b) *
          law.partial_expectation_above(L) +
      law.survival(L) * recovery;
  const double stop_part = law.cdf(L) * basic_.alice_t3_stop();
  return (cont_part + stop_part) * std::exp(-params_.alice.r * params_.tau_b);
}

double PremiumGame::bob_t2_cont(double p_t2) const {
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double L = t3_cutoff_;
  const double premium_gain =
      pr_ * std::exp(-params_.bob.r * (params_.eps_b + 2.0 * params_.tau_a));
  const double cont_part = law.survival(L) * basic_.bob_t3_cont();
  const double stop_part =
      std::exp((params_.gbm.mu - params_.bob.r) * 2.0 * params_.tau_b) *
          law.partial_expectation_below(L) +
      law.cdf(L) * premium_gain;
  return (cont_part + stop_part) * std::exp(-params_.bob.r * params_.tau_b);
}

double PremiumGame::bob_t2_stop(double p_t2) const {
  // Bob walks; the escrow is cancelled back to Alice, so Bob just keeps his
  // token-b (Eq. 23).
  return p_t2;
}

void PremiumGame::compute_t2_region() {
  // Strict-preference tie-break: cont must beat stop by a scale-relative
  // margin.  Guards against the degenerate mu == r_B regime where the gap
  // is identically zero near p = 0 and floating-point dither would
  // otherwise fabricate spurious crossings.
  const auto raw_gap = [this](double p) {
    return bob_t2_cont(p) - bob_t2_stop(p);
  };
  const double scan_hi =
      10.0 * std::max({p_star_, params_.p_t0, t3_cutoff_, pr_});
  // Scale-relative lower scan bound: keeps the grid resolution
  // proportional to the price scale (scale-invariance tests pin this).
  const double scan_lo = 1e-7 * scan_hi;
  const double tie = 1e-10 * scan_hi;
  const auto gap = [&raw_gap, tie](double p) { return raw_gap(p) - tie; };
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, kRegionScanSamples);
  const bool starts_inside = gap(scan_lo) > 0.0;
  t2_region_ = math::IntervalSet::from_alternating_roots(
      roots, 0.0, std::numeric_limits<double>::infinity(), starts_inside);
  if (!t2_region_.empty() && std::isinf(t2_region_.intervals().back().hi)) {
    std::vector<math::Interval> trimmed = t2_region_.intervals();
    trimmed.back().hi = scan_hi;
    t2_region_ = math::IntervalSet(std::move(trimmed));
  }
}

Action PremiumGame::bob_decision_t2(double p_t2) const {
  return t2_region_.contains(p_t2) ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t1 stage

double PremiumGame::alice_t1_cont() const {
  return alice_t1_cont_cache_.get([this] { return compute_alice_t1_cont(); });
}

double PremiumGame::compute_alice_t1_cont() const {
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  // If Bob stops at t2 the escrow is cancelled at t3 and Alice receives her
  // premium back tau_a later, i.e. tau_b + tau_a after t2.
  const double stop_value =
      basic_.alice_t2_stop() +
      pr_ * std::exp(-params_.alice.r * (params_.tau_b + params_.tau_a));
  double inside = 0.0;
  double inside_prob = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    inside += math::gauss_legendre(
        [this, &law](double x) { return law.pdf(x) * alice_t2_cont(x); },
        iv.lo, iv.hi, 48);
    inside_prob += law.cdf(iv.hi) - law.cdf(iv.lo);
  }
  const double outside_prob = std::max(0.0, 1.0 - inside_prob);
  return (inside + outside_prob * stop_value) *
         std::exp(-params_.alice.r * params_.tau_a);
}

double PremiumGame::alice_t1_stop() const { return p_star_ + pr_; }

double PremiumGame::bob_t1_cont() const {
  return bob_t1_cont_cache_.get([this] { return compute_bob_t1_cont(); });
}

double PremiumGame::compute_bob_t1_cont() const {
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  double inside = 0.0;
  double inside_pe = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    inside += math::gauss_legendre(
        [this, &law](double x) { return law.pdf(x) * bob_t2_cont(x); }, iv.lo,
        iv.hi, 48);
    inside_pe += law.partial_expectation_below(iv.hi) -
                 law.partial_expectation_below(iv.lo);
  }
  const double outside = std::max(0.0, law.expectation() - inside_pe);
  return (inside + outside) * std::exp(-params_.bob.r * params_.tau_a);
}

double PremiumGame::bob_t1_stop() const { return params_.p_t0; }

Action PremiumGame::alice_decision_t1() const {
  return alice_t1_cont() > alice_t1_stop() ? Action::kCont : Action::kStop;
}

// ------------------------------------------------------------ success rate

double PremiumGame::success_rate() const {
  return success_rate_cache_.get([this] { return compute_success_rate(); });
}

double PremiumGame::compute_success_rate() const {
  if (t2_region_.empty()) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double L = t3_cutoff_;
  double sr = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    if (L == 0.0) {
      sr += law_a.cdf(iv.hi) - law_a.cdf(iv.lo);
      continue;
    }
    sr += math::gauss_legendre(
        [this, &law_a, L](double x) {
          const math::GbmLaw law_b(params_.gbm, x, params_.tau_b);
          return law_a.pdf(x) * law_b.survival(L);
        },
        iv.lo, iv.hi, 48);
  }
  return sr;
}

// ------------------------------------------------------------- free helpers

math::IntervalSet premium_viable_rates(const SwapParams& params,
                                       double premium, double scan_lo,
                                       double scan_hi, int scan_samples) {
  params.validate();
  const auto gap = [&](double p_star) {
    const PremiumGame g(params, p_star, premium);
    return g.alice_t1_cont() - g.alice_t1_stop();
  };
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, scan_samples);
  return math::IntervalSet::from_alternating_roots(roots, scan_lo, scan_hi,
                                                   gap(scan_lo) > 0.0);
}

}  // namespace swapgame::model
