#include "negotiation.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "math/roots.hpp"
#include "solver_cache.hpp"

namespace swapgame::model {

const char* to_string(BargainingRule rule) noexcept {
  switch (rule) {
    case BargainingRule::kNashBargaining:
      return "nash-bargaining";
    case BargainingRule::kMaxSuccessRate:
      return "max-success-rate";
    case BargainingRule::kMidpoint:
      return "midpoint";
  }
  return "unknown";
}

namespace {

math::IntervalSet acceptable_set(const std::function<double(double)>& gap,
                                 double scan_lo, double scan_hi,
                                 int scan_samples) {
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, scan_samples);
  return math::IntervalSet::from_alternating_roots(roots, scan_lo, scan_hi,
                                                   gap(scan_lo) > 0.0);
}

}  // namespace

NegotiationResult negotiate_rate(const SwapParams& params, BargainingRule rule,
                                 double scan_lo, double scan_hi,
                                 int scan_samples, int grid) {
  params.validate();
  if (grid < 2) {
    throw std::invalid_argument("negotiate_rate: grid must be >= 2");
  }
  // Both acceptability scans and the selection grid query games over the
  // same P* range: a single warm-chained, memoizing sweeper solves each
  // rate once instead of cold three times.
  BasicGameSweeper sweeper(params);
  NegotiationResult result;
  result.alice_acceptable = acceptable_set(
      [&](double p) {
        const auto g = sweeper.at(p);
        return g->alice_t1_cont() - g->alice_t1_stop();
      },
      scan_lo, scan_hi, scan_samples);
  result.bob_acceptable = acceptable_set(
      [&](double p) {
        const auto g = sweeper.at(p);
        return g->bob_t1_cont() - g->bob_t1_stop();
      },
      scan_lo, scan_hi, scan_samples);
  result.mutual = result.alice_acceptable.intersect(result.bob_acceptable);
  if (result.mutual.empty()) return result;  // no agreement possible

  // Score candidate rates over the mutual set.
  double best_score = -std::numeric_limits<double>::infinity();
  double best_rate = 0.0;
  for (const math::Interval& piece : result.mutual.intervals()) {
    for (int i = 0; i <= grid; ++i) {
      const double p_star =
          piece.lo + (piece.hi - piece.lo) * static_cast<double>(i) / grid;
      if (!(p_star > 0.0)) continue;
      const auto game = sweeper.at(p_star);
      const double sa = game->alice_t1_cont() - game->alice_t1_stop();
      const double sb = game->bob_t1_cont() - game->bob_t1_stop();
      if (sa <= 0.0 || sb <= 0.0) continue;  // boundary numeric noise
      double score = 0.0;
      switch (rule) {
        case BargainingRule::kNashBargaining:
          score = sa * sb;
          break;
        case BargainingRule::kMaxSuccessRate:
          score = game->success_rate();
          break;
        case BargainingRule::kMidpoint: {
          const double mid = 0.5 * (piece.lo + piece.hi);
          score = -std::abs(p_star - mid);
          break;
        }
      }
      if (score > best_score) {
        best_score = score;
        best_rate = p_star;
      }
    }
  }
  if (!(best_score > -std::numeric_limits<double>::infinity())) return result;

  const auto chosen = sweeper.at(best_rate);
  result.agreed = true;
  result.p_star = best_rate;
  result.alice_surplus = chosen->alice_t1_cont() - chosen->alice_t1_stop();
  result.bob_surplus = chosen->bob_t1_cont() - chosen->bob_t1_stop();
  result.success_rate = chosen->success_rate();
  return result;
}

}  // namespace swapgame::model
