// The swap decision timeline (paper Section III-B/C, Fig. 2, Eqs. (4)-(13)).
//
// Two views are provided:
//  * `TimelineConstraints::check` validates an arbitrary-waiting-time
//    schedule against the inequality system (12) and reports the first
//    violated constraint (Fig. 2(a)).
//  * `IdealizedTimeline` constructs the zero-waiting-time schedule (13)
//    used by the game analysis and the protocol driver (Fig. 2(b)).
#pragma once

#include <optional>
#include <string>

#include "params.hpp"

namespace swapgame::model {

/// A concrete assignment of every event time in the swap.
struct Schedule {
  double t0 = 0.0;  ///< agreement; Alice generates the secret
  double t1 = 0.0;  ///< Alice deploys the HTLC on Chain_a (expiry t_a)
  double t2 = 0.0;  ///< Bob deploys the HTLC on Chain_b (expiry t_b)
  double t3 = 0.0;  ///< Alice reveals the secret on Chain_b
  double t4 = 0.0;  ///< Bob uses the secret on Chain_a
  double t5 = 0.0;  ///< Alice receives 1 token-b (success path)
  double t6 = 0.0;  ///< Bob receives P_star token-a (success path)
  double t7 = 0.0;  ///< Bob's token-b returned (failure path)
  double t8 = 0.0;  ///< Alice's token-a returned (failure path)
  double t_a = 0.0; ///< HTLC expiry on Chain_a
  double t_b = 0.0; ///< HTLC expiry on Chain_b
};

/// Validates a schedule against the paper's constraint system (12) for
/// given confirmation/visibility delays.  Returns std::nullopt when every
/// constraint holds, otherwise a human-readable description of the first
/// violation.
[[nodiscard]] std::optional<std::string> check_schedule(
    const Schedule& s, double tau_a, double tau_b, double eps_b);

/// Builds the idealized zero-waiting-time schedule of Eq. (13), anchored at
/// a given t0.  The result always satisfies check_schedule.
[[nodiscard]] Schedule idealized_schedule(const SwapParams& params,
                                          double t0 = 0.0);

/// Durations until "end of game" from each decision point, as used by the
/// stage utilities: how long each agent waits for each terminal receipt.
/// Derived from the idealized schedule; exposed for documentation and
/// cross-checking the hard-coded exponents in the utility formulas.
struct StageDelays {
  // From t3 (Alice's reveal decision):
  double alice_cont_from_t3;  ///< tau_b             (receive token-b at t5)
  double bob_cont_from_t3;    ///< eps_b + tau_a     (receive token-a at t6)
  double alice_stop_from_t3;  ///< eps_b + 2 tau_a   (refund at t8)
  double bob_stop_from_t3;    ///< 2 tau_b           (refund at t7)
  // From t2 (Bob's lock decision):
  double alice_stop_from_t2;  ///< tau_b + eps_b + 2 tau_a (refund at t8)
  // From t1 (Alice's initiation decision): stop pays out immediately.
};

[[nodiscard]] StageDelays stage_delays(const SwapParams& params);

}  // namespace swapgame::model
