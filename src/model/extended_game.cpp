#include "extended_game.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "math/gbm.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"

namespace swapgame::model {

void TokenRates::validate() const {
  if (!std::isfinite(r_a) || !(r_a > 0.0) || !std::isfinite(r_b) ||
      !(r_b > 0.0)) {
    throw std::invalid_argument("TokenRates: rates must be finite and > 0");
  }
}

void ExtendedParams::validate() const {
  base.validate();
  alice.validate();
  bob.validate();
  if (!(fee_a >= 0.0) || !std::isfinite(fee_a) || !(fee_b >= 0.0) ||
      !std::isfinite(fee_b)) {
    throw std::invalid_argument("ExtendedParams: fees must be >= 0 and finite");
  }
}

ExtendedParams ExtendedParams::from_basic(const SwapParams& params) {
  ExtendedParams ext;
  ext.base = params;
  ext.alice = {params.alice.r, params.alice.r};
  ext.bob = {params.bob.r, params.bob.r};
  return ext;
}

ExtendedGame::ExtendedGame(const ExtendedParams& params, double p_star)
    : params_(params), p_star_(p_star) {
  params_.validate();
  if (!(p_star > 0.0) || !std::isfinite(p_star)) {
    throw std::invalid_argument("ExtendedGame: p_star must be positive");
  }
  compute_t3_cutoff();
  compute_t2_region();
}

// ---------------------------------------------------------------- t3 stage

double ExtendedGame::alice_t3_cont(double p_t3) const {
  // Token-b received at t3 + tau_b, discounted at Alice's token-b rate;
  // the claim transaction on Chain_b costs fee_b now.
  const SwapParams& b = params_.base;
  return (1.0 + b.alice.alpha) * p_t3 *
             std::exp((b.gbm.mu - params_.alice.r_b) * b.tau_b) -
         params_.fee_b;
}

double ExtendedGame::alice_t3_stop() const {
  const SwapParams& b = params_.base;
  return p_star_ * std::exp(-params_.alice.r_a * (b.eps_b + 2.0 * b.tau_a));
}

void ExtendedGame::compute_t3_cutoff() {
  // (1 + alpha) L e^{(mu - r_b) tau_b} - fee_b = stop  =>  solve for L.
  const SwapParams& b = params_.base;
  t3_cutoff_ = (alice_t3_stop() + params_.fee_b) *
               std::exp((params_.alice.r_b - b.gbm.mu) * b.tau_b) /
               (1.0 + b.alice.alpha);
}

Action ExtendedGame::alice_decision_t3(double p_t3) const {
  return p_t3 > t3_cutoff_ ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t2 stage

double ExtendedGame::bob_t2_cont(double p_t2) const {
  const SwapParams& b = params_.base;
  const math::GbmLaw law(b.gbm, p_t2, b.tau_b);
  const double L = t3_cutoff_;
  // Reveal branch: P* token-a at t6 = t2 + tau_b + eps_b + tau_a, minus the
  // Chain_a claim fee paid at t4 = t2 + tau_b + eps_b.
  const double reveal_value =
      (1.0 + b.bob.alpha) * p_star_ *
          std::exp(-params_.bob.r_a * (b.tau_b + b.eps_b + b.tau_a)) -
      params_.fee_a * std::exp(-params_.bob.r_a * (b.tau_b + b.eps_b));
  // Waive branch: the token-b comes back at t7 = t2 + 3 tau_b.
  const double waive_value =
      law.partial_expectation_below(L) *
      std::exp(2.0 * b.gbm.mu * b.tau_b - 3.0 * params_.bob.r_b * b.tau_b);
  // The Chain_b deploy fee is paid now.
  return law.survival(L) * reveal_value + waive_value - params_.fee_b;
}

double ExtendedGame::bob_t2_stop(double p_t2) const { return p_t2; }

void ExtendedGame::compute_t2_region() {
  // Strict-preference tie-break: cont must beat stop by a scale-relative
  // margin.  Guards against the degenerate mu == r_B regime where the gap
  // is identically zero near p = 0 and floating-point dither would
  // otherwise fabricate spurious crossings.
  const auto raw_gap = [this](double p) {
    return bob_t2_cont(p) - bob_t2_stop(p);
  };
  const double scan_hi =
      10.0 * std::max({p_star_, params_.base.p_t0, t3_cutoff_});
  // Scale-relative lower scan bound: keeps the grid resolution
  // proportional to the price scale (scale-invariance tests pin this).
  const double scan_lo = 1e-7 * scan_hi;
  const double tie = 1e-10 * scan_hi;
  const auto gap = [&raw_gap, tie](double p) { return raw_gap(p) - tie; };
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, 2048);
  const bool starts_inside = gap(scan_lo) > 0.0;
  t2_region_ = math::IntervalSet::from_alternating_roots(
      roots, 0.0, std::numeric_limits<double>::infinity(), starts_inside);
  if (!t2_region_.empty() && std::isinf(t2_region_.intervals().back().hi)) {
    std::vector<math::Interval> trimmed = t2_region_.intervals();
    trimmed.back().hi = scan_hi;
    t2_region_ = math::IntervalSet(std::move(trimmed));
  }
}

std::optional<math::Interval> ExtendedGame::bob_t2_band() const noexcept {
  if (t2_region_.size() != 1) return std::nullopt;
  return t2_region_.intervals().front();
}

Action ExtendedGame::bob_decision_t2(double p_t2) const {
  return t2_region_.contains(p_t2) ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t1 stage

double ExtendedGame::alice_t1_cont() const {
  // Full branch expansion anchored at t1 (mixed token rates preclude stage
  // composition; see header).
  const SwapParams& b = params_.base;
  const math::GbmLaw law_a(b.gbm, b.p_t0, b.tau_a);
  const double L = t3_cutoff_;
  const double refund_time = 3.0 * b.tau_a + b.tau_b + b.eps_b;  // t8 - t1

  double reveal_pe = 0.0;    // int pdf_a(x) PE_above_x(L) dx over the region
  double reveal_prob = 0.0;  // int pdf_a(x) survival_x(L) dx over the region
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    reveal_pe += math::gauss_legendre(
        [&](double x) {
          const math::GbmLaw law_b(b.gbm, x, b.tau_b);
          return law_a.pdf(x) * law_b.partial_expectation_above(L);
        },
        lo, iv.hi, 64);
    reveal_prob += math::gauss_legendre(
        [&](double x) {
          const math::GbmLaw law_b(b.gbm, x, b.tau_b);
          return law_a.pdf(x) * law_b.survival(L);
        },
        lo, iv.hi, 64);
  }

  const double token_b_value =
      (1.0 + b.alice.alpha) * reveal_pe *
      std::exp(b.gbm.mu * b.tau_b -
               params_.alice.r_b * (b.tau_a + 2.0 * b.tau_b));
  const double claim_fee_cost =
      params_.fee_b * reveal_prob *
      std::exp(-params_.alice.r_a * (b.tau_a + b.tau_b));
  const double refund_value =
      (1.0 - reveal_prob) * p_star_ *
      std::exp(-params_.alice.r_a * refund_time);
  return token_b_value - claim_fee_cost + refund_value - params_.fee_a;
}

double ExtendedGame::alice_t1_stop() const { return p_star_; }

Action ExtendedGame::alice_decision_t1() const {
  return alice_t1_cont() > alice_t1_stop() ? Action::kCont : Action::kStop;
}

// ------------------------------------------------------------ success rate

double ExtendedGame::success_rate() const {
  if (t2_region_.empty()) return 0.0;
  const SwapParams& b = params_.base;
  const math::GbmLaw law_a(b.gbm, b.p_t0, b.tau_a);
  const double L = t3_cutoff_;
  double sr = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    sr += math::gauss_legendre(
        [&](double x) {
          const math::GbmLaw law_b(b.gbm, x, b.tau_b);
          return law_a.pdf(x) * law_b.survival(L);
        },
        lo, iv.hi, 64);
  }
  return sr;
}

// ------------------------------------------------------------- free helpers

FeasibleBand extended_feasible_band(const ExtendedParams& params,
                                    double scan_lo, double scan_hi,
                                    int scan_samples) {
  params.validate();
  const auto gap = [&params](double p_star) {
    const ExtendedGame game(params, p_star);
    return game.alice_t1_cont() - game.alice_t1_stop();
  };
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, scan_samples);
  FeasibleBand band;
  if (roots.size() >= 2) {
    band.viable = true;
    band.lo = roots.front();
    band.hi = roots.back();
  }
  return band;
}

}  // namespace swapgame::model
