// Discretized extensive-form cross-validation solver.
//
// Independent re-derivation of the backward-induction solution: instead of
// closed-form lognormal partial expectations and root-finding, the price at
// each decision epoch is discretized into equal-probability strata (each
// represented by its conditional mean, so expectations of linear payoffs
// are exact), and the game is solved by plain discrete dynamic programming
// over the stratified tree:
//
//   t1 (Alice)  --tau_a-->  t2 strata (Bob)  --tau_b-->  t3 strata (Alice)
//
// Agreement with BasicGame/CollateralGame to ~1/strata accuracy is asserted
// in tests and measured in the solver-ablation bench (X2).  Disagreement
// would indicate an error in either the closed forms or the thresholds.
#pragma once

#include "params.hpp"

namespace swapgame::model {

/// Configuration of the stratified discretization.
struct GameTreeConfig {
  int strata = 400;          ///< equal-probability price strata per stage
  double collateral = 0.0;   ///< Q = 0 reproduces the basic game
};

/// Result of solving the discretized tree.
struct GameTreeSolution {
  double alice_t1_cont = 0.0;  ///< Alice's value of initiating
  double alice_t1_stop = 0.0;  ///< P_star (+ Q with collateral)
  double bob_t1_cont = 0.0;
  double bob_t1_stop = 0.0;
  double success_rate = 0.0;   ///< P[swap completes | initiated]
  /// Fraction of t2 strata where Bob continues (diagnostic).
  double bob_cont_fraction = 0.0;
};

/// Solves the discretized swap game.  Strategies are derived inside the
/// tree by comparing discrete continuation values, NOT imported from the
/// analytic solver -- that is what makes this an independent check.
[[nodiscard]] GameTreeSolution solve_game_tree(const SwapParams& params,
                                               double p_star,
                                               const GameTreeConfig& config = {});

}  // namespace swapgame::model
