// The HTLC game with collateral deposits (paper Section IV).
//
// Both agents post the same collateral Q (in token-a) into an
// oracle-controlled vault on Chain_a before the swap.  The Oracle returns
// collateral to an agent once it can no longer misbehave (Bob at t3, Alice
// at t4) and forfeits a stopping agent's collateral to the counterparty.
//
// The game structure changes in two ways relative to the basic game:
//  * Alice's t3 cutoff drops (Eq. (33)/(34)) -- possibly to zero, where she
//    always reveals;
//  * Bob's t2 continuation region becomes an odd-root interval set
//    (1 or 3 indifference points -- Fig. 7): for very low prices Bob
//    continues *to recover his collateral* even though the swap is likely
//    to fail at t3.
//
// At t1 both agents decide simultaneously; the rate is viable only if each
// agent's cont utility beats stop (the paper prints the union of the two
// viability sets in Section IV-4, but initiation logically requires both --
// we expose both sets and use the intersection; see DESIGN.md).
#pragma once

#include <optional>
#include <vector>

#include "basic_game.hpp"
#include "math/cached_value.hpp"
#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

/// Backward induction for the collateralized game at one (params, P_star, Q).
class CollateralGame {
 public:
  /// @throws std::invalid_argument on invalid params, p_star <= 0 or Q < 0.
  CollateralGame(const SwapParams& params, double p_star, double collateral);

  /// Warm-started construction for parameter sweeps: hints are the
  /// t2-region roots of the embedded basic game and of this game at nearby
  /// parameters (see t2_roots()).  Hints only accelerate root isolation --
  /// every hinted root is re-polished on this game's own indifference
  /// function and structurally verified, with a cold-scan fallback -- so
  /// results agree with the cold constructor to solver tolerance (~1e-12).
  CollateralGame(const SwapParams& params, double p_star, double collateral,
                 const std::vector<double>& basic_t2_root_hints,
                 const std::vector<double>& t2_root_hints);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }
  [[nodiscard]] double p_star() const noexcept { return p_star_; }
  [[nodiscard]] double collateral() const noexcept { return q_; }

  /// The embedded basic game (Q = 0 reference; also supplies the unchanged
  /// stage utilities Eq. (16), (23)).
  [[nodiscard]] const BasicGame& basic() const noexcept { return basic_; }

  // --- t3: Alice's reveal decision (Eqs. (33)/(34)). -----------------------
  /// Alice's cont utility including her collateral recovery at t4 + tau_a.
  [[nodiscard]] double alice_t3_cont(double p_t3) const;
  /// Stop forfeits the collateral: same as the basic game's Eq. (16).
  [[nodiscard]] double alice_t3_stop() const;
  /// The clamped cutoff P_t3_lo_c of Eq. (34); 0 means "always reveal".
  [[nodiscard]] double alice_t3_cutoff() const noexcept { return t3_cutoff_; }
  [[nodiscard]] Action alice_decision_t3(double p_t3) const;

  // --- t2: Bob's lock decision (Eqs. (35), (23)). --------------------------
  [[nodiscard]] double alice_t2_cont(double p_t2) const;  ///< Eq. (36)'s inner value
  [[nodiscard]] double bob_t2_cont(double p_t2) const;    ///< Eq. (35)
  [[nodiscard]] double bob_t2_stop(double p_t2) const;    ///< Eq. (23): keeps token-b
  /// Bob's continuation region, a union of at most two intervals
  /// (odd number of indifference points; Fig. 7).
  [[nodiscard]] const math::IntervalSet& bob_t2_region() const noexcept {
    return t2_region_;
  }
  /// The sorted indifference roots defining bob_t2_region(); feed these to
  /// the warm-start constructor of a game at nearby parameters.
  [[nodiscard]] const std::vector<double>& t2_roots() const noexcept {
    return t2_roots_;
  }
  [[nodiscard]] Action bob_decision_t2(double p_t2) const;

  // --- t1: simultaneous engagement decision (Eqs. (36)-(39)). --------------
  [[nodiscard]] double alice_t1_cont() const;  ///< Eq. (36)
  [[nodiscard]] double alice_t1_stop() const;  ///< Eq. (38): P_star + Q
  [[nodiscard]] double bob_t1_cont() const;    ///< Eq. (37)
  [[nodiscard]] double bob_t1_stop() const;    ///< Eq. (39): P_t1 + Q
  [[nodiscard]] Action alice_decision_t1() const;
  [[nodiscard]] Action bob_decision_t1() const;
  /// Whether both agents engage at this rate (the swap actually starts).
  [[nodiscard]] bool engaged() const;

  // --- Success rate (Eq. (40)). --------------------------------------------
  [[nodiscard]] double success_rate() const;

  /// P[P_t2 in Bob's cont region] under the tau_a law from P_t0 -- the
  /// analytic control-variate mean for the VR Monte-Carlo engine, exactly
  /// as BasicGame::bob_t2_cont_probability but over the collateralized
  /// (odd-root interval set) region.
  [[nodiscard]] double bob_t2_cont_probability() const;

 private:
  void compute_t3_cutoff();
  void compute_t2_region(const std::vector<double>* hints);
  [[nodiscard]] double compute_alice_t1_cont() const;
  [[nodiscard]] double compute_bob_t1_cont() const;
  [[nodiscard]] double compute_success_rate() const;

  SwapParams params_;
  double p_star_;
  double q_;
  BasicGame basic_;
  double t3_cutoff_ = 0.0;
  math::IntervalSet t2_region_;
  std::vector<double> t2_roots_;
  // Quadrature-backed t1 quantities, integrated once per game instance even
  // when the game is shared across Monte-Carlo samples or sweep threads.
  math::CachedDouble alice_t1_cont_cache_;
  math::CachedDouble bob_t1_cont_cache_;
  math::CachedDouble success_rate_cache_;
};

/// Viable exchange-rate sets at t1 for a given collateral: the set of P*
/// where each agent prefers cont, and their intersection (rates at which
/// the swap is actually initiated).
struct CollateralViability {
  math::IntervalSet alice;  ///< {P* : U^A_t1,c(cont) > P* + Q}
  math::IntervalSet bob;    ///< {P* : U^B_t1,c(cont) > P_t1 + Q}
  math::IntervalSet both;   ///< intersection
};

[[nodiscard]] CollateralViability collateral_viable_rates(
    const SwapParams& params, double collateral, double scan_lo = 0.05,
    double scan_hi = 10.0, int scan_samples = 400);

}  // namespace swapgame::model
