// The t0 agreement phase: choosing the exchange rate P*.
//
// The paper takes P* as given ("At t0, A and B agree on the swap
// conditions, including exchange rate P*") and only characterizes the
// feasible band.  This module completes the step: it computes the set of
// rates BOTH agents prefer over their outside options,
//   Alice: U^A_t1(cont)(P*) > P*      (Eq. 30)
//   Bob:   U^B_t1(cont)(P*) > P_t0    (Eq. 28 comparison)
// and selects a point by a bargaining rule:
//   * kNashBargaining -- maximize the Nash product of the two surpluses;
//   * kMaxSuccessRate -- maximize SR(P*) (Eq. 31) over the mutual set;
//   * kMidpoint       -- the midpoint of the mutual set (naive refdesign).
#pragma once

#include <optional>

#include "basic_game.hpp"
#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

enum class BargainingRule : std::uint8_t {
  kNashBargaining,
  kMaxSuccessRate,
  kMidpoint,
};

[[nodiscard]] const char* to_string(BargainingRule rule) noexcept;

/// Outcome of the t0 negotiation.
struct NegotiationResult {
  bool agreed = false;
  double p_star = 0.0;          ///< chosen rate (if agreed)
  double alice_surplus = 0.0;   ///< U^A_t1(cont) - P* at the chosen rate
  double bob_surplus = 0.0;     ///< U^B_t1(cont) - P_t0 at the chosen rate
  double success_rate = 0.0;    ///< SR at the chosen rate
  math::IntervalSet alice_acceptable;  ///< {P* : Alice prefers cont}
  math::IntervalSet bob_acceptable;    ///< {P* : Bob prefers cont}
  math::IntervalSet mutual;            ///< intersection (bargaining set)
};

/// Runs the negotiation for the basic game.  `grid` controls the selection
/// search resolution inside the mutual set.
[[nodiscard]] NegotiationResult negotiate_rate(const SwapParams& params,
                                               BargainingRule rule,
                                               double scan_lo = 0.05,
                                               double scan_hi = 10.0,
                                               int scan_samples = 400,
                                               int grid = 200);

}  // namespace swapgame::model
