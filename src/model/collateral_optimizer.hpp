// Collateral sizing (paper Section I: "collateral deposits can be
// dynamically adjusted depending on the terms of the swap (e.g. exchange
// rate) and optimization goal (e.g. maximizing utility, or maximizing
// success rate)").
//
// Two objectives are supported:
//  * kSuccessRate  -- maximize SR(P*, Q) (Eq. 40);
//  * kJointSurplus -- maximize the agents' combined engagement surplus
//    [U^A_t1(cont) - U^A_t1(stop)] + [U^B_t1(cont) - U^B_t1(stop)],
//    which nets out the opportunity cost of locking collateral.
// Plus the dual problem: the *minimal* Q reaching a target success rate
// (collateral is costly liquidity; Section II-A notes Bisq-style systems
// charge it, and Zamyatin et al. overcollateralize -- minimality matters).
#pragma once

#include <optional>

#include "params.hpp"

namespace swapgame::model {

enum class CollateralObjective {
  kSuccessRate,
  kJointSurplus,
};

struct CollateralChoice {
  double collateral = 0.0;
  double objective_value = 0.0;
  double success_rate = 0.0;
  bool engaged = false;  ///< whether both agents still engage at t1
};

/// Grid search (optionally refined by golden-section around the best cell)
/// over Q in [q_lo, q_hi].  Only engagement-feasible Q are eligible for
/// kJointSurplus; for kSuccessRate all Q are scored but `engaged` reports
/// t1 feasibility.
[[nodiscard]] CollateralChoice optimize_collateral(
    const SwapParams& params, double p_star, CollateralObjective objective,
    double q_lo = 0.0, double q_hi = 4.0, int grid = 64);

/// Smallest Q whose success rate reaches `target_sr`, found by bisection on
/// the (empirically monotone) SR(Q) map.  Returns nullopt when even q_hi
/// falls short.
[[nodiscard]] std::optional<double> min_collateral_for_sr(
    const SwapParams& params, double p_star, double target_sr,
    double q_hi = 8.0, double tol = 1e-4);

}  // namespace swapgame::model
