// Extended swap game: per-token discount rates and transaction fees.
//
// The paper's Section V names both as future work: "future models may
// incorporate different risk-free rates for the two exchanged tokens,
// which resembles the settings of the Garman Kohlhagen model.  In
// addition, blockchain transaction fees or coin stacking ... may have an
// impact on agents' actions."
//
// This module implements both:
//  * each agent discounts token-a flows at r_a and token-b flows at r_b
//    (GK two-currency setting; a staking/dividend yield y on a token is
//    the special case r_token = r - y);
//  * every transaction an agent actively submits costs a flat fee
//    (token-a-denominated): Alice pays fee_a at t1 (deploy) and fee_b at
//    t3 (claim); Bob pays fee_b at t2 (deploy) and fee_a at t4 (claim).
//    Automatic refunds are contract-initiated and free (documented
//    simplification).
//
// Setting r_a = r_b = r and zero fees recovers BasicGame exactly (pinned
// by tests).  Because the stage branches now mix token-a- and token-b-
// denominated flows with different rates, utilities are computed by
// discounting each receipt from the decision anchor at its own asset rate
// rather than composing stage values.
#pragma once

#include <optional>

#include "basic_game.hpp"
#include "math/interval.hpp"
#include "params.hpp"

namespace swapgame::model {

/// Per-agent, per-token discount rates.
struct TokenRates {
  double r_a = 0.01;  ///< rate for token-a flows (per hour)
  double r_b = 0.01;  ///< rate for token-b flows (per hour)

  /// Throws std::invalid_argument unless both are finite and > 0.
  void validate() const;
};

/// Full parameter set of the extended game.
struct ExtendedParams {
  SwapParams base;          ///< alpha, timings, p0, gbm (base r fields unused)
  TokenRates alice;
  TokenRates bob;
  double fee_a = 0.0;       ///< flat fee per Chain_a transaction (token-a)
  double fee_b = 0.0;       ///< flat fee per Chain_b transaction (token-a)

  void validate() const;

  /// Embeds a plain SwapParams (both token rates = the agent's r, no fees),
  /// under which ExtendedGame must coincide with BasicGame.
  [[nodiscard]] static ExtendedParams from_basic(const SwapParams& params);
};

/// Backward induction for the extended game.
class ExtendedGame {
 public:
  ExtendedGame(const ExtendedParams& params, double p_star);

  [[nodiscard]] const ExtendedParams& params() const noexcept { return params_; }
  [[nodiscard]] double p_star() const noexcept { return p_star_; }

  // --- t3 (anchored at t3). --------------------------------------------------
  [[nodiscard]] double alice_t3_cont(double p_t3) const;
  [[nodiscard]] double alice_t3_stop() const;
  [[nodiscard]] double alice_t3_cutoff() const noexcept { return t3_cutoff_; }
  [[nodiscard]] Action alice_decision_t3(double p_t3) const;

  // --- t2 (anchored at t2). --------------------------------------------------
  [[nodiscard]] double bob_t2_cont(double p_t2) const;
  [[nodiscard]] double bob_t2_stop(double p_t2) const;
  /// Single-interval view (nullopt when empty or multi-piece); the general
  /// region is bob_t2_region().
  [[nodiscard]] std::optional<math::Interval> bob_t2_band() const noexcept;
  [[nodiscard]] const math::IntervalSet& bob_t2_region() const noexcept {
    return t2_region_;
  }
  [[nodiscard]] Action bob_decision_t2(double p_t2) const;

  // --- t1 (anchored at t1). --------------------------------------------------
  [[nodiscard]] double alice_t1_cont() const;
  [[nodiscard]] double alice_t1_stop() const;  ///< P*
  [[nodiscard]] Action alice_decision_t1() const;

  // --- Success rate. -----------------------------------------------------------
  [[nodiscard]] double success_rate() const;

 private:
  void compute_t3_cutoff();
  void compute_t2_region();

  ExtendedParams params_;
  double p_star_;
  double t3_cutoff_ = 0.0;
  math::IntervalSet t2_region_;
};

/// Alice's feasible rate band in the extended game.
[[nodiscard]] FeasibleBand extended_feasible_band(const ExtendedParams& params,
                                                  double scan_lo = 0.05,
                                                  double scan_hi = 10.0,
                                                  int scan_samples = 400);

}  // namespace swapgame::model
