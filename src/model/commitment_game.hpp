// The witness-based atomic commitment game (AC^3TW of Zakhary et al.,
// paper Section II-C) as a protocol-family comparison to the HTLC game.
//
// Under a trusted witness, once BOTH parties have locked, completion is
// enforced: there is no t3 reveal decision for Alice and no t4 claim race
// for Bob -- the entire optionality of the HTLC game collapses into the
// two lock decisions:
//
//   t1: Alice locks P* token-a (cont/stop),
//   t2 = t1 + tau_a: Bob locks 1 token-b (cont/stop),
//   t3 = t2 + tau_b: the witness observes both locks and commits (claims
//        both legs) or, if Bob never locked, stays silent and the time
//        locks refund.
//
// Consequences the bench (X11) verifies against the HTLC game:
//   * Bob's continuation region becomes one-sided: he locks for ALL low
//     prices (no Alice-defection risk) up to a single threshold
//     p_hi = (1 + alpha^B) P* e^{-r^B (tau_b + tau_a)};
//   * the success rate is simply P[P_t2 <= p_hi | initiated], generally
//     HIGHER than the HTLC game's;
//   * Alice LOSES her American option -- her utility can be lower even
//     though completion is more likely.  Protocol choice is a trade-off,
//     not a dominance (the Section V comparative question).
//
// Timeline used (no mempool-visibility step is needed):
//   success: Alice receives at t3 + tau_b, Bob at t3 + tau_a;
//   abort:   expiries t_a = t3 + tau_a, t_b = t3 + tau_b; Alice's refund
//            confirms at t_a + tau_a.
#pragma once

#include "basic_game.hpp"
#include "params.hpp"

namespace swapgame::model {

/// Backward induction for the witness-commitment game.
class CommitmentGame {
 public:
  /// eps_b is unused (no mempool step); other params as in the HTLC game.
  CommitmentGame(const SwapParams& params, double p_star);

  [[nodiscard]] const SwapParams& params() const noexcept { return params_; }
  [[nodiscard]] double p_star() const noexcept { return p_star_; }

  // --- t2: Bob's lock decision. ---------------------------------------------
  /// Value of locking: completion is certain once he locks.
  [[nodiscard]] double bob_t2_cont() const;
  [[nodiscard]] double bob_t2_stop(double p_t2) const;  ///< keeps token-b
  /// Bob locks iff P_t2 <= this single threshold (one-sided region).
  [[nodiscard]] double bob_t2_threshold() const noexcept { return bob_hi_; }
  [[nodiscard]] Action bob_decision_t2(double p_t2) const;

  // --- t1: Alice's lock decision. ---------------------------------------------
  [[nodiscard]] double alice_t1_cont() const;
  [[nodiscard]] double alice_t1_stop() const;  ///< P*
  [[nodiscard]] Action alice_decision_t1() const;
  [[nodiscard]] double bob_t1_cont() const;   ///< informational (t0 agreement)
  [[nodiscard]] double bob_t1_stop() const;   ///< P_t0

  // --- Success rate: P[P_t2 <= threshold]. -------------------------------------
  [[nodiscard]] double success_rate() const;

 private:
  SwapParams params_;
  double p_star_;
  double bob_hi_ = 0.0;
};

/// Alice's feasible rate band under the commitment protocol.
[[nodiscard]] FeasibleBand commitment_feasible_band(const SwapParams& params,
                                                    double scan_lo = 0.05,
                                                    double scan_hi = 10.0,
                                                    int scan_samples = 400);

}  // namespace swapgame::model
