#include "timeline.hpp"

#include <sstream>

namespace swapgame::model {

namespace {

// Small helper producing "name: lhs <op> rhs violated" strings.
std::optional<std::string> require(bool ok, const char* what) {
  if (ok) return std::nullopt;
  return std::string(what);
}

}  // namespace

std::optional<std::string> check_schedule(const Schedule& s, double tau_a,
                                          double tau_b, double eps_b) {
  // Eq. (3)
  if (auto v = require(eps_b < tau_b, "eps_b < tau_b (Eq. 3)")) return v;
  // Eq. (4): t1 >= t0
  if (auto v = require(s.t1 >= s.t0, "t1 >= t0 (Eq. 4)")) return v;
  // Eq. (5): t2 >= t1 + tau_a  (Bob waits for Alice's confirmation)
  if (auto v = require(s.t2 >= s.t1 + tau_a, "t2 >= t1 + tau_a (Eq. 5)")) return v;
  // Eq. (6): t3 >= t2 + tau_b
  if (auto v = require(s.t3 >= s.t2 + tau_b, "t3 >= t2 + tau_b (Eq. 6)")) return v;
  // Eq. (7): t4 >= t3 + eps_b
  if (auto v = require(s.t4 >= s.t3 + eps_b, "t4 >= t3 + eps_b (Eq. 7)")) return v;
  // Eq. (8): t5 = t3 + tau_b <= t_b
  if (auto v = require(s.t5 == s.t3 + tau_b, "t5 == t3 + tau_b (Eq. 8)")) return v;
  if (auto v = require(s.t5 <= s.t_b, "t5 <= t_b (Eq. 8)")) return v;
  // Eq. (9): t6 = t4 + tau_a <= t_a
  if (auto v = require(s.t6 == s.t4 + tau_a, "t6 == t4 + tau_a (Eq. 9)")) return v;
  if (auto v = require(s.t6 <= s.t_a, "t6 <= t_a (Eq. 9)")) return v;
  // Eq. (10): t7 = t_b + tau_b
  if (auto v = require(s.t7 == s.t_b + tau_b, "t7 == t_b + tau_b (Eq. 10)")) return v;
  // Eq. (11): t8 = t_a + tau_a
  if (auto v = require(s.t8 == s.t_a + tau_a, "t8 == t_a + tau_a (Eq. 11)")) return v;
  return std::nullopt;
}

Schedule idealized_schedule(const SwapParams& params, double t0) {
  params.validate();
  Schedule s;
  s.t0 = t0;
  s.t1 = t0;                      // Eq. (13): t1 = t0
  s.t2 = s.t1 + params.tau_a;     // t2 = t1 + tau_a
  s.t3 = s.t2 + params.tau_b;     // t3 = t2 + tau_b
  s.t4 = s.t3 + params.eps_b;     // t4 = t3 + eps_b
  s.t5 = s.t3 + params.tau_b;     // t5 = t3 + tau_b = t_b
  s.t_b = s.t5;
  s.t6 = s.t4 + params.tau_a;     // t6 = t4 + tau_a = t_a
  s.t_a = s.t6;
  s.t7 = s.t_b + params.tau_b;    // t7 = t_b + tau_b
  s.t8 = s.t_a + params.tau_a;    // t8 = t_a + tau_a
  return s;
}

StageDelays stage_delays(const SwapParams& params) {
  StageDelays d{};
  d.alice_cont_from_t3 = params.tau_b;
  d.bob_cont_from_t3 = params.eps_b + params.tau_a;
  d.alice_stop_from_t3 = params.eps_b + 2.0 * params.tau_a;
  d.bob_stop_from_t3 = 2.0 * params.tau_b;
  d.alice_stop_from_t2 = params.tau_b + params.eps_b + 2.0 * params.tau_a;
  return d;
}

}  // namespace swapgame::model
