#include "sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "basic_game.hpp"

namespace swapgame::model {

const ParameterSensitivity& SensitivityReport::operator[](
    const std::string& name) const {
  for (const ParameterSensitivity& p : parameters) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("SensitivityReport: unknown parameter " + name);
}

namespace {

double sr_at(const SwapParams& params, double p_star) {
  return BasicGame(params, p_star).success_rate();
}

/// Central difference along one mutated parameter.
double central_difference(
    const SwapParams& base, double p_star, double value, double step,
    const std::function<void(SwapParams&, double&, double)>& set) {
  SwapParams up = base;
  SwapParams down = base;
  double p_up = p_star;
  double p_down = p_star;
  set(up, p_up, value + step);
  set(down, p_down, value - step);
  return (sr_at(up, p_up) - sr_at(down, p_down)) / (2.0 * step);
}

}  // namespace

SensitivityReport success_rate_sensitivities(const SwapParams& params,
                                             double p_star, double rel_step) {
  params.validate();
  if (!(rel_step > 0.0)) {
    throw std::invalid_argument(
        "success_rate_sensitivities: rel_step must be > 0");
  }
  SensitivityReport report;
  report.success_rate = sr_at(params, p_star);
  if (!(report.success_rate > 0.0)) {
    throw std::invalid_argument(
        "success_rate_sensitivities: SR is zero at the base point");
  }

  struct Spec {
    const char* name;
    double value;
    std::function<void(SwapParams&, double&, double)> set;
  };
  const std::vector<Spec> specs = {
      {"sigma", params.gbm.sigma,
       [](SwapParams& p, double&, double v) { p.gbm.sigma = v; }},
      {"mu", params.gbm.mu,
       [](SwapParams& p, double&, double v) { p.gbm.mu = v; }},
      {"alpha_A", params.alice.alpha,
       [](SwapParams& p, double&, double v) { p.alice.alpha = v; }},
      {"alpha_B", params.bob.alpha,
       [](SwapParams& p, double&, double v) { p.bob.alpha = v; }},
      {"r_A", params.alice.r,
       [](SwapParams& p, double&, double v) { p.alice.r = v; }},
      {"r_B", params.bob.r,
       [](SwapParams& p, double&, double v) { p.bob.r = v; }},
      {"tau_a", params.tau_a,
       [](SwapParams& p, double&, double v) { p.tau_a = v; }},
      {"tau_b", params.tau_b,
       [](SwapParams& p, double&, double v) { p.tau_b = v; }},
      {"eps_b", params.eps_b,
       [](SwapParams& p, double&, double v) { p.eps_b = v; }},
      {"p_star", p_star,
       [](SwapParams&, double& ps, double v) { ps = v; }},
      {"p_t0", params.p_t0,
       [](SwapParams& p, double&, double v) { p.p_t0 = v; }},
  };

  for (const Spec& spec : specs) {
    const double step =
        std::max(std::abs(spec.value) * rel_step, 1e-4 * rel_step / 5e-3);
    ParameterSensitivity s;
    s.name = spec.name;
    s.value = spec.value;
    s.derivative =
        central_difference(params, p_star, spec.value, step, spec.set);
    s.elasticity = s.derivative * spec.value / report.success_rate;
    report.parameters.push_back(std::move(s));
  }
  std::sort(report.parameters.begin(), report.parameters.end(),
            [](const ParameterSensitivity& a, const ParameterSensitivity& b) {
              return std::abs(a.elasticity) > std::abs(b.elasticity);
            });
  return report;
}

}  // namespace swapgame::model
