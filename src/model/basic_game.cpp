#include "basic_game.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "math/gbm.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"
#include "solver_cache.hpp"
#include "timeline.hpp"

namespace swapgame::model {

namespace {

// Scan resolution for Bob's t2 indifference roots.  The cont/stop utility
// gap is smooth with at most two transversal zeros, so a moderately fine
// grid plus Brent polishing is ample.
constexpr int kBandScanSamples = 2048;

// Verification resolution for warm-started solves: coarse enough to be
// cheap, fine enough that a structural change between neighbouring sweep
// points (a crossing appearing or vanishing) is detected and triggers the
// cold-scan fallback.
constexpr int kWarmVerifySamples = 257;

}  // namespace

BasicGame::BasicGame(const SwapParams& params, double p_star)
    : params_(params), p_star_(p_star) {
  params_.validate();
  if (!(p_star > 0.0) || !std::isfinite(p_star)) {
    throw std::invalid_argument("BasicGame: p_star must be positive and finite");
  }
  compute_t3_cutoff();
  compute_t2_region(nullptr);
}

BasicGame::BasicGame(const SwapParams& params, double p_star,
                     const std::vector<double>& t2_root_hints)
    : params_(params), p_star_(p_star) {
  params_.validate();
  if (!(p_star > 0.0) || !std::isfinite(p_star)) {
    throw std::invalid_argument("BasicGame: p_star must be positive and finite");
  }
  compute_t3_cutoff();
  compute_t2_region(&t2_root_hints);
}

// ---------------------------------------------------------------- t3 stage

double BasicGame::alice_t3_cont(double p_t3) const {
  // Eq. (14): (1 + alpha^A) * E(P_t3, tau_b) * e^{-r^A tau_b}; Alice gets
  // the token-b at t5 = t3 + tau_b.
  const double mu = params_.gbm.mu;
  return (1.0 + params_.alice.alpha) * p_t3 *
         std::exp((mu - params_.alice.r) * params_.tau_b);
}

double BasicGame::alice_t3_stop() const {
  // Eq. (16): token-a refunded at t8 = t3 + eps_b + 2 tau_a.
  return p_star_ *
         std::exp(-params_.alice.r * (params_.eps_b + 2.0 * params_.tau_a));
}

double BasicGame::bob_t3_cont() const {
  // Eq. (15): Bob receives P_star token-a at t6 = t3 + eps_b + tau_a.
  return (1.0 + params_.bob.alpha) * p_star_ *
         std::exp(-params_.bob.r * (params_.eps_b + params_.tau_a));
}

double BasicGame::bob_t3_stop(double p_t3) const {
  // Eq. (17): Bob's token-b refunded at t7 = t3 + 2 tau_b.
  return p_t3 * std::exp((params_.gbm.mu - params_.bob.r) * 2.0 * params_.tau_b);
}

void BasicGame::compute_t3_cutoff() {
  // Eq. (18).
  const double rA = params_.alice.r;
  const double mu = params_.gbm.mu;
  t3_cutoff_ = std::exp((rA - mu) * params_.tau_b -
                        rA * (params_.eps_b + 2.0 * params_.tau_a)) *
               p_star_ / (1.0 + params_.alice.alpha);
}

Action BasicGame::alice_decision_t3(double p_t3) const {
  // Eq. (19): cont iff P_t3 > cutoff.
  return p_t3 > t3_cutoff_ ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t2 stage

double BasicGame::alice_t2_cont(double p_t2) const {
  // Eq. (20): expectation of Alice's t3 value over the price law, then
  // discounted one tau_b.  The integral over {x > cutoff} of x * pdf is the
  // upper partial expectation (closed form).
  // alice_t3_cont(x) is linear in x, so its integral against the density
  // over (cutoff, inf) reduces to the upper partial expectation
  // E[X 1{X > cutoff}].
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double L = t3_cutoff_;
  const double cont_part =
      (1.0 + params_.alice.alpha) *
      std::exp((params_.gbm.mu - params_.alice.r) * params_.tau_b) *
      law.partial_expectation_above(L);
  const double stop_part = law.cdf(L) * alice_t3_stop();
  return (cont_part + stop_part) * std::exp(-params_.alice.r * params_.tau_b);
}

double BasicGame::alice_t2_stop() const {
  // Eq. (22): refund at t8 = t2 + tau_b + eps_b + 2 tau_a.
  return p_star_ * std::exp(-params_.alice.r *
                            (params_.tau_b + params_.eps_b + 2.0 * params_.tau_a));
}

double BasicGame::bob_t2_cont(double p_t2) const {
  // Eq. (21): with probability 1 - C(cutoff) Alice reveals and Bob gets
  // bob_t3_cont(); otherwise Bob is refunded, worth bob_t3_stop(x) at the
  // realized price x -- the integral of x pdf(x) over (0, cutoff) is the
  // lower partial expectation.
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double L = t3_cutoff_;
  const double cont_part = law.survival(L) * bob_t3_cont();
  const double stop_part =
      std::exp((params_.gbm.mu - params_.bob.r) * 2.0 * params_.tau_b) *
      law.partial_expectation_below(L);
  return (cont_part + stop_part) * std::exp(-params_.bob.r * params_.tau_b);
}

double BasicGame::bob_t2_stop(double p_t2) const {
  // Eq. (23): Bob keeps his token-b, worth P_t2 now.
  return p_t2;
}

void BasicGame::compute_t2_region(const std::vector<double>* hints) {
  // Roots of g(p) = bob_t2_cont(p) - p.  In the paper's mu < r regime g < 0
  // both as p -> 0 (token-b worthless, but Alice will not reveal either)
  // and as p -> inf (Bob keeps the valuable token-b), so the cont region
  // lies between two roots (Section III-E3).  With mu >= r Bob's refund
  // branch outgrows his discounting and g > 0 near 0: the region extends
  // down to zero with a single indifference point.  The alternating-root
  // construction handles both.
  // Strict-preference tie-break: cont must beat stop by a scale-relative
  // margin.  Guards against the degenerate mu == r_B regime where the gap
  // is identically zero near p = 0 and floating-point dither would
  // otherwise fabricate spurious crossings.
  const auto raw_gap = [this](double p) {
    return bob_t2_cont(p) - bob_t2_stop(p);
  };
  const double scan_hi =
      10.0 * std::max({p_star_, params_.p_t0, t3_cutoff_});
  // Scale-relative lower scan bound: keeps the grid resolution
  // proportional to the price scale (scale-invariance tests pin this).
  const double scan_lo = 1e-7 * scan_hi;
  const double tie = 1e-10 * scan_hi;
  const auto gap = [&raw_gap, tie](double p) { return raw_gap(p) - tie; };
  std::optional<std::vector<double>> warm;
  if (hints != nullptr && !hints->empty()) {
    warm = math::find_all_roots_warm(gap, scan_lo, scan_hi, *hints,
                                     kWarmVerifySamples);
  }
  t2_roots_ = warm ? std::move(*warm)
                   : math::find_all_roots(gap, scan_lo, scan_hi,
                                          kBandScanSamples);
  const bool starts_inside = gap(scan_lo) > 0.0;
  t2_region_ = math::IntervalSet::from_alternating_roots(
      t2_roots_, 0.0, std::numeric_limits<double>::infinity(), starts_inside);
  // g < 0 at +inf always (stop grows linearly); an unbounded inside piece
  // means the scan missed the last crossing -- trim defensively.
  if (!t2_region_.empty() && std::isinf(t2_region_.intervals().back().hi)) {
    std::vector<math::Interval> trimmed = t2_region_.intervals();
    trimmed.back().hi = scan_hi;
    t2_region_ = math::IntervalSet(std::move(trimmed));
  }
}

std::optional<math::Interval> BasicGame::bob_t2_band() const noexcept {
  if (t2_region_.size() != 1) return std::nullopt;
  return t2_region_.intervals().front();
}

Action BasicGame::bob_decision_t2(double p_t2) const {
  // Eq. (24).
  return t2_region_.contains(p_t2) ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t1 stage

double BasicGame::alice_t1_cont() const {
  return alice_t1_cont_cache_.get([this] { return compute_alice_t1_cont(); });
}

double BasicGame::compute_alice_t1_cont() const {
  // Eq. (25): integrate Alice's t2 value over the tau_a price law (summed
  // over the region's pieces; a single piece in the paper's regime).
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  double inside = 0.0;
  double inside_prob = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    inside += math::gauss_legendre(
        [this, &law](double x) { return law.pdf(x) * alice_t2_cont(x); }, lo,
        iv.hi, 64);
    inside_prob += law.cdf(iv.hi) - law.cdf(lo);
  }
  const double outside_prob = std::max(0.0, 1.0 - inside_prob);
  return (inside + outside_prob * alice_t2_stop()) *
         std::exp(-params_.alice.r * params_.tau_a);
}

double BasicGame::alice_t1_stop() const {
  // Eq. (27): Alice keeps her P_star token-a.
  return p_star_;
}

double BasicGame::bob_t1_cont() const {
  return bob_t1_cont_cache_.get([this] { return compute_bob_t1_cont(); });
}

double BasicGame::compute_bob_t1_cont() const {
  // Eq. (26): inside the region Bob's t2 value is bob_t2_cont; outside he
  // keeps token-b worth the realized price x.
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  double inside = 0.0;
  double inside_pe = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    inside += math::gauss_legendre(
        [this, &law](double x) { return law.pdf(x) * bob_t2_cont(x); }, lo,
        iv.hi, 64);
    inside_pe += law.partial_expectation_below(iv.hi) -
                 law.partial_expectation_below(lo);
  }
  const double outside = std::max(0.0, law.expectation() - inside_pe);
  return (inside + outside) * std::exp(-params_.bob.r * params_.tau_a);
}

double BasicGame::bob_t1_stop() const {
  // Eq. (28): Bob keeps his 1 token-b, worth P_t1 = P_t0.
  return params_.p_t0;
}

Action BasicGame::alice_decision_t1() const {
  // Eq. (30): initiate iff continuation beats keeping the token-a.
  return alice_t1_cont() > alice_t1_stop() ? Action::kCont : Action::kStop;
}

// ------------------------------------------------------------ success rate

double BasicGame::success_rate() const {
  return success_rate_cache_.get([this] { return compute_success_rate(); });
}

double BasicGame::compute_success_rate() const {
  // Eq. (31): P[P_t2 in region] weighted by P[Alice reveals at t3 | P_t2].
  if (t2_region_.empty()) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double L = t3_cutoff_;
  double sr = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    sr += math::gauss_legendre(
        [this, &law_a, L](double x) {
          const math::GbmLaw law_b(params_.gbm, x, params_.tau_b);
          return law_a.pdf(x) * law_b.survival(L);
        },
        lo, iv.hi, 64);
  }
  return sr;
}

double BasicGame::bob_t2_cont_probability() const {
  if (t2_region_.empty()) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  double prob = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    prob += std::isinf(iv.hi) ? law_a.survival(lo)
                              : law_a.cdf(iv.hi) - law_a.cdf(lo);
  }
  return std::min(1.0, std::max(0.0, prob));
}

// ------------------------------------------------------------- free helpers

FeasibleBand alice_feasible_band(const SwapParams& params, double scan_lo,
                                 double scan_hi, int scan_samples) {
  params.validate();
  // The scan evaluates the gap at closely spaced P* values; chain each
  // game's t2 roots into the next construction as warm-start hints so the
  // inner region solve skips the full cold scan at almost every point.
  std::vector<double> last_roots;
  const auto gap = [&params, &last_roots](double p_star) {
    const BasicGame game(params, p_star, last_roots);
    last_roots = game.t2_roots();
    return game.alice_t1_cont() - game.alice_t1_stop();
  };
  const std::vector<double> roots =
      math::find_all_roots(gap, scan_lo, scan_hi, scan_samples);
  FeasibleBand band;
  if (roots.size() >= 2) {
    band.viable = true;
    band.lo = roots.front();
    band.hi = roots.back();
  }
  return band;
}

std::optional<OptimalRate> sr_maximizing_rate(const SwapParams& params,
                                              int grid) {
  const FeasibleBand band = cached_feasible_band(params);
  if (!band.viable || grid < 2) return std::nullopt;
  OptimalRate best;
  bool found = false;
  std::vector<double> last_roots;
  for (int i = 0; i <= grid; ++i) {
    const double p_star =
        band.lo + (band.hi - band.lo) * static_cast<double>(i) / grid;
    if (!(p_star > 0.0)) continue;
    const BasicGame game(params, p_star, last_roots);
    last_roots = game.t2_roots();
    const double sr = game.success_rate();
    if (!found || sr > best.success_rate) {
      best = {p_star, sr};
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return best;
}

}  // namespace swapgame::model
