// GBM parameter estimation from price series.
//
// The paper's Section V proposes "simulation studies ... using real market
// data".  This module closes that loop: given a sampled price series
// (exchange candles, or synthetic), it fits the model's (mu, sigma) by
// maximum likelihood on log increments, with standard errors, so the
// fitted parameters can be fed straight into SwapParams::gbm.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/gbm.hpp"
#include "math/rng.hpp"

namespace swapgame::model {

/// Result of fitting a GBM to a price series.
struct GbmFit {
  math::GbmParams params;        ///< estimated (mu, sigma), per hour
  double mu_stderr = 0.0;        ///< standard error of mu
  double sigma_stderr = 0.0;     ///< standard error of sigma
  double log_likelihood = 0.0;   ///< of the log-increments under the fit
  std::size_t increments = 0;    ///< number of log returns used
};

/// Maximum-likelihood GBM fit.
///
/// @param prices  strictly positive price observations, equally spaced.
/// @param dt      spacing in hours (e.g. 1.0 for hourly candles).
/// @throws std::invalid_argument for < 3 observations, non-positive prices
///         or dt <= 0.
[[nodiscard]] GbmFit fit_gbm(std::span<const double> prices, double dt);

/// Simulates an equally spaced GBM price series (for round-trip tests and
/// the calibration example): n+1 prices starting at p0.
[[nodiscard]] std::vector<double> simulate_price_series(
    const math::GbmParams& params, double p0, double dt, std::size_t n,
    math::Xoshiro256& rng);

}  // namespace swapgame::model
