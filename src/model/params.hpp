// Model parameters (paper Table II notation, Table III defaults).
//
// All times are hours; rates are per hour; prices are token-a per token-b.
// Alice trades P_star token-a for Bob's 1 token-b (Table I).
#pragma once

#include "math/gbm.hpp"

namespace swapgame::model {

/// Per-agent preference parameters of the utility function (paper Eq. (2)):
/// U_t = E[(1 + alpha * S) * V / e^{r T}].
struct AgentParams {
  /// Success premium: excess utility from completing the swap (reputation,
  /// genuine need for the counterparty's token).  Higher alpha means more
  /// "honest" behaviour (Section III-F1).
  double alpha = 0.3;
  /// Discount rate / impatience (per hour).  Must be > 0 (Section III-C
  /// relies on r > 0 to collapse waiting times).
  double r = 0.01;

  /// Throws std::invalid_argument for r <= 0, alpha < -1 or non-finite.
  void validate() const;
};

/// Full parameter set of the swap game except the exchange rate P_star,
/// which most figures sweep and is therefore passed alongside.
struct SwapParams {
  AgentParams alice;  ///< agent A, initiator
  AgentParams bob;    ///< agent B
  double tau_a = 3.0;  ///< confirmation time on Chain_a (hours)
  double tau_b = 4.0;  ///< confirmation time on Chain_b (hours)
  double eps_b = 1.0;  ///< mempool-visibility delay on Chain_b (hours), < tau_b
  double p_t0 = 2.0;   ///< token-b price at t0 (= t1; footnote 3)
  math::GbmParams gbm{};  ///< price dynamics (mu = 0.002, sigma = 0.1)

  /// Throws std::invalid_argument on violated constraints (Eq. (3) etc).
  void validate() const;

  /// The paper's Table III defaults (also the struct defaults; spelled out
  /// for use in benches/tests).
  [[nodiscard]] static SwapParams table3_defaults();
};

/// The two moves available at every decision point (Section III-E).
enum class Action : bool { kStop = false, kCont = true };

[[nodiscard]] const char* to_string(Action a) noexcept;

}  // namespace swapgame::model
