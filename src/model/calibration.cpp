#include "calibration.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace swapgame::model {

GbmFit fit_gbm(std::span<const double> prices, double dt) {
  if (prices.size() < 3) {
    throw std::invalid_argument("fit_gbm: need at least 3 observations");
  }
  if (!(dt > 0.0) || !std::isfinite(dt)) {
    throw std::invalid_argument("fit_gbm: dt must be positive");
  }
  for (double p : prices) {
    if (!(p > 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument("fit_gbm: prices must be positive");
    }
  }

  // Log increments are iid N((mu - sigma^2/2) dt, sigma^2 dt).
  const std::size_t n = prices.size() - 1;
  double sum = 0.0;
  for (std::size_t i = 1; i < prices.size(); ++i) {
    sum += std::log(prices[i] / prices[i - 1]);
  }
  const double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = 1; i < prices.size(); ++i) {
    const double d = std::log(prices[i] / prices[i - 1]) - mean;
    ss += d * d;
  }
  // MLE variance uses the 1/n denominator.
  const double var = ss / static_cast<double>(n);
  if (!(var > 0.0)) {
    throw std::invalid_argument("fit_gbm: series has zero variance");
  }

  GbmFit fit;
  fit.increments = n;
  fit.params.sigma = std::sqrt(var / dt);
  fit.params.mu = mean / dt + 0.5 * fit.params.sigma * fit.params.sigma;
  // Asymptotic standard errors: sd(mean)/dt for the drift component (the
  // sigma^2/2 correction contributes O(1/n) and is ignored), sigma/sqrt(2n)
  // for the volatility.
  fit.sigma_stderr =
      fit.params.sigma / std::sqrt(2.0 * static_cast<double>(n));
  fit.mu_stderr = fit.params.sigma / std::sqrt(static_cast<double>(n) * dt);
  // Gaussian log likelihood of the increments at the MLE.
  fit.log_likelihood = -0.5 * static_cast<double>(n) *
                       (std::log(2.0 * std::numbers::pi * var) + 1.0);
  return fit;
}

std::vector<double> simulate_price_series(const math::GbmParams& params,
                                          double p0, double dt, std::size_t n,
                                          math::Xoshiro256& rng) {
  params.validate();
  if (!(p0 > 0.0) || !(dt > 0.0)) {
    throw std::invalid_argument("simulate_price_series: p0 and dt must be > 0");
  }
  std::vector<double> prices;
  prices.reserve(n + 1);
  prices.push_back(p0);
  double price = p0;
  for (std::size_t i = 0; i < n; ++i) {
    const math::GbmLaw law(params, price, dt);
    price = law.sample_from_normal(math::normal_inverse_cdf_draw(rng));
    prices.push_back(price);
  }
  return prices;
}

}  // namespace swapgame::model
