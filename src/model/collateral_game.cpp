#include "collateral_game.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "math/gbm.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"

namespace swapgame::model {

namespace {

constexpr int kRegionScanSamples = 4096;

// Verification resolution for warm-started solves (finer than the basic
// game's: the collateral gap can have 3 crossings, Fig. 7).
constexpr int kWarmVerifySamples = 513;

}  // namespace

CollateralGame::CollateralGame(const SwapParams& params, double p_star,
                               double collateral)
    : params_(params), p_star_(p_star), q_(collateral),
      basic_(params, p_star) {
  if (!(collateral >= 0.0) || !std::isfinite(collateral)) {
    throw std::invalid_argument(
        "CollateralGame: collateral must be >= 0 and finite");
  }
  compute_t3_cutoff();
  compute_t2_region(nullptr);
}

CollateralGame::CollateralGame(const SwapParams& params, double p_star,
                               double collateral,
                               const std::vector<double>& basic_t2_root_hints,
                               const std::vector<double>& t2_root_hints)
    : params_(params), p_star_(p_star), q_(collateral),
      basic_(params, p_star, basic_t2_root_hints) {
  if (!(collateral >= 0.0) || !std::isfinite(collateral)) {
    throw std::invalid_argument(
        "CollateralGame: collateral must be >= 0 and finite");
  }
  compute_t3_cutoff();
  compute_t2_region(&t2_root_hints);
}

// ---------------------------------------------------------------- t3 stage

double CollateralGame::alice_t3_cont(double p_t3) const {
  // Basic cont utility plus the collateral recovered at t4 + tau_a, i.e.
  // eps_b + tau_a after t3 (Section IV-2).
  return basic_.alice_t3_cont(p_t3) +
         q_ * std::exp(-params_.alice.r * (params_.eps_b + params_.tau_a));
}

double CollateralGame::alice_t3_stop() const { return basic_.alice_t3_stop(); }

void CollateralGame::compute_t3_cutoff() {
  // Eq. (34): the basic cutoff shifted down by the collateral recovery and
  // clamped at zero (when the recovery alone exceeds the refund value,
  // Alice reveals at any price).
  const double rA = params_.alice.r;
  const double mu = params_.gbm.mu;
  const double refund = p_star_ * std::exp(-rA * (params_.eps_b + 2.0 * params_.tau_a));
  const double recovery = q_ * std::exp(-rA * (params_.eps_b + params_.tau_a));
  const double shifted = refund - recovery;
  t3_cutoff_ = shifted <= 0.0
                   ? 0.0
                   : std::exp((rA - mu) * params_.tau_b) * shifted /
                         (1.0 + params_.alice.alpha);
}

Action CollateralGame::alice_decision_t3(double p_t3) const {
  return p_t3 > t3_cutoff_ ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t2 stage

double CollateralGame::alice_t2_cont(double p_t2) const {
  // Eq. (36)'s integrand value: Alice's expected t3 value when Bob locked.
  // On the reveal branch she also recovers her collateral; on the waive
  // branch she forfeits it.
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double L = t3_cutoff_;
  const double recovery =
      q_ * std::exp(-params_.alice.r * (params_.eps_b + params_.tau_a));
  const double cont_part =
      (1.0 + params_.alice.alpha) *
          std::exp((params_.gbm.mu - params_.alice.r) * params_.tau_b) *
          law.partial_expectation_above(L) +
      law.survival(L) * recovery;
  const double stop_part = law.cdf(L) * basic_.alice_t3_stop();
  return (cont_part + stop_part) * std::exp(-params_.alice.r * params_.tau_b);
}

double CollateralGame::bob_t2_cont(double p_t2) const {
  // Eq. (35): Bob's own collateral comes back at t3 + tau_a regardless
  // (he has fulfilled his obligations by locking); if Alice waives he
  // additionally receives her forfeited collateral at t4 + tau_a.
  const math::GbmLaw law(params_.gbm, p_t2, params_.tau_b);
  const double L = t3_cutoff_;
  const double own_recovery = q_ * std::exp(-params_.bob.r * params_.tau_a);
  const double forfeit_gain =
      q_ * std::exp(-params_.bob.r * (params_.eps_b + params_.tau_a));
  const double cont_part = law.survival(L) * basic_.bob_t3_cont();
  const double stop_part =
      std::exp((params_.gbm.mu - params_.bob.r) * 2.0 * params_.tau_b) *
          law.partial_expectation_below(L) +
      law.cdf(L) * forfeit_gain;
  return (own_recovery + cont_part + stop_part) *
         std::exp(-params_.bob.r * params_.tau_b);
}

double CollateralGame::bob_t2_stop(double p_t2) const {
  // Eq. (23): stopping forfeits Bob's collateral (released to Alice), so
  // his stop utility is just the token-b value.
  return p_t2;
}

void CollateralGame::compute_t2_region(const std::vector<double>* hints) {
  // Roots of bob_t2_cont(p) - p.  With Q > 0 the gap is positive as p -> 0
  // (recovering 2 discounted Q beats keeping a worthless token) and
  // negative as p -> inf, so there is an odd number of crossings (Fig. 7).
  // Strict-preference tie-break: cont must beat stop by a scale-relative
  // margin.  Guards against the degenerate mu == r_B regime where the gap
  // is identically zero near p = 0 and floating-point dither would
  // otherwise fabricate spurious crossings.
  const auto raw_gap = [this](double p) {
    return bob_t2_cont(p) - bob_t2_stop(p);
  };
  const double scan_hi =
      10.0 * std::max({p_star_, params_.p_t0, t3_cutoff_, q_});
  // Scale-relative lower scan bound: keeps the grid resolution
  // proportional to the price scale (scale-invariance tests pin this).
  const double scan_lo = 1e-7 * scan_hi;
  const double tie = 1e-10 * scan_hi;
  const auto gap = [&raw_gap, tie](double p) { return raw_gap(p) - tie; };
  std::optional<std::vector<double>> warm;
  if (hints != nullptr && !hints->empty()) {
    warm = math::find_all_roots_warm(gap, scan_lo, scan_hi, *hints,
                                     kWarmVerifySamples);
  }
  t2_roots_ = warm ? std::move(*warm)
                   : math::find_all_roots(gap, scan_lo, scan_hi,
                                          kRegionScanSamples);
  const bool starts_inside = gap(scan_lo) > 0.0;
  t2_region_ = math::IntervalSet::from_alternating_roots(
      t2_roots_, 0.0, std::numeric_limits<double>::infinity(), starts_inside);
  // The unbounded last piece is "inside" only if the gap is positive there;
  // with an even root count and starts_inside (or odd and !starts_inside)
  // the alternation already encodes that, and the gap is always negative at
  // +inf, so the final piece can only be inside if the root scan missed a
  // crossing beyond scan_hi.  Guard by trimming an unbounded inside piece
  // at scan_hi (tests assert this never fires at paper-scale parameters).
  if (!t2_region_.empty() && std::isinf(t2_region_.intervals().back().hi)) {
    std::vector<math::Interval> trimmed = t2_region_.intervals();
    trimmed.back().hi = scan_hi;
    t2_region_ = math::IntervalSet(std::move(trimmed));
  }
}

Action CollateralGame::bob_decision_t2(double p_t2) const {
  return t2_region_.contains(p_t2) ? Action::kCont : Action::kStop;
}

// ---------------------------------------------------------------- t1 stage

double CollateralGame::alice_t1_cont() const {
  return alice_t1_cont_cache_.get([this] { return compute_alice_t1_cont(); });
}

double CollateralGame::compute_alice_t1_cont() const {
  // Eq. (36).  Where Bob will lock, Alice's value is alice_t2_cont; where
  // Bob will stop, Alice is refunded (Eq. 22) and receives both collaterals
  // 2Q at t3 (decided) + tau_a (confirmation), i.e. tau_b + tau_a after t2.
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  const double stop_value =
      basic_.alice_t2_stop() +
      2.0 * q_ * std::exp(-params_.alice.r * (params_.tau_b + params_.tau_a));
  const auto piece = [this, &law](double lo, double hi) {
    return math::gauss_legendre(
        [this, &law](double x) { return law.pdf(x) * alice_t2_cont(x); }, lo,
        hi, 48);
  };
  double inside = 0.0;
  double inside_prob = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    inside += piece(iv.lo, iv.hi);
    inside_prob += law.cdf(iv.hi) - law.cdf(iv.lo);
  }
  const double outside_prob = std::max(0.0, 1.0 - inside_prob);
  return (inside + outside_prob * stop_value) *
         std::exp(-params_.alice.r * params_.tau_a);
}

double CollateralGame::alice_t1_stop() const {
  // Eq. (38): keep the token-a and the would-be collateral.
  return p_star_ + q_;
}

double CollateralGame::bob_t1_cont() const {
  return bob_t1_cont_cache_.get([this] { return compute_bob_t1_cont(); });
}

double CollateralGame::compute_bob_t1_cont() const {
  // Eq. (37) (with the r^A typo read as r^B; see DESIGN.md): inside the
  // region Bob's value is bob_t2_cont; outside he keeps token-b worth the
  // realized price and forfeits his collateral.
  const math::GbmLaw law(params_.gbm, params_.p_t0, params_.tau_a);
  const auto piece = [this, &law](double lo, double hi) {
    return math::gauss_legendre(
        [this, &law](double x) { return law.pdf(x) * bob_t2_cont(x); }, lo, hi,
        48);
  };
  double inside = 0.0;
  double inside_pe = 0.0;  // partial expectation over the region
  for (const math::Interval& iv : t2_region_.intervals()) {
    inside += piece(iv.lo, iv.hi);
    inside_pe += law.partial_expectation_below(iv.hi) -
                 law.partial_expectation_below(iv.lo);
  }
  const double outside = std::max(0.0, law.expectation() - inside_pe);
  return (inside + outside) * std::exp(-params_.bob.r * params_.tau_a);
}

double CollateralGame::bob_t1_stop() const {
  // Eq. (39).
  return params_.p_t0 + q_;
}

Action CollateralGame::alice_decision_t1() const {
  return alice_t1_cont() > alice_t1_stop() ? Action::kCont : Action::kStop;
}

Action CollateralGame::bob_decision_t1() const {
  return bob_t1_cont() > bob_t1_stop() ? Action::kCont : Action::kStop;
}

bool CollateralGame::engaged() const {
  return alice_decision_t1() == Action::kCont &&
         bob_decision_t1() == Action::kCont;
}

// ------------------------------------------------------------ success rate

double CollateralGame::success_rate() const {
  return success_rate_cache_.get([this] { return compute_success_rate(); });
}

double CollateralGame::compute_success_rate() const {
  // Eq. (40): integrate Alice's reveal probability over Bob's t2 region.
  if (t2_region_.empty()) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  const double L = t3_cutoff_;
  double sr = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    if (L == 0.0) {
      // Alice always reveals: the inner survival factor is 1.
      sr += law_a.cdf(iv.hi) - law_a.cdf(iv.lo);
      continue;
    }
    sr += math::gauss_legendre(
        [this, &law_a, L](double x) {
          const math::GbmLaw law_b(params_.gbm, x, params_.tau_b);
          return law_a.pdf(x) * law_b.survival(L);
        },
        iv.lo, iv.hi, 48);
  }
  return sr;
}

double CollateralGame::bob_t2_cont_probability() const {
  if (t2_region_.empty()) return 0.0;
  const math::GbmLaw law_a(params_.gbm, params_.p_t0, params_.tau_a);
  double prob = 0.0;
  for (const math::Interval& iv : t2_region_.intervals()) {
    const double lo = std::max(iv.lo, 1e-12);
    if (!(iv.hi > lo)) continue;
    prob += std::isinf(iv.hi) ? law_a.survival(lo)
                              : law_a.cdf(iv.hi) - law_a.cdf(lo);
  }
  return std::min(1.0, std::max(0.0, prob));
}

// ------------------------------------------------------------- free helpers

CollateralViability collateral_viable_rates(const SwapParams& params,
                                            double collateral, double scan_lo,
                                            double scan_hi, int scan_samples) {
  params.validate();
  // Alice's and Bob's gap functions are scanned over the same P* grid, and
  // consecutive evaluations sit close together: share one warm-chained,
  // memoized game per P* so each (P*, Q) is solved exactly once across both
  // scans instead of cold twice.
  std::unordered_map<std::uint64_t, std::shared_ptr<const CollateralGame>>
      memo;
  std::vector<double> last_basic_roots;
  std::vector<double> last_roots;
  const auto game_at = [&](double p_star) {
    std::uint64_t key = 0;
    static_assert(sizeof(key) == sizeof(p_star));
    std::memcpy(&key, &p_star, sizeof(key));
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    auto g = std::make_shared<const CollateralGame>(
        params, p_star, collateral, last_basic_roots, last_roots);
    last_basic_roots = g->basic().t2_roots();
    last_roots = g->t2_roots();
    memo.emplace(key, g);
    return g;
  };
  const auto alice_gap = [&](double p_star) {
    const auto g = game_at(p_star);
    return g->alice_t1_cont() - g->alice_t1_stop();
  };
  const auto bob_gap = [&](double p_star) {
    const auto g = game_at(p_star);
    return g->bob_t1_cont() - g->bob_t1_stop();
  };
  const std::vector<double> a_roots =
      math::find_all_roots(alice_gap, scan_lo, scan_hi, scan_samples);
  const std::vector<double> b_roots =
      math::find_all_roots(bob_gap, scan_lo, scan_hi, scan_samples);

  CollateralViability v;
  v.alice = math::IntervalSet::from_alternating_roots(
      a_roots, scan_lo, scan_hi, alice_gap(scan_lo) > 0.0);
  v.bob = math::IntervalSet::from_alternating_roots(
      b_roots, scan_lo, scan_hi, bob_gap(scan_lo) > 0.0);
  v.both = v.alice.intersect(v.bob);
  return v;
}

}  // namespace swapgame::model
