#include "rational.hpp"

#include <cstdio>
#include <memory>
#include <utility>

namespace swapgame::agents {

namespace {

/// Compact "%.6g" rendering for decision-rule strings (trace annotations,
/// not data: the exact thresholds live in the game objects).
std::string num(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

}  // namespace

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kT1Initiate:
      return "t1:initiate";
    case Stage::kT2Lock:
      return "t2:lock";
    case Stage::kT3Reveal:
      return "t3:reveal";
    case Stage::kT4Claim:
      return "t4:claim";
  }
  return "t?:unknown";
}

RationalStrategy::RationalStrategy(Role role, const model::SwapParams& params,
                                   double p_star)
    : role_(role),
      game_(std::make_shared<const model::BasicGame>(params, p_star)) {}

RationalStrategy::RationalStrategy(Role role,
                                   std::shared_ptr<const model::BasicGame> game)
    : role_(role), game_(std::move(game)) {}

model::Action RationalStrategy::decide(Stage stage, const DecisionContext& ctx) {
  switch (stage) {
    case Stage::kT1Initiate:
      if (role_ == Role::kAlice) return game_->alice_decision_t1();
      return model::Action::kCont;  // Bob has no t1 move in the basic game
    case Stage::kT2Lock:
      if (role_ == Role::kBob) return game_->bob_decision_t2(ctx.price);
      return model::Action::kCont;
    case Stage::kT3Reveal:
      if (role_ == Role::kAlice) return game_->alice_decision_t3(ctx.price);
      return model::Action::kCont;
    case Stage::kT4Claim:
      return game_->bob_decision_t4();  // always cont (dominant)
  }
  return model::Action::kStop;
}

std::string RationalStrategy::decision_rule(Stage stage) const {
  switch (stage) {
    case Stage::kT1Initiate:
      if (role_ != Role::kAlice) return {};
      return "cont iff U_t1(cont)=" + num(game_->alice_t1_cont()) +
             " > P*=" + num(game_->alice_t1_stop());
    case Stage::kT2Lock:
      if (role_ != Role::kBob) return {};
      return "cont iff p in " + game_->bob_t2_region().to_string();
    case Stage::kT3Reveal:
      if (role_ != Role::kAlice) return {};
      return "cont iff p > " + num(game_->alice_t3_cutoff());
    case Stage::kT4Claim:
      return role_ == Role::kBob ? "always cont (dominant)" : std::string();
  }
  return {};
}

CollateralRationalStrategy::CollateralRationalStrategy(
    Role role, const model::SwapParams& params, double p_star,
    double collateral)
    : role_(role),
      game_(std::make_shared<const model::CollateralGame>(params, p_star,
                                                          collateral)) {}

CollateralRationalStrategy::CollateralRationalStrategy(
    Role role, std::shared_ptr<const model::CollateralGame> game)
    : role_(role), game_(std::move(game)) {}

model::Action CollateralRationalStrategy::decide(Stage stage,
                                                 const DecisionContext& ctx) {
  switch (stage) {
    case Stage::kT1Initiate:
      return role_ == Role::kAlice ? game_->alice_decision_t1()
                                   : game_->bob_decision_t1();
    case Stage::kT2Lock:
      if (role_ == Role::kBob) return game_->bob_decision_t2(ctx.price);
      return model::Action::kCont;
    case Stage::kT3Reveal:
      if (role_ == Role::kAlice) return game_->alice_decision_t3(ctx.price);
      return model::Action::kCont;
    case Stage::kT4Claim:
      return model::Action::kCont;
  }
  return model::Action::kStop;
}

std::string CollateralRationalStrategy::decision_rule(Stage stage) const {
  switch (stage) {
    case Stage::kT1Initiate:
      return role_ == Role::kAlice
                 ? "cont iff U_t1(cont)=" + num(game_->alice_t1_cont()) +
                       " > P*+Q=" + num(game_->alice_t1_stop())
                 : "cont iff U_t1(cont)=" + num(game_->bob_t1_cont()) +
                       " > P_t1+Q=" + num(game_->bob_t1_stop());
    case Stage::kT2Lock:
      if (role_ != Role::kBob) return {};
      return "cont iff p in " + game_->bob_t2_region().to_string();
    case Stage::kT3Reveal:
      if (role_ != Role::kAlice) return {};
      return "cont iff p > " + num(game_->alice_t3_cutoff());
    case Stage::kT4Claim:
      return role_ == Role::kBob ? "always cont (dominant)" : std::string();
  }
  return {};
}

PremiumRationalStrategy::PremiumRationalStrategy(Role role,
                                                 const model::SwapParams& params,
                                                 double p_star, double premium)
    : role_(role),
      game_(std::make_shared<const model::PremiumGame>(params, p_star,
                                                       premium)) {}

PremiumRationalStrategy::PremiumRationalStrategy(
    Role role, std::shared_ptr<const model::PremiumGame> game)
    : role_(role), game_(std::move(game)) {}

model::Action PremiumRationalStrategy::decide(Stage stage,
                                              const DecisionContext& ctx) {
  switch (stage) {
    case Stage::kT1Initiate:
      // Only the initiator posts; Bob has no t1 stake in the premium game.
      if (role_ == Role::kAlice) return game_->alice_decision_t1();
      return model::Action::kCont;
    case Stage::kT2Lock:
      if (role_ == Role::kBob) return game_->bob_decision_t2(ctx.price);
      return model::Action::kCont;
    case Stage::kT3Reveal:
      if (role_ == Role::kAlice) return game_->alice_decision_t3(ctx.price);
      return model::Action::kCont;
    case Stage::kT4Claim:
      return model::Action::kCont;
  }
  return model::Action::kStop;
}

std::string PremiumRationalStrategy::decision_rule(Stage stage) const {
  switch (stage) {
    case Stage::kT1Initiate:
      if (role_ != Role::kAlice) return {};
      return "cont iff U_t1(cont)=" + num(game_->alice_t1_cont()) +
             " > P*+pr=" + num(game_->alice_t1_stop());
    case Stage::kT2Lock:
      if (role_ != Role::kBob) return {};
      return "cont iff p in " + game_->bob_t2_region().to_string();
    case Stage::kT3Reveal:
      if (role_ != Role::kAlice) return {};
      return "cont iff p > " + num(game_->alice_t3_cutoff());
    case Stage::kT4Claim:
      return role_ == Role::kBob ? "always cont (dominant)" : std::string();
  }
  return {};
}

CommitmentRationalStrategy::CommitmentRationalStrategy(
    Role role, const model::SwapParams& params, double p_star)
    : role_(role),
      game_(std::make_shared<const model::CommitmentGame>(params, p_star)) {}

CommitmentRationalStrategy::CommitmentRationalStrategy(
    Role role, std::shared_ptr<const model::CommitmentGame> game)
    : role_(role), game_(std::move(game)) {}

model::Action CommitmentRationalStrategy::decide(Stage stage,
                                                 const DecisionContext& ctx) {
  switch (stage) {
    case Stage::kT1Initiate:
      if (role_ == Role::kAlice) return game_->alice_decision_t1();
      return model::Action::kCont;
    case Stage::kT2Lock:
      if (role_ == Role::kBob) return game_->bob_decision_t2(ctx.price);
      return model::Action::kCont;
    case Stage::kT3Reveal:
    case Stage::kT4Claim:
      // Never reached under a witness; answering cont keeps the strategy
      // harmlessly usable with the HTLC driver too.
      return model::Action::kCont;
  }
  return model::Action::kStop;
}

std::string CommitmentRationalStrategy::decision_rule(Stage stage) const {
  switch (stage) {
    case Stage::kT1Initiate:
      if (role_ != Role::kAlice) return {};
      return "cont iff U_t1(cont)=" + num(game_->alice_t1_cont()) +
             " > P*=" + num(game_->alice_t1_stop());
    case Stage::kT2Lock:
      if (role_ != Role::kBob) return {};
      return "cont iff p <= " + num(game_->bob_t2_threshold());
    case Stage::kT3Reveal:
    case Stage::kT4Claim:
      return {};  // never reached under a witness
  }
  return {};
}

}  // namespace swapgame::agents
