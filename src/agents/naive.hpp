// Non-equilibrium reference strategies.
//
// Used by the simulator to exercise every protocol path and by the benches
// to show what the rational thresholds buy: an honest agent against a
// rational counterparty realizes the optionality loss the paper describes
// (Section III-C and Han et al.'s "free American option").
#pragma once

#include <memory>
#include <string>

#include "math/rng.hpp"
#include "strategy.hpp"

namespace swapgame::agents {

/// Always continues: the protocol-faithful "honest" agent.
class HonestStrategy final : public Strategy {
 public:
  [[nodiscard]] model::Action decide(Stage, const DecisionContext&) override {
    return model::Action::kCont;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "honest";
  }
};

/// Continues until (and including) a configured stage, then stops there.
/// DefectorStrategy(Stage::kT3Reveal) aborts the swap at t3, stranding
/// Bob's lock until expiry -- the griefing pattern of Section II-C.
class DefectorStrategy final : public Strategy {
 public:
  explicit DefectorStrategy(Stage defect_at) noexcept : defect_at_(defect_at) {}

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext&) override {
    return stage == defect_at_ ? model::Action::kStop : model::Action::kCont;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "defector";
  }

 private:
  Stage defect_at_;
};

/// Naive price-band rule: continues iff the current price lies within a
/// fixed band around the agreed rate (a heuristic trader unaware of the
/// backward-induction thresholds).
class TriggerStrategy final : public Strategy {
 public:
  /// Continues while price in [p_star * (1 - tolerance), p_star * (1 + tolerance)].
  explicit TriggerStrategy(double tolerance);

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "trigger";
  }

 private:
  double tolerance_;
};

/// Trembling-hand wrapper: plays the inner strategy but flips the decision
/// with probability epsilon (models crash failures / fat fingers; cf.
/// Zakhary et al.'s crash-failure motivation discussed in Section II-C).
class NoisyStrategy final : public Strategy {
 public:
  NoisyStrategy(std::unique_ptr<Strategy> inner, double epsilon,
                std::uint64_t seed);

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "noisy";
  }

 private:
  std::unique_ptr<Strategy> inner_;
  double epsilon_;
  math::Xoshiro256 rng_;
};

}  // namespace swapgame::agents
