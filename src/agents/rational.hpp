// The paper's equilibrium strategies: threshold rules from backward
// induction (Section III-E for the basic game, Section IV for the
// collateralized game).
#pragma once

#include <memory>

#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"
#include "model/commitment_game.hpp"
#include "model/premium_game.hpp"
#include "strategy.hpp"

namespace swapgame::agents {

/// Rational (utility-maximizing) strategy for the basic game: plays the
/// BasicGame thresholds --
///   t1: cont iff U^A_t1(cont) > P*            (Alice only)
///   t2: cont iff P_t2 in (P_t2_lo, P_t2_hi]   (Bob only)
///   t3: cont iff P_t3 > P_t3_lo               (Alice only)
///   t4: always cont                           (Bob only)
/// Decisions at stages not owned by the role are "cont" (they never occur).
class RationalStrategy final : public Strategy {
 public:
  RationalStrategy(Role role, const model::SwapParams& params, double p_star);

  /// Shares an already-solved game: the backward induction runs once and
  /// its thresholds serve every strategy instance (both roles, all
  /// Monte-Carlo samples) instead of once per instance.
  RationalStrategy(Role role, std::shared_ptr<const model::BasicGame> game);

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rational";
  }
  [[nodiscard]] std::string decision_rule(Stage stage) const override;

  [[nodiscard]] const model::BasicGame& game() const noexcept { return *game_; }

 private:
  Role role_;
  std::shared_ptr<const model::BasicGame> game_;
};

/// Rational strategy for the collateralized game (Section IV thresholds;
/// Bob's t2 rule is the odd-root interval set).
class CollateralRationalStrategy final : public Strategy {
 public:
  CollateralRationalStrategy(Role role, const model::SwapParams& params,
                             double p_star, double collateral);

  /// Shares an already-solved game across strategy instances.
  CollateralRationalStrategy(Role role,
                             std::shared_ptr<const model::CollateralGame> game);

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rational-collateral";
  }
  [[nodiscard]] std::string decision_rule(Stage stage) const override;

  [[nodiscard]] const model::CollateralGame& game() const noexcept {
    return *game_;
  }

 private:
  Role role_;
  std::shared_ptr<const model::CollateralGame> game_;
};

/// Rational strategy for the premium game (Han et al. baseline): Alice's
/// t1/t3 thresholds account for her escrowed premium; Bob's t2 rule is the
/// premium game's interval set (he may lock at low prices hoping to
/// harvest the premium).
class PremiumRationalStrategy final : public Strategy {
 public:
  PremiumRationalStrategy(Role role, const model::SwapParams& params,
                          double p_star, double premium);

  /// Shares an already-solved game across strategy instances.
  PremiumRationalStrategy(Role role,
                          std::shared_ptr<const model::PremiumGame> game);

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rational-premium";
  }
  [[nodiscard]] std::string decision_rule(Stage stage) const override;

  [[nodiscard]] const model::PremiumGame& game() const noexcept {
    return *game_;
  }

 private:
  Role role_;
  std::shared_ptr<const model::PremiumGame> game_;
};

/// Rational strategy for the witness-commitment game (AC^3TW): lock
/// decisions only (Stage::kT1Initiate for Alice, Stage::kT2Lock for Bob);
/// post-lock stages never occur under a witness.
class CommitmentRationalStrategy final : public Strategy {
 public:
  CommitmentRationalStrategy(Role role, const model::SwapParams& params,
                             double p_star);

  /// Shares an already-solved game across strategy instances.
  CommitmentRationalStrategy(Role role,
                             std::shared_ptr<const model::CommitmentGame> game);

  [[nodiscard]] model::Action decide(Stage stage,
                                     const DecisionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rational-commitment";
  }
  [[nodiscard]] std::string decision_rule(Stage stage) const override;

  [[nodiscard]] const model::CommitmentGame& game() const noexcept {
    return *game_;
  }

 private:
  Role role_;
  std::shared_ptr<const model::CommitmentGame> game_;
};

}  // namespace swapgame::agents
