// Strategy interface of the swap protocol driver.
//
// The protocol (src/proto) consults a Strategy at each of the paper's four
// decision points: t1 (Alice: initiate?), t2 (Bob: lock?), t3 (Alice:
// reveal?), t4 (Bob: claim?).  Strategies see the current token-b price and
// the agreed rate -- exactly the information set of the paper's game
// (everything else is common knowledge baked into the strategy itself).
#pragma once

#include <string>
#include <string_view>

#include "model/params.hpp"

namespace swapgame::agents {

/// Which decision point is being played (paper Section III-E).
enum class Stage : std::uint8_t {
  kT1Initiate,  ///< Alice: write the HTLC on Chain_a?
  kT2Lock,      ///< Bob: write the HTLC on Chain_b?
  kT3Reveal,    ///< Alice: reveal the secret on Chain_b?
  kT4Claim,     ///< Bob: claim token-a with the observed secret?
};

[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// Which side of the swap an agent plays.
enum class Role : std::uint8_t { kAlice, kBob };

/// The information available to an agent when deciding.
struct DecisionContext {
  double price = 0.0;   ///< current token-b price in token-a
  double p_star = 0.0;  ///< agreed exchange rate
  double now = 0.0;     ///< simulation time (hours since t0)
};

/// An agent's decision rule.  Implementations must be deterministic given
/// their own state (randomized strategies own their RNG).
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Chooses cont or stop at the given stage.
  [[nodiscard]] virtual model::Action decide(Stage stage,
                                             const DecisionContext& ctx) = 0;

  /// Short human-readable name for audit logs and bench output.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Human-readable rendering of the rule this strategy applies at `stage`
  /// (e.g. "cont iff p in [1.2, 3.4)"), used to annotate trace events with
  /// the game-theoretic context of a decision.  Empty when the strategy has
  /// no closed-form rule.  Only invoked on traced runs, so implementations
  /// may format on demand.
  [[nodiscard]] virtual std::string decision_rule(Stage stage) const {
    (void)stage;
    return {};
  }
};

}  // namespace swapgame::agents
