#include "naive.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace swapgame::agents {

TriggerStrategy::TriggerStrategy(double tolerance) : tolerance_(tolerance) {
  if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
    throw std::invalid_argument("TriggerStrategy: tolerance must be >= 0");
  }
}

model::Action TriggerStrategy::decide(Stage stage, const DecisionContext& ctx) {
  if (stage == Stage::kT4Claim) return model::Action::kCont;  // dominant
  const double lo = ctx.p_star * (1.0 - tolerance_);
  const double hi = ctx.p_star * (1.0 + tolerance_);
  return (ctx.price >= lo && ctx.price <= hi) ? model::Action::kCont
                                              : model::Action::kStop;
}

NoisyStrategy::NoisyStrategy(std::unique_ptr<Strategy> inner, double epsilon,
                             std::uint64_t seed)
    : inner_(std::move(inner)), epsilon_(epsilon), rng_(seed) {
  if (!inner_) {
    throw std::invalid_argument("NoisyStrategy: inner strategy required");
  }
  if (!(epsilon >= 0.0 && epsilon <= 1.0)) {
    throw std::invalid_argument("NoisyStrategy: epsilon must be in [0, 1]");
  }
}

model::Action NoisyStrategy::decide(Stage stage, const DecisionContext& ctx) {
  const model::Action intended = inner_->decide(stage, ctx);
  if (math::uniform01(rng_) < epsilon_) {
    return intended == model::Action::kCont ? model::Action::kStop
                                            : model::Action::kCont;
  }
  return intended;
}

}  // namespace swapgame::agents
