#include "protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace swapgame::service {

namespace {

Status errno_status(std::string_view what) {
  return Status::unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

Status fill_addr(const std::string& path, sockaddr_un* addr) {
  if (path.empty()) {
    return Status::unavailable("socket path is empty");
  }
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::unavailable("socket path too long for AF_UNIX: '" + path +
                               "'");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::ok();
}

}  // namespace

Status listen_unix(const std::string& path, int backlog, int* out_fd) {
  sockaddr_un addr{};
  Status status = fill_addr(path, &addr);
  if (!status.is_ok()) return status;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  // A stale socket file from a killed daemon would make bind() fail;
  // a LIVE daemon on the same path loses its file but keeps serving its
  // existing connections -- last binder wins, like any pid-file-less
  // daemon.  Callers wanting exclusion should pick unique paths.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status err = errno_status("bind '" + path + "'");
    ::close(fd);
    return err;
  }
  if (::listen(fd, backlog) < 0) {
    const Status err = errno_status("listen '" + path + "'");
    ::close(fd);
    return err;
  }
  *out_fd = fd;
  return Status::ok();
}

Status connect_unix(const std::string& path, int* out_fd) {
  sockaddr_un addr{};
  Status status = fill_addr(path, &addr);
  if (!status.is_ok()) return status;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status err = errno_status("connect '" + path + "'");
    ::close(fd);
    return err;
  }
  *out_fd = fd;
  return Status::ok();
}

void LineSocket::adopt(int fd) {
  close();
  fd_ = fd;
  buffer_.clear();
}

void LineSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void LineSocket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status LineSocket::write_line(std::string_view line) {
  if (fd_ < 0) return Status::unavailable("socket is closed");
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');

  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer is a Status, not a SIGPIPE.
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status LineSocket::read_line(std::string* line, bool* eof) {
  line->clear();
  *eof = false;
  if (fd_ < 0) return Status::unavailable("socket is closed");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::ok();
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    if (n == 0) {
      if (!buffer_.empty()) {
        return Status::unavailable("connection closed mid-line");
      }
      *eof = true;
      return Status::ok();
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace swapgame::service
