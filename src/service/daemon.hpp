// swapgamed: a long-running batch-engine server.
//
// One daemon owns one engine::BatchEngine (and through it one content-
// addressed ResultCache, optionally disk-backed), accepts RunSpec DAG
// jobs from any number of local clients over an AF_UNIX socket
// (protocol.hpp), and schedules their cells on a private
// sweep::ThreadPool.  Because every client's cells resolve through the
// SAME cache, a spec any client has ever evaluated is served from storage
// for every later client -- the cache is the shared resource the daemon
// exists to keep warm.
//
// Scheduling: the daemon runs its own dispatcher instead of handing whole
// jobs to BatchEngine::run_batch, for two reasons.  First, admission
// control -- a job is accepted only if its cells fit under the queued-cell
// bound, so a flood of submissions gets a structured kAdmissionRejected
// backpressure response instead of unbounded queue growth.  Second,
// fairness -- ready cells are dispatched round-robin across CLIENTS (cell
// granularity), so one client's thousand-cell sweep cannot starve another
// client's two-cell probe.  Each dispatched cell is one
// BatchEngine::run(spec, &source) call on a pool worker: the engine
// resolves it through its cache tiers and reports the provenance the
// daemon streams back in the cell event.
//
// Threading model: one accept thread, one reader thread per connection,
// one dispatcher thread, `threads` pool workers.  Event writes to a
// connection are serialized by a per-connection mutex; the `done` event is
// written by whichever worker completes a job's last cell, strictly after
// that cell's own event.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch_engine.hpp"
#include "status.hpp"
#include "sweep/thread_pool.hpp"

namespace swapgame::service {

struct ServiceConfig {
  /// AF_UNIX socket path the daemon listens on.
  std::string socket_path;
  /// Evaluation workers (0 = hardware concurrency).
  unsigned threads = 0;
  /// In-memory result-cache capacity in entries (0 disables the LRU).
  std::size_t memory_capacity = 4096;
  /// On-disk cache directory shared across restarts and with offline
  /// BatchEngine users ("" disables the disk tier).
  std::string cache_dir;
  /// Max cells being evaluated at once (0 = worker count).
  std::size_t max_inflight_cells = 0;
  /// Admission bound: max admitted-but-unfinished cells across all
  /// clients.  A submit that would exceed it is rejected with
  /// kAdmissionRejected (0 = unbounded).
  std::size_t max_queued_cells = 4096;
  /// Max simultaneous client connections; further connects get an error
  /// event and are closed (0 = unbounded).
  std::size_t max_clients = 64;
};

/// Monotone daemon telemetry (lifetime of the daemon instance).
struct DaemonStats {
  std::uint64_t connections_total = 0;  ///< connections accepted
  std::uint64_t connections_rejected = 0;  ///< turned away (max_clients)
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_rejected = 0;  ///< admission / shutdown rejections
  std::uint64_t cells_completed = 0;
  std::uint64_t cells_cached = 0;  ///< completed cells served from storage
  std::uint64_t cells_failed = 0;  ///< completed cells whose eval threw
  std::uint64_t protocol_errors = 0;
};

class Daemon {
 public:
  explicit Daemon(ServiceConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and starts the accept/dispatch machinery.  Fails
  /// (kUnavailable) if the path is unusable or the daemon already runs.
  [[nodiscard]] Status start();

  /// Blocks until a client's shutdown request (or stop()) arrives.  The
  /// swapgamed main thread parks here.
  void wait();

  /// Stops accepting work, drains in-flight cells, joins every thread and
  /// removes the socket file.  Idempotent; implied by the destructor.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }
  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] engine::EngineStats engine_stats() const;

 private:
  struct Connection;
  struct Job;

  void accept_loop();
  void dispatch_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void run_cell(std::shared_ptr<Job> job, std::size_t index);

  void handle_submit(const std::shared_ptr<Connection>& conn,
                     std::uint64_t request_id,
                     const obs::json::Value& root);
  void handle_disconnect(const std::shared_ptr<Connection>& conn);
  void request_stop();

  /// Serialized write of one event line; errors are dropped (the peer is
  /// gone, its reader thread will notice).
  void send_line(const std::shared_ptr<Connection>& conn,
                 const std::string& line);
  void send_error(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id, const Status& status);
  [[nodiscard]] std::string render_stats_locked(std::uint64_t request_id);

  /// Queues `job` (which must have ready cells) for round-robin dispatch.
  void enqueue_ready_locked(const std::shared_ptr<Job>& job);

  ServiceConfig config_;
  std::unique_ptr<engine::BatchEngine> engine_;  ///< serial, pool-driven
  std::unique_ptr<sweep::ThreadPool> pool_;
  std::size_t max_inflight_ = 1;  ///< resolved from config in start()
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread dispatch_thread_;

  mutable std::mutex mutex_;  ///< guards all mutable state below
  std::condition_variable dispatch_cv_;
  std::condition_variable stop_cv_;
  bool started_ = false;
  bool stopping_ = false;        ///< no new connections/jobs admitted
  bool stop_requested_ = false;  ///< wakes wait()
  std::vector<std::shared_ptr<Connection>> connections_;
  std::size_t open_connections_ = 0;
  std::uint64_t next_client_id_ = 1;
  std::uint64_t next_job_id_ = 1;
  /// Round-robin dispatch order: connections with ready cells, each
  /// present at most once.
  std::deque<std::shared_ptr<Connection>> rr_queue_;
  std::size_t queued_cells_ = 0;    ///< admitted, not yet finished
  std::size_t inflight_cells_ = 0;  ///< currently on the pool
  DaemonStats stats_;
};

}  // namespace swapgame::service
