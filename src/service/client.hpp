// Synchronous client for the swapgamed wire protocol (protocol.hpp,
// docs/SERVICE.md).  One Client wraps one connection; submit() blocks
// until the job's `done` event, surfacing per-cell progress through an
// optional callback.  Every entry point returns swapgame::Status -- the
// client never throws for peer-visible failures, and the codes mirror
// what the daemon rejected with (kAdmissionRejected, kInvalidSpec, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/batch_engine.hpp"
#include "protocol.hpp"
#include "status.hpp"

namespace swapgame::service {

class Client {
 public:
  /// Progress report for one finished cell, fired in completion order
  /// (NOT node order) from inside submit().
  struct CellUpdate {
    std::size_t index = 0;      ///< node index within the job
    bool cached = false;        ///< served from the shared cache
    std::string source;         ///< "evaluated"/"memory"/"disk"/...
    Status status;              ///< per-cell evaluation status
  };
  using ProgressFn = std::function<void(const CellUpdate&)>;

  /// Everything a completed job reports, in node order.
  struct SubmitOutcome {
    std::uint64_t job_id = 0;
    std::vector<engine::RunResult> results;  ///< node order
    std::vector<bool> cached;                ///< per-cell provenance
    std::vector<Status> cell_status;         ///< per-cell status
    std::size_t cells = 0;
    std::size_t cached_cells = 0;
    std::size_t failed_cells = 0;
  };

  Client() = default;
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and consumes the daemon's hello, verifying both the wire
  /// protocol version and the RunSpec schema version -- version skew is a
  /// kUnsupportedVersion here, before any work is submitted.
  [[nodiscard]] Status connect(const std::string& socket_path);
  void close() { socket_.close(); }
  [[nodiscard]] bool connected() const noexcept { return socket_.valid(); }

  /// Submits one DAG job and blocks until it finishes.  On acceptance,
  /// `outcome` is filled in node order; if any cell failed, the FIRST
  /// failing cell's status is returned (outcome still carries every other
  /// result).  A rejection (admission, invalid spec, shutdown) comes back
  /// as the daemon's status, with nothing run.
  [[nodiscard]] Status submit(const std::vector<engine::BatchNode>& nodes,
                              SubmitOutcome* outcome,
                              const ProgressFn& progress = nullptr);

  /// Liveness probe.
  [[nodiscard]] Status ping();
  /// Fetches the daemon's stats event; *stats_json receives the raw
  /// single-line JSON (daemon + engine counters).
  [[nodiscard]] Status server_stats(std::string* stats_json);
  /// Asks the daemon to shut down; resolves once `bye` arrives.
  [[nodiscard]] Status shutdown_server();

 private:
  /// Reads events until one of `terminal` arrives (cell events en route
  /// are dispatched to `on_cell`); error events and transport failures
  /// come back as the Status.  `raw_line` (optional) receives the
  /// terminal event's verbatim line.
  [[nodiscard]] Status await_event(
      const std::vector<std::string_view>& terminal, std::string* event,
      obs::json::Value* payload, std::string* raw_line,
      const std::function<Status(const obs::json::Value&)>& on_cell = {});

  LineSocket socket_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace swapgame::service
