// swapgamed wire protocol, version 1 (docs/SERVICE.md).
//
// Transport: an AF_UNIX stream socket carrying newline-delimited JSON --
// one object per line, no embedded newlines (every writer in this repo
// emits single-line JSON).  Both directions carry a `"proto":1` envelope
// field; the daemon greets each connection with a `hello` event that also
// names the RunSpec schema version it speaks, so version skew is caught
// at connect time, before any work is submitted.
//
// Requests (client -> daemon), all `{"proto":1,"op":...,"id":<u64>}`:
//   ping                      liveness probe
//   stats                     daemon + engine counters
//   shutdown                  ask the daemon to stop (answered with `bye`)
//   submit                    + "cells":[<RunSpec JSON>...] and optional
//                             "deps":[[indices]...] -- one DAG job
//
// Events (daemon -> client), all `{"proto":1,"event":...}`:
//   hello                     connection greeting (server, spec_version)
//   pong / stats / bye        direct answers, echoing the request id
//   accepted                  job admitted: job id + cell count
//   rejected                  job turned away: status code + message
//   cell                      one finished cell: index, provenance
//                             ("source"/"cached"), and either the result
//                             entry object or a per-cell error code
//   done                      job finished: cells / cached / failed
//   error                     protocol-level failure (bad line, bad op)
//
// Status codes cross the wire as their swapgame::to_string(StatusCode)
// tokens.  This header also provides the shared line-oriented socket
// wrapper both ends sit on; everything here returns Status -- the
// transport never throws.
#pragma once

#include <string>
#include <string_view>

#include "status.hpp"

namespace swapgame::service {

/// Version of the request/event envelope.  Independent of the RunSpec
/// schema version (engine::kRunSpecSchemaVersion), which rides inside the
/// hello event and every spec/result payload.
inline constexpr int kProtocolVersion = 1;

/// Wire tokens, kept in one place so daemon and client cannot drift.
namespace wire {
inline constexpr std::string_view kOpPing = "ping";
inline constexpr std::string_view kOpStats = "stats";
inline constexpr std::string_view kOpShutdown = "shutdown";
inline constexpr std::string_view kOpSubmit = "submit";

inline constexpr std::string_view kEvHello = "hello";
inline constexpr std::string_view kEvPong = "pong";
inline constexpr std::string_view kEvStats = "stats";
inline constexpr std::string_view kEvBye = "bye";
inline constexpr std::string_view kEvAccepted = "accepted";
inline constexpr std::string_view kEvRejected = "rejected";
inline constexpr std::string_view kEvCell = "cell";
inline constexpr std::string_view kEvDone = "done";
inline constexpr std::string_view kEvError = "error";
}  // namespace wire

/// Creates, binds and listens on an AF_UNIX stream socket at `path`
/// (unlinking any stale socket file first).  On success *out_fd owns the
/// listening descriptor.
[[nodiscard]] Status listen_unix(const std::string& path, int backlog,
                                 int* out_fd);

/// Connects to the AF_UNIX stream socket at `path`.
[[nodiscard]] Status connect_unix(const std::string& path, int* out_fd);

/// Buffered newline-delimited IO over one connected socket.  Reads and
/// writes are independently usable from different threads, but each
/// direction needs external serialization (the daemon holds a per-
/// connection write mutex; the client is synchronous).
class LineSocket {
 public:
  LineSocket() = default;
  explicit LineSocket(int fd) : fd_(fd) {}
  ~LineSocket() { close(); }

  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  /// Takes ownership of `fd`, closing any previous descriptor.
  void adopt(int fd);
  void close();
  /// Half-closes both directions without releasing the descriptor --
  /// unblocks a reader stuck in read_line() from another thread (the
  /// shutdown path), after which read_line reports EOF.
  void shutdown_both() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes `line` plus a trailing '\n', looping over partial writes.
  /// `line` must not contain '\n'.  A peer that disappeared yields
  /// kUnavailable (never SIGPIPE).
  [[nodiscard]] Status write_line(std::string_view line);

  /// Reads the next '\n'-terminated line (terminator stripped).  Clean
  /// EOF sets *eof and returns OK with an empty line; a mid-line EOF or
  /// transport error returns kUnavailable.
  [[nodiscard]] Status read_line(std::string* line, bool* eof);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received but not yet returned
};

}  // namespace swapgame::service
