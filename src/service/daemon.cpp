#include "daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "protocol.hpp"

namespace swapgame::service {

namespace {

using obs::json::Value;

std::string event_head(std::string_view event, std::uint64_t request_id) {
  std::string out = "{\"proto\":";
  out += std::to_string(kProtocolVersion);
  out += ",\"event\":\"";
  out += event;
  out += "\",\"id\":";
  out += std::to_string(request_id);
  return out;
}

std::string render_hello() {
  std::string out = "{\"proto\":";
  out += std::to_string(kProtocolVersion);
  out += ",\"event\":\"";
  out += wire::kEvHello;
  out += "\",\"server\":\"swapgamed\",\"spec_version\":";
  out += std::to_string(engine::kRunSpecSchemaVersion);
  out += '}';
  return out;
}

/// rejected/error payload: the Status rendered as code token + message.
std::string render_status_event(std::string_view event,
                                std::uint64_t request_id,
                                const Status& status) {
  std::string out = event_head(event, request_id);
  out += ",\"code\":\"";
  out += to_string(status.code());
  out += "\",\"message\":\"";
  obs::append_json_escaped(out, status.message());
  out += "\"}";
  return out;
}

void append_counter(std::string& out, std::string_view key,
                    std::uint64_t value, bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

/// Reads an optional unsigned envelope field; false on a wrong type.
bool read_u64_field(const Value& root, std::string_view key,
                    std::uint64_t* out) {
  const Value* field = root.find(key);
  if (field == nullptr) return true;
  if (!field->is_number()) return false;
  try {
    *out = field->as_u64();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

/// One connected client.  Lifetime: created by the accept loop, kept
/// alive by connections_ plus any in-flight Job referencing it; the
/// socket dies with the last reference.
struct Daemon::Connection {
  std::uint64_t client_id = 0;
  LineSocket socket;
  std::mutex write_mutex;  ///< serializes event lines onto the socket
  std::thread reader;
  // Everything below is guarded by Daemon::mutex_.
  bool closed = false;  ///< reader finished; safe to reap/join
  bool in_rr = false;   ///< present in Daemon::rr_queue_
  std::vector<std::shared_ptr<Job>> jobs;      ///< active (unfinished)
  std::deque<std::shared_ptr<Job>> ready_jobs;  ///< jobs with ready cells
};

/// One admitted submit request.  All fields below `nodes` are guarded by
/// Daemon::mutex_.
struct Daemon::Job {
  std::shared_ptr<Connection> conn;
  std::uint64_t request_id = 0;
  std::uint64_t job_id = 0;
  std::vector<engine::BatchNode> nodes;
  std::vector<std::vector<std::size_t>> dependents;
  std::vector<std::size_t> remaining;  ///< unmet dependency counts
  std::deque<std::size_t> ready;       ///< dispatchable cell indices
  bool in_ready_queue = false;         ///< present in conn->ready_jobs
  bool cancelled = false;              ///< client went away
  std::size_t completed = 0;
  std::size_t cached = 0;
  std::size_t failed = 0;
  std::size_t inflight = 0;
};

Daemon::Daemon(ServiceConfig config) : config_(std::move(config)) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return Status::unavailable("daemon already started");
  }

  // The engine runs in serial mode: the DAEMON owns the parallelism (its
  // dispatcher + pool), each dispatched cell is one inline
  // engine_->run(spec, &source) on a pool worker resolving through the
  // shared cache tiers.
  engine::EngineConfig engine_config;
  engine_config.threads = 1;
  engine_config.memory_capacity = config_.memory_capacity;
  engine_config.cache_dir = config_.cache_dir;
  engine_ = std::make_unique<engine::BatchEngine>(engine_config);

  const unsigned requested = config_.threads != 0
                                 ? config_.threads
                                 : std::thread::hardware_concurrency();
  pool_ = std::make_unique<sweep::ThreadPool>(requested == 0 ? 1 : requested);
  max_inflight_ = config_.max_inflight_cells != 0 ? config_.max_inflight_cells
                                                  : pool_->size();

  Status status = listen_unix(config_.socket_path, 64, &listen_fd_);
  if (!status.is_ok()) {
    pool_.reset();
    engine_.reset();
    return status;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
    stopping_ = false;
    stop_requested_ = false;
  }
  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  dispatch_thread_ = std::thread(&Daemon::dispatch_loop, this);
  return Status::ok();
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_ || !started_; });
}

void Daemon::request_stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = true;
  stop_requested_ = true;
  stop_cv_.notify_all();
  dispatch_cv_.notify_all();
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
    stop_requested_ = true;
    stop_cv_.notify_all();
    dispatch_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every reader stuck in read_line(), then join them.  The
  // accept thread is gone, so connections_ is ours to drain.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      conn->socket.shutdown_both();
    }
    conns.swap(connections_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  // The dispatcher exits only once inflight_cells_ hit zero, so the pool
  // is idle; destroy it before anything it might reference.
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
  stop_cv_.notify_all();
}

bool Daemon::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return started_ && !stopping_;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

engine::EngineStats Daemon::engine_stats() const {
  return engine_ != nullptr ? engine_->stats() : engine::EngineStats{};
}

// ---- accept side ------------------------------------------------------

void Daemon::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    // poll with a timeout instead of a blocking accept: shutdown() on a
    // LISTENING socket is not portable, so stop() is observed here.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    // Reap connections whose reader finished (client went away) so a
    // long-lived daemon does not accumulate dead threads.
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->closed) {
          dead.push_back(*it);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const std::shared_ptr<Connection>& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
    }
    if (ready == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    auto conn = std::make_shared<Connection>();
    conn->socket.adopt(fd);

    Status admission = Status::ok();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        admission = Status::shutting_down("daemon is shutting down");
      } else if (config_.max_clients != 0 &&
                 open_connections_ >= config_.max_clients) {
        admission = Status::unavailable(
            "too many clients (" + std::to_string(open_connections_) +
            " connected, limit " + std::to_string(config_.max_clients) + ")");
      } else {
        conn->client_id = next_client_id_++;
        ++open_connections_;
        ++stats_.connections_total;
        connections_.push_back(conn);
      }
      if (!admission.is_ok()) ++stats_.connections_rejected;
    }
    if (!admission.is_ok()) {
      (void)conn->socket.write_line(
          render_status_event(wire::kEvError, 0, admission));
      continue;  // conn drops here, closing the socket
    }
    (void)conn->socket.write_line(render_hello());
    conn->reader = std::thread(&Daemon::reader_loop, this, conn);
  }
}

void Daemon::reader_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string line;
    bool eof = false;
    const Status status = conn->socket.read_line(&line, &eof);
    if (!status.is_ok() || eof) break;
    if (line.empty()) continue;

    Value root;
    const Status parsed = obs::json::parse(line, root);
    if (!parsed.is_ok()) {
      send_error(conn, 0, Status::protocol_error(parsed.message()));
      continue;
    }
    if (!root.is_object()) {
      send_error(conn, 0,
                 Status::protocol_error("request is not a JSON object"));
      continue;
    }
    const Value* proto = root.find("proto");
    if (proto == nullptr || !proto->is_number() ||
        proto->as_number() != static_cast<double>(kProtocolVersion)) {
      send_error(conn, 0,
                 Status::unsupported_version(
                     "request protocol version " +
                     (proto != nullptr && proto->is_number()
                          ? proto->raw_number()
                          : std::string("?")) +
                     ", this daemon speaks v" +
                     std::to_string(kProtocolVersion)));
      continue;
    }
    std::uint64_t request_id = 0;
    if (!read_u64_field(root, "id", &request_id)) {
      send_error(conn, 0,
                 Status::protocol_error("'id' must be an unsigned integer"));
      continue;
    }
    const Value* op = root.find("op");
    if (op == nullptr || !op->is_string()) {
      send_error(conn, request_id,
                 Status::protocol_error("missing string key 'op'"));
      continue;
    }

    if (op->as_string() == wire::kOpPing) {
      send_line(conn, event_head(wire::kEvPong, request_id) + "}");
    } else if (op->as_string() == wire::kOpStats) {
      std::string stats_line;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_line = render_stats_locked(request_id);
      }
      send_line(conn, stats_line);
    } else if (op->as_string() == wire::kOpShutdown) {
      send_line(conn, event_head(wire::kEvBye, request_id) + "}");
      request_stop();
    } else if (op->as_string() == wire::kOpSubmit) {
      handle_submit(conn, request_id, root);
    } else {
      send_error(conn, request_id,
                 Status::protocol_error("unknown op '" + op->as_string() +
                                        "'"));
    }
  }
  handle_disconnect(conn);
  std::lock_guard<std::mutex> lock(mutex_);
  conn->closed = true;  // reapable from here on
}

void Daemon::handle_submit(const std::shared_ptr<Connection>& conn,
                           std::uint64_t request_id, const Value& root) {
  const auto reject = [&](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.jobs_rejected;
    }
    send_line(conn, render_status_event(wire::kEvRejected, request_id,
                                        status));
  };

  for (const obs::json::Member& member : root.as_object()) {
    if (member.first != "proto" && member.first != "op" &&
        member.first != "id" && member.first != "cells" &&
        member.first != "deps") {
      reject(Status::protocol_error("unknown request key '" + member.first +
                                    "'"));
      return;
    }
  }

  const Value* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array() || cells->as_array().empty()) {
    reject(Status::invalid_spec("submit requires a non-empty 'cells' array"));
    return;
  }
  const std::size_t n = cells->as_array().size();
  auto job = std::make_shared<Job>();
  job->conn = conn;
  job->request_id = request_id;
  job->nodes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Status status = engine::RunSpec::from_json(cells->as_array()[i],
                                                     &job->nodes[i].spec);
    if (!status.is_ok()) {
      // Preserve the codec's code (invalid_spec vs unsupported_version),
      // prefix the failing cell.
      reject(Status::from_token(to_string(status.code()),
                                "cell " + std::to_string(i) + ": " +
                                    status.message()));
      return;
    }
  }
  if (const Value* deps = root.find("deps")) {
    if (!deps->is_array() || deps->as_array().size() != n) {
      reject(Status::invalid_spec(
          "'deps' must be an array with one entry per cell"));
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Value& entry = deps->as_array()[i];
      if (!entry.is_array()) {
        reject(Status::invalid_spec("deps entry " + std::to_string(i) +
                                    " is not an array"));
        return;
      }
      for (const Value& dep : entry.as_array()) {
        std::uint64_t d = 0;
        if (!dep.is_number()) {
          reject(Status::invalid_spec("deps entry " + std::to_string(i) +
                                      ": dependency is not an index"));
          return;
        }
        try {
          d = dep.as_u64();
        } catch (const std::exception&) {
          reject(Status::invalid_spec("deps entry " + std::to_string(i) +
                                      ": dependency is not an index"));
          return;
        }
        if (d >= n) {
          reject(Status::invalid_spec(
              "cell " + std::to_string(i) + ": dependency " +
              std::to_string(d) + " out of range (job has " +
              std::to_string(n) + " cells)"));
          return;
        }
        job->nodes[i].deps.push_back(static_cast<std::size_t>(d));
      }
    }
  }

  // Kahn: indegrees + dependents, and a cycle check before admission.
  job->remaining.assign(n, 0);
  job->dependents.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    job->remaining[i] = job->nodes[i].deps.size();
    for (const std::size_t d : job->nodes[i].deps) {
      job->dependents[d].push_back(i);
    }
  }
  {
    std::vector<std::size_t> degree = job->remaining;
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (degree[i] == 0) order.push_back(i);
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (const std::size_t d : job->dependents[order[head]]) {
        if (--degree[d] == 0) order.push_back(d);
      }
    }
    if (order.size() != n) {
      reject(Status::invalid_spec("dependency cycle"));
      return;
    }
  }

  // Admission: reserve the job's cells under the queued-cell bound (or
  // turn the whole job away -- jobs are admitted atomically).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ++stats_.jobs_rejected;
      send_line(conn,
                render_status_event(
                    wire::kEvRejected, request_id,
                    Status::shutting_down("daemon is shutting down")));
      return;
    }
    if (config_.max_queued_cells != 0 &&
        queued_cells_ + n > config_.max_queued_cells) {
      ++stats_.jobs_rejected;
      send_line(conn,
                render_status_event(
                    wire::kEvRejected, request_id,
                    Status::admission_rejected(
                        "admitting " + std::to_string(n) +
                        " cells would exceed the queued-cell bound (" +
                        std::to_string(queued_cells_) + " of " +
                        std::to_string(config_.max_queued_cells) +
                        " in flight); retry after draining")));
      return;
    }
    job->job_id = next_job_id_++;
    queued_cells_ += n;
    ++stats_.jobs_accepted;
    conn->jobs.push_back(job);
    for (std::size_t i = 0; i < n; ++i) {
      if (job->remaining[i] == 0) job->ready.push_back(i);
    }
  }

  // `accepted` must precede every cell event, so the job is made visible
  // to the dispatcher only after the acceptance line is on the socket.
  {
    std::string accepted = event_head(wire::kEvAccepted, request_id);
    accepted += ",\"job\":";
    accepted += std::to_string(job->job_id);
    accepted += ",\"cells\":";
    accepted += std::to_string(n);
    accepted += '}';
    send_line(conn, accepted);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enqueue_ready_locked(job);
    dispatch_cv_.notify_all();
  }
}

void Daemon::handle_disconnect(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  --open_connections_;
  // Cancel this client's jobs: cells never dispatched leave the admission
  // count now; in-flight cells leave it one by one as they finish.
  for (const std::shared_ptr<Job>& job : conn->jobs) {
    if (job->cancelled) continue;
    job->cancelled = true;
    queued_cells_ -=
        job->nodes.size() - job->completed - job->inflight;
    job->ready.clear();
  }
  for (const std::shared_ptr<Job>& job : conn->ready_jobs) {
    job->in_ready_queue = false;
  }
  conn->ready_jobs.clear();
  conn->jobs.clear();
  dispatch_cv_.notify_all();
}

// ---- dispatch side ----------------------------------------------------

void Daemon::enqueue_ready_locked(const std::shared_ptr<Job>& job) {
  if (job->cancelled || job->ready.empty() || job->in_ready_queue) return;
  job->in_ready_queue = true;
  job->conn->ready_jobs.push_back(job);
  if (!job->conn->in_rr) {
    job->conn->in_rr = true;
    rr_queue_.push_back(job->conn);
  }
}

void Daemon::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_ && inflight_cells_ == 0) return;

    bool dispatched = false;
    while (!stopping_ && inflight_cells_ < max_inflight_ &&
           !rr_queue_.empty()) {
      // One cell from the next client in round-robin order; the client
      // (and, within it, the job) goes to the back of its queue, so no
      // client -- however many cells it has queued -- can starve another.
      std::shared_ptr<Connection> conn = rr_queue_.front();
      rr_queue_.pop_front();
      conn->in_rr = false;
      while (!conn->ready_jobs.empty() &&
             (conn->ready_jobs.front()->cancelled ||
              conn->ready_jobs.front()->ready.empty())) {
        conn->ready_jobs.front()->in_ready_queue = false;
        conn->ready_jobs.pop_front();
      }
      if (conn->ready_jobs.empty()) continue;  // stale entry; next client

      std::shared_ptr<Job> job = conn->ready_jobs.front();
      conn->ready_jobs.pop_front();
      job->in_ready_queue = false;
      const std::size_t index = job->ready.front();
      job->ready.pop_front();
      if (!job->ready.empty()) {
        job->in_ready_queue = true;
        conn->ready_jobs.push_back(job);
      }
      if (!conn->ready_jobs.empty()) {
        conn->in_rr = true;
        rr_queue_.push_back(conn);
      }
      ++job->inflight;
      ++inflight_cells_;
      lock.unlock();
      pool_->submit([this, job, index] { run_cell(job, index); });
      lock.lock();
      dispatched = true;
    }
    if (!dispatched) dispatch_cv_.wait(lock);
  }
}

void Daemon::run_cell(std::shared_ptr<Job> job, std::size_t index) {
  const engine::RunSpec& spec = job->nodes[index].spec;
  engine::CellSource source = engine::CellSource::kEvaluated;
  engine::RunResult result;
  Status cell_status = Status::ok();
  try {
    result = engine_->run(spec, &source);
    if (!result.complete) {
      cell_status = Status::unavailable("cell evaluation budget exhausted");
    }
  } catch (const std::exception& e) {
    // The exception boundary: evaluator validation/invariant failures
    // become a per-cell Status; the job (and daemon) keep going.
    cell_status = Status::internal(e.what());
  } catch (...) {
    cell_status = Status::internal("unknown evaluation failure");
  }
  const bool cached = cell_status.is_ok() && engine::is_cached(source);

  bool deliver = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deliver = !job->cancelled;
  }
  if (deliver) {
    std::string line = event_head(wire::kEvCell, job->request_id);
    line += ",\"job\":";
    line += std::to_string(job->job_id);
    line += ",\"index\":";
    line += std::to_string(index);
    line += ",\"source\":\"";
    line += engine::to_string(source);
    line += "\",\"cached\":";
    line += cached ? '1' : '0';
    if (cell_status.is_ok()) {
      line += ",\"result\":";
      line += result.to_entry(spec.hash());
    } else {
      line += ",\"code\":\"";
      line += to_string(cell_status.code());
      line += "\",\"message\":\"";
      obs::append_json_escaped(line, cell_status.message());
      line += '"';
    }
    line += '}';
    send_line(job->conn, line);
  }

  bool done = false;
  std::string done_line;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --job->inflight;
    --inflight_cells_;
    --queued_cells_;
    ++job->completed;
    ++stats_.cells_completed;
    if (cached) {
      ++stats_.cells_cached;
      ++job->cached;
    }
    if (!cell_status.is_ok()) {
      ++stats_.cells_failed;
      ++job->failed;
    }
    if (!job->cancelled) {
      for (const std::size_t d : job->dependents[index]) {
        if (--job->remaining[d] == 0) job->ready.push_back(d);
      }
      enqueue_ready_locked(job);
      done = job->completed == job->nodes.size();
      if (done) {
        auto& jobs = job->conn->jobs;
        for (auto it = jobs.begin(); it != jobs.end(); ++it) {
          if (it->get() == job.get()) {
            jobs.erase(it);
            break;
          }
        }
        done_line = event_head(wire::kEvDone, job->request_id);
        done_line += ",\"job\":";
        done_line += std::to_string(job->job_id);
        done_line += ",\"cells\":";
        done_line += std::to_string(job->nodes.size());
        done_line += ",\"cached\":";
        done_line += std::to_string(job->cached);
        done_line += ",\"failed\":";
        done_line += std::to_string(job->failed);
        done_line += '}';
      }
    }
    dispatch_cv_.notify_all();
  }
  // Writing `done` outside the lock is safe for ordering: every other
  // cell's event write happened-before its bookkeeping above, which
  // happened-before this thread observed completed == n.
  if (done) send_line(job->conn, done_line);
}

// ---- event plumbing ---------------------------------------------------

void Daemon::send_line(const std::shared_ptr<Connection>& conn,
                       const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  (void)conn->socket.write_line(line);
}

void Daemon::send_error(const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, const Status& status) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.protocol_errors;
  }
  send_line(conn, render_status_event(wire::kEvError, request_id, status));
}

std::string Daemon::render_stats_locked(std::uint64_t request_id) {
  std::string out = event_head(wire::kEvStats, request_id);
  out += ",\"daemon\":{";
  append_counter(out, "connections_total", stats_.connections_total, true);
  append_counter(out, "connections_open", open_connections_);
  append_counter(out, "connections_rejected", stats_.connections_rejected);
  append_counter(out, "jobs_accepted", stats_.jobs_accepted);
  append_counter(out, "jobs_rejected", stats_.jobs_rejected);
  append_counter(out, "cells_completed", stats_.cells_completed);
  append_counter(out, "cells_cached", stats_.cells_cached);
  append_counter(out, "cells_failed", stats_.cells_failed);
  append_counter(out, "protocol_errors", stats_.protocol_errors);
  append_counter(out, "queued_cells", queued_cells_);
  append_counter(out, "inflight_cells", inflight_cells_);
  out += "},\"engine\":{";
  const engine::EngineStats es = engine_->stats();
  append_counter(out, "cells_total", es.cells_total, true);
  append_counter(out, "cells_run", es.cells_run);
  append_counter(out, "memory_hits", es.memory_hits);
  append_counter(out, "disk_hits", es.disk_hits);
  append_counter(out, "cells_resumed", es.cells_resumed);
  append_counter(out, "cells_skipped", es.cells_skipped);
  append_counter(out, "mc_samples_run", es.mc_samples_run);
  append_counter(out, "mc_samples_cached", es.mc_samples_cached);
  append_counter(out, "entries_rejected", es.entries_rejected);
  out += "}}";
  return out;
}

}  // namespace swapgame::service
