#include "client.hpp"

#include <utility>

#include "obs/json.hpp"

namespace swapgame::service {

namespace {

using obs::json::Value;

std::string request_head(std::string_view op, std::uint64_t request_id) {
  std::string out = "{\"proto\":";
  out += std::to_string(kProtocolVersion);
  out += ",\"op\":\"";
  out += op;
  out += "\",\"id\":";
  out += std::to_string(request_id);
  return out;
}

/// Decodes the code/message pair every rejected/error event carries.
Status status_from_event(const Value& root) {
  const Value* code = root.find("code");
  const Value* message = root.find("message");
  return Status::from_token(
      code != nullptr && code->is_string() ? code->as_string() : "internal",
      message != nullptr && message->is_string() ? message->as_string()
                                                 : "");
}

}  // namespace

Status Client::connect(const std::string& socket_path) {
  if (socket_.valid()) return Status::unavailable("already connected");
  int fd = -1;
  Status status = connect_unix(socket_path, &fd);
  if (!status.is_ok()) return status;
  socket_.adopt(fd);

  std::string event;
  Value payload;
  status = await_event({wire::kEvHello}, &event, &payload, nullptr);
  if (!status.is_ok()) {
    socket_.close();
    return status;
  }
  const Value* spec_version = payload.find("spec_version");
  if (spec_version == nullptr || !spec_version->is_number()) {
    socket_.close();
    return Status::protocol_error("hello carries no spec_version");
  }
  if (spec_version->as_number() !=
      static_cast<double>(engine::kRunSpecSchemaVersion)) {
    const Status skew = Status::unsupported_version(
        "daemon speaks RunSpec schema v" + spec_version->raw_number() +
        ", this client speaks v" +
        std::to_string(engine::kRunSpecSchemaVersion));
    socket_.close();
    return skew;
  }
  return Status::ok();
}

Status Client::submit(const std::vector<engine::BatchNode>& nodes,
                      SubmitOutcome* outcome, const ProgressFn& progress) {
  if (!socket_.valid()) return Status::unavailable("not connected");
  if (nodes.empty()) return Status::invalid_spec("job has no cells");
  const std::size_t n = nodes.size();

  const std::uint64_t request_id = next_request_id_++;
  std::string request = request_head(wire::kOpSubmit, request_id);
  request += ",\"cells\":[";
  bool any_deps = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) request += ',';
    request += nodes[i].spec.to_json();
    any_deps = any_deps || !nodes[i].deps.empty();
  }
  request += ']';
  if (any_deps) {
    request += ",\"deps\":[";
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) request += ',';
      request += '[';
      for (std::size_t k = 0; k < nodes[i].deps.size(); ++k) {
        if (k > 0) request += ',';
        request += std::to_string(nodes[i].deps[k]);
      }
      request += ']';
    }
    request += ']';
  }
  request += '}';
  Status status = socket_.write_line(request);
  if (!status.is_ok()) return status;

  std::string event;
  Value payload;
  status = await_event({wire::kEvAccepted, wire::kEvRejected}, &event,
                       &payload, nullptr);
  if (!status.is_ok()) return status;
  if (event == wire::kEvRejected) return status_from_event(payload);

  SubmitOutcome result;
  const Value* job_id = payload.find("job");
  if (job_id != nullptr && job_id->is_number()) {
    result.job_id = job_id->as_u64();
  }
  result.cells = n;
  result.results.resize(n);
  result.cached.assign(n, false);
  result.cell_status.assign(n, Status::ok());

  // The daemon binds each result entry to the spec hash it answers for;
  // verifying against OUR hash of the submitted spec closes the loop --
  // codec drift or cache corruption surfaces here, not as silently wrong
  // numbers.
  std::vector<std::string> expected_hashes;
  expected_hashes.reserve(n);
  for (const engine::BatchNode& node : nodes) {
    expected_hashes.push_back(node.spec.hash());
  }
  std::vector<bool> seen(n, false);

  const auto on_cell = [&](const Value& cell) -> Status {
    const Value* index_field = cell.find("index");
    std::uint64_t index = n;
    if (index_field != nullptr && index_field->is_number()) {
      try {
        index = index_field->as_u64();
      } catch (const std::exception&) {
        index = n;
      }
    }
    if (index >= n || seen[index]) {
      return Status::protocol_error(
          "cell event with bad index " +
          (index_field != nullptr ? index_field->raw_number()
                                  : std::string("?")));
    }
    seen[index] = true;

    CellUpdate update;
    update.index = static_cast<std::size_t>(index);
    const Value* cached = cell.find("cached");
    update.cached = cached != nullptr && cached->is_number() &&
                    cached->as_number() == 1.0;
    if (const Value* source = cell.find("source");
        source != nullptr && source->is_string()) {
      update.source = source->as_string();
    }
    if (const Value* entry = cell.find("result")) {
      std::string hash;
      engine::RunResult run_result;
      const Status decoded =
          engine::RunResult::from_json(*entry, &hash, &run_result);
      if (!decoded.is_ok()) {
        return Status::protocol_error("cell " + std::to_string(index) +
                                      ": bad result entry: " +
                                      decoded.to_string());
      }
      if (hash != expected_hashes[index]) {
        return Status::protocol_error(
            "cell " + std::to_string(index) +
            ": result entry answers hash " + hash + ", expected " +
            expected_hashes[index]);
      }
      result.results[index] = std::move(run_result);
    } else {
      update.status = status_from_event(cell);
      if (update.status.is_ok()) {
        return Status::protocol_error("cell " + std::to_string(index) +
                                      " carries neither result nor error");
      }
      result.results[index].complete = false;
      ++result.failed_cells;
    }
    result.cached[index] = update.cached;
    result.cell_status[index] = update.status;
    if (update.cached) ++result.cached_cells;
    if (progress) progress(update);
    return Status::ok();
  };

  status = await_event({wire::kEvDone}, &event, &payload, nullptr, on_cell);
  if (!status.is_ok()) return status;
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) {
      return Status::protocol_error("done arrived before cell " +
                                    std::to_string(i));
    }
  }

  if (outcome != nullptr) *outcome = std::move(result);
  for (std::size_t i = 0; i < n; ++i) {
    const Status& cell_status =
        outcome != nullptr ? outcome->cell_status[i] : result.cell_status[i];
    if (!cell_status.is_ok()) return cell_status;
  }
  return Status::ok();
}

Status Client::ping() {
  if (!socket_.valid()) return Status::unavailable("not connected");
  const Status sent =
      socket_.write_line(request_head(wire::kOpPing, next_request_id_++) +
                         "}");
  if (!sent.is_ok()) return sent;
  std::string event;
  Value payload;
  return await_event({wire::kEvPong}, &event, &payload, nullptr);
}

Status Client::server_stats(std::string* stats_json) {
  if (!socket_.valid()) return Status::unavailable("not connected");
  const Status sent =
      socket_.write_line(request_head(wire::kOpStats, next_request_id_++) +
                         "}");
  if (!sent.is_ok()) return sent;
  std::string event;
  Value payload;
  return await_event({wire::kEvStats}, &event, &payload, stats_json);
}

Status Client::shutdown_server() {
  if (!socket_.valid()) return Status::unavailable("not connected");
  const Status sent = socket_.write_line(
      request_head(wire::kOpShutdown, next_request_id_++) + "}");
  if (!sent.is_ok()) return sent;
  std::string event;
  Value payload;
  const Status status = await_event({wire::kEvBye}, &event, &payload,
                                    nullptr);
  socket_.close();
  return status;
}

Status Client::await_event(
    const std::vector<std::string_view>& terminal, std::string* event,
    Value* payload, std::string* raw_line,
    const std::function<Status(const Value&)>& on_cell) {
  for (;;) {
    std::string line;
    bool eof = false;
    Status status = socket_.read_line(&line, &eof);
    if (!status.is_ok()) return status;
    if (eof) return Status::unavailable("daemon closed the connection");
    if (line.empty()) continue;

    Value root;
    status = obs::json::parse(line, root);
    if (!status.is_ok() || !root.is_object()) {
      return Status::protocol_error("malformed event line: " +
                                    (status.is_ok() ? "not an object"
                                                    : status.message()));
    }
    const Value* proto = root.find("proto");
    if (proto == nullptr || !proto->is_number() ||
        proto->as_number() != static_cast<double>(kProtocolVersion)) {
      return Status::unsupported_version(
          "event protocol version " +
          (proto != nullptr && proto->is_number() ? proto->raw_number()
                                                  : std::string("?")) +
          ", this client speaks v" + std::to_string(kProtocolVersion));
    }
    const Value* name = root.find("event");
    if (name == nullptr || !name->is_string()) {
      return Status::protocol_error("event line carries no 'event' key");
    }
    if (name->as_string() == wire::kEvError) {
      return status_from_event(root);
    }
    if (name->as_string() == wire::kEvCell && on_cell) {
      const Status handled = on_cell(root);
      if (!handled.is_ok()) return handled;
      continue;
    }
    for (const std::string_view candidate : terminal) {
      if (name->as_string() == candidate) {
        *event = name->as_string();
        if (raw_line != nullptr) *raw_line = line;
        *payload = std::move(root);
        return Status::ok();
      }
    }
    return Status::protocol_error("unexpected event '" + name->as_string() +
                                  "'");
  }
}

}  // namespace swapgame::service
