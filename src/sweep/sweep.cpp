#include "sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace swapgame::sweep {

unsigned default_threads() {
  if (const char* env = std::getenv("SWAPGAME_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& shared_pool() {
  // Leaked on purpose: bench binaries use the pool up to their last output
  // line, and a static-destruction-order race against other globals is the
  // classic way to hang at exit.
  static ThreadPool* pool = new ThreadPool(default_threads());
  return *pool;
}

std::vector<std::pair<std::size_t, std::size_t>> plan_chunks(
    std::size_t n, unsigned workers, std::size_t min_chunk,
    std::size_t fixed_chunk) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (n == 0) return chunks;
  std::size_t chunk = 0;
  if (fixed_chunk > 0) {
    chunk = fixed_chunk;
  } else {
    if (workers == 0) workers = 1;
    if (min_chunk == 0) min_chunk = 1;
    // Aim for a few chunks per worker so a slow chunk (e.g. a cold solve
    // that warm ones then chain off) doesn't serialize the tail, while
    // respecting the minimum chunk size.
    const std::size_t target = static_cast<std::size_t>(workers) * 4;
    chunk = std::max(min_chunk, (n + target - 1) / target);
  }
  chunks.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    chunks.emplace_back(begin, std::min(n, begin + chunk));
  }
  return chunks;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                  const SweepOptions& opts) {
  if (n == 0) return;
  ThreadPool* pool = opts.pool;
  const unsigned pool_width =
      opts.threads != 0 ? opts.threads
                        : (pool != nullptr ? pool->size() : default_threads());
  const auto chunks =
      plan_chunks(n, pool_width, opts.min_chunk, opts.fixed_chunk);
  if (pool == nullptr && chunks.size() > 1 && pool_width > 1) {
    pool = &shared_pool();
  }
  // Serial inline path: one chunk / one worker gains nothing from the
  // pool, and a nested sweep issued from a pool worker MUST run inline --
  // a worker blocking in wait_idle() counts itself busy and would
  // deadlock.  Chunk boundaries are identical either way, so results are
  // too.
  if (chunks.size() == 1 || pool_width == 1 || pool->is_worker_thread()) {
    for (const auto& [begin, end] : chunks) chunk_fn(begin, end);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks.size());
  for (const auto& [begin, end] : chunks) {
    tasks.emplace_back([&chunk_fn, begin, end] { chunk_fn(begin, end); });
  }
  pool->submit_bulk(std::move(tasks));
  pool->wait_idle();
}

}  // namespace swapgame::sweep
