// Parallel sweep primitives for parameter grids and Monte-Carlo batches.
//
// Every figure/table artifact evaluates the analytic game over a grid of
// (P*, Q, ...) points, and the Monte-Carlo engines fan samples out over
// workers.  Both are the same shape of work: N independent indices, chunked
// over a reusable thread pool.  This header provides that shape once:
//
//   * parallel_for   -- run chunk_fn(begin, end) over [0, n), chunked;
//   * parallel_map   -- order-preserving results vector, one R per index;
//   * parallel_map_stateful -- like parallel_map but with one state object
//     per chunk (e.g. a warm-chained model::BasicGameSweeper, which is not
//     thread-safe but thrives on contiguous grid points).
//
// Guarantees:
//   * order-preserving: result i is fn(i), independent of scheduling;
//   * exception-propagating: the first exception thrown by any chunk is
//     rethrown on the calling thread (remaining chunks still run);
//   * serial when trivial: one chunk or one worker executes inline on the
//     calling thread -- no pool round-trip, identical results;
//   * deterministic partition on demand: SweepOptions::fixed_chunk pins the
//     chunk boundaries independently of the worker count, which is what
//     makes the Monte-Carlo engines bit-identical at threads=1 and
//     threads=N.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "thread_pool.hpp"

namespace swapgame::sweep {

struct SweepOptions {
  /// Parallelism cap: 0 = use the pool's full width; 1 = run serial inline.
  unsigned threads = 0;
  /// Lower bound on chunk size when the partition is worker-derived; keeps
  /// tiny grids from paying per-chunk overhead.
  std::size_t min_chunk = 1;
  /// When nonzero, partition [0, n) into ceil(n / fixed_chunk) chunks of
  /// exactly this size (last one ragged), REGARDLESS of worker count.  Use
  /// whenever per-chunk state must be reproducible across machines.
  std::size_t fixed_chunk = 0;
  /// Pool to run on; nullptr = the process-wide shared_pool().
  ThreadPool* pool = nullptr;
};

/// The process-wide pool (lazily constructed, never destroyed before exit).
/// Width: SWAPGAME_THREADS env var if set and positive, else hardware
/// concurrency.
[[nodiscard]] ThreadPool& shared_pool();

/// The worker count shared_pool() was (or would be) built with.
[[nodiscard]] unsigned default_threads();

/// Half-open index ranges partitioning [0, n).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> plan_chunks(
    std::size_t n, unsigned workers, std::size_t min_chunk,
    std::size_t fixed_chunk);

/// Runs chunk_fn(begin, end) over a partition of [0, n).  Blocks until all
/// chunks finish; rethrows the first chunk exception.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                  const SweepOptions& opts = {});

/// Order-preserving map: out[i] = fn(i).  R must be default-constructible
/// (each slot is overwritten exactly once).
template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t n, Fn&& fn,
                            const SweepOptions& opts = {}) {
  std::vector<R> out(n);
  parallel_for(
      n,
      [&out, &fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      opts);
  return out;
}

/// Order-preserving map with one state object per chunk: out[i] =
/// fn(state, i), where state = make_state() once per chunk.  The state
/// never crosses threads, so it may be stateless-unsafe (warm-chained
/// sweepers, RNGs).  With opts.fixed_chunk set, the (state, indices)
/// pairing -- and therefore the result -- is independent of worker count.
template <typename R, typename MakeState, typename Fn>
std::vector<R> parallel_map_stateful(std::size_t n, MakeState&& make_state,
                                     Fn&& fn, const SweepOptions& opts = {}) {
  std::vector<R> out(n);
  parallel_for(
      n,
      [&out, &make_state, &fn](std::size_t begin, std::size_t end) {
        auto state = make_state();
        for (std::size_t i = begin; i < end; ++i) out[i] = fn(state, i);
      },
      opts);
  return out;
}

}  // namespace swapgame::sweep
