// Fixed-size thread pool underpinning the sweep engine.
//
// Deliberately simple: submit()/submit_bulk() enqueue tasks, wait_idle()
// blocks until every submitted task has finished.  Exceptions thrown by
// tasks are captured and rethrown from wait_idle() (first one wins), so
// failures in worker threads are never silently dropped.  The pool is
// reusable across batches: after wait_idle() returns (or throws) the pool
// is quiescent and accepts the next batch, which is what lets one shared
// pool serve every grid sweep in a bench binary.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace swapgame::sweep {

class ThreadPool {
 public:
  /// Lifetime telemetry, monotonically increasing (never reset).  Callers
  /// interested in one batch take a snapshot before and after and diff --
  /// that is how the batch engine reports queue pressure per run.
  struct Stats {
    std::uint64_t submitted = 0;        ///< tasks enqueued so far
    std::uint64_t executed = 0;         ///< tasks completed (ok or thrown)
    std::uint64_t max_queue_depth = 0;  ///< high-water queue length observed
  };

  /// @param threads  worker count; 0 means std::thread::hardware_concurrency
  ///                 (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers (after draining the queue).
  ~ThreadPool();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// True when called from one of this pool's worker threads.  Nested
  /// fan-out onto the same pool must run inline instead: a worker blocking
  /// in wait_idle() counts itself as busy and would deadlock.
  [[nodiscard]] bool is_worker_thread() const noexcept {
    const std::thread::id me = std::this_thread::get_id();
    for (const std::thread& worker : workers_) {
      if (worker.get_id() == me) return true;
    }
    return false;
  }

  /// Enqueues a task.  Must not be called after destruction begins.
  void submit(std::function<void()> task);

  /// Enqueues a whole batch under a single lock acquisition and wakes every
  /// worker once -- the fast path for sweeps that fan out dozens of chunks.
  void submit_bulk(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and all workers are idle, then
  /// rethrows the first captured task exception, if any.  The pool remains
  /// usable for further batches afterwards.
  void wait_idle();

  /// Epoch barrier: runs fn(0) .. fn(n-1) concurrently -- n-1 slices on
  /// the pool, slice 0 inline on the caller -- and returns only when ALL
  /// slices finished (rethrowing the first slice exception).  This is the
  /// per-epoch fan-out/fan-in the parallel population engine issues tens
  /// of thousands of times per run, so completion is tracked by a per-call
  /// latch instead of wait_idle(): concurrent run_parallel calls and
  /// unrelated submit() batches never wait on each other's work.
  /// Must not be called from a pool worker thread (nested fan-out onto the
  /// same pool deadlocks; see is_worker_thread).
  void run_parallel(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// A consistent snapshot of the lifetime telemetry.
  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  Stats stats_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  unsigned busy_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace swapgame::sweep
