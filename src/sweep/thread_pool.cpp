#include "thread_pool.hpp"

#include <utility>

namespace swapgame::sweep {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++stats_.submitted;
    if (tasks_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = tasks_.size();
    }
  }
  task_available_.notify_one();
}

void ThreadPool::submit_bulk(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::function<void()>& task : tasks) tasks_.push(std::move(task));
    stats_.submitted += tasks.size();
    if (tasks_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = tasks_.size();
    }
  }
  task_available_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && busy_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_parallel(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Per-call latch: the caller takes slice 0, the pool the rest.
  struct Latch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = n - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 1; i < n; ++i) {
      tasks_.push([latch, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> guard(latch->mutex);
          if (!latch->error) latch->error = std::current_exception();
        }
        std::lock_guard<std::mutex> guard(latch->mutex);
        if (--latch->remaining == 0) latch->done.notify_all();
      });
    }
    stats_.submitted += n - 1;
    if (tasks_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = tasks_.size();
    }
  }
  task_available_.notify_all();
  std::exception_ptr inline_error;
  try {
    fn(0);
  } catch (...) {
    inline_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(latch->mutex);
  latch->done.wait(lock, [&latch] { return latch->remaining == 0; });
  if (inline_error) std::rethrow_exception(inline_error);
  if (latch->error) std::rethrow_exception(latch->error);
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++busy_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
      ++stats_.executed;
      if (tasks_.empty() && busy_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace swapgame::sweep
