// The determinism contract of the tracing layer (docs/OBSERVABILITY.md):
// running the SAME Monte-Carlo scenario at different thread counts must
// produce byte-identical aggregated trace JSONL and equal metrics
// snapshots, because traces are keyed by sample index and every per-sample
// RNG stream derives from that index, never from worker identity.  This is
// the in-suite version of the `trace_diff --gate` CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "agents/naive.hpp"
#include "model/params.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/price_path.hpp"
#include "proto/swap_protocol.hpp"
#include "sim/mc_runner.hpp"

namespace {

using namespace swapgame;

/// Every fault knob on at once, so the equality check covers the
/// fault-injection and re-broadcast trace paths too.
proto::SwapSetup faulted_setup() {
  proto::SwapSetup setup;
  setup.params = model::SwapParams::table3_defaults();
  setup.p_star = 2.0;
  setup.expiry_margin = 8.0;
  setup.faults.chain_a.drop_prob = 0.1;
  setup.faults.chain_b.drop_prob = 0.1;
  setup.faults.chain_a.extra_delay_prob = 0.2;
  setup.faults.chain_a.extra_delay_max = 3.0;
  setup.faults.chain_b.extra_delay_prob = 0.2;
  setup.faults.chain_b.extra_delay_max = 3.0;
  setup.faults.chain_b.censorship.push_back({2.5, 3.5});
  setup.faults.bob_offline.push_back({7.5, 8.5});
  return setup;
}

struct TracedRun {
  std::string jsonl;
  std::size_t traced_samples = 0;
  obs::MetricsRegistry::Snapshot metrics;
  sim::McEstimate estimate;
};

sim::McRunSpec spec_for(const proto::SwapSetup& setup) {
  sim::McRunSpec spec;
  spec.evaluator = sim::McEvaluator::kProtocol;
  spec.params = setup.params;
  spec.p_star = setup.p_star;
  spec.expiry_margin = setup.expiry_margin;
  spec.faults = setup.faults;
  return spec;
}

TracedRun run_traced(const proto::SwapSetup& setup, unsigned threads,
                     std::size_t samples, std::size_t stride) {
  obs::TraceCollector collector;
  obs::MetricsRegistry metrics;
  sim::McRunSpec spec = spec_for(setup);
  spec.config.samples = samples;
  spec.config.seed = 2026;
  spec.config.threads = threads;
  spec.config.trace_stride = stride;
  spec.config.traces = &collector;
  spec.config.metrics = &metrics;
  TracedRun run;
  run.estimate = sim::McRunner::run(spec).estimate;
  run.jsonl = collector.jsonl();
  run.traced_samples = collector.size();
  run.metrics = metrics.snapshot();
  return run;
}

TEST(TraceDeterminism, FaultedRunIsByteIdenticalAcrossThreadCounts) {
  // 415 samples: spans two kProtocolMcChunk=256 chunks with a ragged tail.
  const proto::SwapSetup setup = faulted_setup();
  const TracedRun one = run_traced(setup, 1, 415, 7);
  const TracedRun many = run_traced(setup, 8, 415, 7);

  EXPECT_EQ(one.traced_samples, (415 + 6) / 7);  // indices 0,7,...,413
  EXPECT_EQ(one.traced_samples, many.traced_samples);
  EXPECT_EQ(one.jsonl, many.jsonl);  // THE byte-equality contract
  EXPECT_EQ(one.metrics, many.metrics);

  // And the estimates themselves stay bit-identical, as before tracing.
  EXPECT_EQ(one.estimate.success.successes(), many.estimate.success.successes());
  EXPECT_EQ(one.estimate.initiated.trials(), many.estimate.initiated.trials());
  EXPECT_EQ(one.estimate.dropped_txs, many.estimate.dropped_txs);
  EXPECT_EQ(one.estimate.rebroadcasts, many.estimate.rebroadcasts);
}

TEST(TraceDeterminism, TraceStreamCarriesTheExpectedEventFamilies) {
  const proto::SwapSetup setup = faulted_setup();
  const TracedRun run = run_traced(setup, 4, 203, 7);

  // Every traced sample opens with run-start and closes with an outcome.
  EXPECT_NE(run.jsonl.find("\"kind\":\"run-start\""), std::string::npos);
  EXPECT_NE(run.jsonl.find("\"kind\":\"outcome\""), std::string::npos);
  // Decision epochs carry game-theoretic context.
  EXPECT_NE(run.jsonl.find("\"kind\":\"decision\""), std::string::npos);
  EXPECT_NE(run.jsonl.find("\"p_star\":"), std::string::npos);
  // The fault knobs really fired somewhere in 29 traced samples.
  EXPECT_NE(run.jsonl.find("\"kind\":\"fault-"), std::string::npos);

  // Metrics cover every run, not only the traced stride.
  EXPECT_EQ(run.metrics.counters.at("swap.runs"), 203u);
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheEstimate) {
  // Attaching the trace/metrics sinks must not consume RNG draws or change
  // scheduling: the estimate with sinks equals the estimate without.
  const proto::SwapSetup setup = faulted_setup();
  sim::McRunSpec plain = spec_for(setup);
  plain.config.samples = 203;
  plain.config.seed = 2026;
  plain.config.threads = 2;
  const sim::McEstimate bare = sim::McRunner::run(plain).estimate;

  const TracedRun traced = run_traced(setup, 2, 203, 7);
  EXPECT_EQ(bare.success.successes(), traced.estimate.success.successes());
  EXPECT_EQ(bare.success.trials(), traced.estimate.success.trials());
  EXPECT_EQ(bare.alice_utility.mean(), traced.estimate.alice_utility.mean());
  EXPECT_EQ(bare.bob_utility.mean(), traced.estimate.bob_utility.mean());
  EXPECT_EQ(bare.dropped_txs, traced.estimate.dropped_txs);
}

TEST(TraceDeterminism, SingleRunTraceIsReproducible) {
  // Two single-threaded executions of one run_swap produce identical
  // streams -- the base case the MC contract builds on.
  proto::SwapSetup setup = faulted_setup();
  std::string streams[2];
  for (std::string& out : streams) {
    obs::TraceRecorder trace;
    setup.trace = &trace;
    agents::HonestStrategy alice;
    agents::HonestStrategy bob;
    const proto::ConstantPricePath path(2.0);
    (void)proto::run_swap(setup, alice, bob, path);
    EXPECT_FALSE(trace.empty());
    out = trace.to_jsonl();
  }
  EXPECT_EQ(streams[0], streams[1]);
}

}  // namespace
