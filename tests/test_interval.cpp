// Unit tests for the disjoint-interval set algebra (src/math/interval).
#include "math/interval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace swapgame::math {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Interval, BasicPredicates) {
  const Interval iv{1.0, 3.0};
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.length(), 2.0);
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(2.9));
  EXPECT_FALSE(iv.contains(3.0));  // half-open
  EXPECT_FALSE(iv.contains(0.5));
  EXPECT_TRUE((Interval{2.0, 2.0}).empty());
  EXPECT_TRUE((Interval{3.0, 1.0}).empty());
}

TEST(IntervalSet, NormalizesOnConstruction) {
  const IntervalSet set({{3.0, 4.0}, {1.0, 2.0}, {1.5, 2.5}, {5.0, 5.0}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0].lo, 1.0);
  EXPECT_EQ(set.intervals()[0].hi, 2.5);
  EXPECT_EQ(set.intervals()[1].lo, 3.0);
  EXPECT_EQ(set.intervals()[1].hi, 4.0);
}

TEST(IntervalSet, MergesTouchingIntervals) {
  const IntervalSet set({{1.0, 2.0}, {2.0, 3.0}});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0].lo, 1.0);
  EXPECT_EQ(set.intervals()[0].hi, 3.0);
}

TEST(IntervalSet, ContainsUsesBinarySearch) {
  const IntervalSet set({{0.0, 1.0}, {2.0, 3.0}, {4.0, kInf}});
  EXPECT_TRUE(set.contains(0.5));
  EXPECT_FALSE(set.contains(1.5));
  EXPECT_TRUE(set.contains(2.0));
  EXPECT_FALSE(set.contains(3.7));
  EXPECT_TRUE(set.contains(1e12));
  EXPECT_FALSE(set.contains(-1.0));
}

TEST(IntervalSet, MeasureSumsLengths) {
  EXPECT_EQ(IntervalSet({{0.0, 1.0}, {2.0, 4.5}}).measure(), 3.5);
  EXPECT_EQ(IntervalSet().measure(), 0.0);
  EXPECT_TRUE(std::isinf(IntervalSet({{0.0, kInf}}).measure()));
}

TEST(IntervalSet, FromAlternatingRootsStartingInside) {
  // Roots {a, b, c} with the first piece inside: [lo,a) U [b,c).
  const auto set = IntervalSet::from_alternating_roots({1.0, 2.0, 3.0}, 0.0,
                                                       10.0, true);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0].lo, 0.0);
  EXPECT_EQ(set.intervals()[0].hi, 1.0);
  EXPECT_EQ(set.intervals()[1].lo, 2.0);
  EXPECT_EQ(set.intervals()[1].hi, 3.0);
}

TEST(IntervalSet, FromAlternatingRootsStartingOutside) {
  const auto set = IntervalSet::from_alternating_roots({1.0, 2.0, 3.0}, 0.0,
                                                       10.0, false);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0].lo, 1.0);
  EXPECT_EQ(set.intervals()[0].hi, 2.0);
  EXPECT_EQ(set.intervals()[1].lo, 3.0);
  EXPECT_EQ(set.intervals()[1].hi, 10.0);
}

TEST(IntervalSet, FromAlternatingRootsIgnoresOutOfDomainRoots) {
  const auto set = IntervalSet::from_alternating_roots({-5.0, 1.0, 20.0}, 0.0,
                                                       10.0, false);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0].lo, 1.0);
  EXPECT_EQ(set.intervals()[0].hi, 10.0);
}

// Regression: roots landing exactly ON a domain endpoint used to be
// discarded like out-of-domain ones, silently losing a parity flip.  The
// indifference functions do hit the sweep boundaries (e.g. a cont-region
// edge exactly at p_min when collateral makes Bob indifferent there), and
// dropping that root inverted the whole region.
TEST(IntervalSet, RootAtDomainLoTogglesStartingParity) {
  // First piece "inside" but zero-width: the real set starts OUTSIDE.
  const auto set =
      IntervalSet::from_alternating_roots({0.0, 2.0}, 0.0, 10.0, true);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0].lo, 2.0);
  EXPECT_EQ(set.intervals()[0].hi, 10.0);
  EXPECT_FALSE(set.contains(1.0));

  // Starting outside, a root at lo means inside from the very start.
  const auto flipped =
      IntervalSet::from_alternating_roots({0.0, 2.0}, 0.0, 10.0, false);
  ASSERT_EQ(flipped.size(), 1u);
  EXPECT_EQ(flipped.intervals()[0].lo, 0.0);
  EXPECT_EQ(flipped.intervals()[0].hi, 2.0);
}

TEST(IntervalSet, RootAtDomainHiIsANoOp) {
  // The flip happens past the domain; [1, hi) must not collapse.
  const auto set =
      IntervalSet::from_alternating_roots({1.0, 10.0}, 0.0, 10.0, false);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0].lo, 1.0);
  EXPECT_EQ(set.intervals()[0].hi, 10.0);
}

TEST(IntervalSet, RootsAtBothEndpointsCompose) {
  // {lo, hi} starting inside: parity flips at lo (-> outside for the whole
  // domain) and the hi root changes nothing.
  const auto set =
      IntervalSet::from_alternating_roots({0.0, 10.0}, 0.0, 10.0, true);
  EXPECT_TRUE(set.empty());
  const auto inv =
      IntervalSet::from_alternating_roots({0.0, 10.0}, 0.0, 10.0, false);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv.intervals()[0].lo, 0.0);
  EXPECT_EQ(inv.intervals()[0].hi, 10.0);
}

TEST(IntervalSet, TangentDoubleRootPreservesParity) {
  // A double root (tangency) flips twice: inside stays inside (the
  // zero-width gap normalizes away), outside stays outside.
  const auto inside =
      IntervalSet::from_alternating_roots({2.0, 2.0}, 0.0, 10.0, true);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside.intervals()[0].lo, 0.0);
  EXPECT_EQ(inside.intervals()[0].hi, 10.0);
  EXPECT_TRUE(
      IntervalSet::from_alternating_roots({2.0, 2.0}, 0.0, 10.0, false)
          .empty());
}

TEST(IntervalSet, DoubleRootAtDomainLoCancelsOut) {
  const auto set =
      IntervalSet::from_alternating_roots({0.0, 0.0, 3.0}, 0.0, 10.0, true);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0].lo, 0.0);
  EXPECT_EQ(set.intervals()[0].hi, 3.0);
}

TEST(IntervalSet, FromAlternatingRootsRejectsEmptyDomain) {
  EXPECT_THROW(IntervalSet::from_alternating_roots({}, 1.0, 1.0, true),
               std::invalid_argument);
}

TEST(IntervalSet, Unite) {
  const IntervalSet a({{0.0, 2.0}, {5.0, 6.0}});
  const IntervalSet b({{1.0, 3.0}, {7.0, 8.0}});
  const IntervalSet u = a.unite(b);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u.intervals()[0].lo, 0.0);
  EXPECT_EQ(u.intervals()[0].hi, 3.0);
}

TEST(IntervalSet, Intersect) {
  const IntervalSet a({{0.0, 2.0}, {3.0, 6.0}});
  const IntervalSet b({{1.0, 4.0}, {5.0, 7.0}});
  const IntervalSet i = a.intersect(b);
  ASSERT_EQ(i.size(), 3u);
  EXPECT_EQ(i.intervals()[0].lo, 1.0);
  EXPECT_EQ(i.intervals()[0].hi, 2.0);
  EXPECT_EQ(i.intervals()[1].lo, 3.0);
  EXPECT_EQ(i.intervals()[1].hi, 4.0);
  EXPECT_EQ(i.intervals()[2].lo, 5.0);
  EXPECT_EQ(i.intervals()[2].hi, 6.0);
}

TEST(IntervalSet, IntersectWithInfinitePiece) {
  const IntervalSet a({{0.0, kInf}});
  const IntervalSet b({{2.0, 5.0}});
  const IntervalSet i = a.intersect(b);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_EQ(i.intervals()[0].lo, 2.0);
  EXPECT_EQ(i.intervals()[0].hi, 5.0);
}

TEST(IntervalSet, ComplementWithinDomain) {
  const IntervalSet set({{1.0, 2.0}, {3.0, 4.0}});
  const IntervalSet c = set.complement(0.0, 5.0);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.intervals()[0].lo, 0.0);
  EXPECT_EQ(c.intervals()[0].hi, 1.0);
  EXPECT_EQ(c.intervals()[2].lo, 4.0);
  EXPECT_EQ(c.intervals()[2].hi, 5.0);
  // Complement of the complement restores the original within the domain.
  EXPECT_TRUE(c.complement(0.0, 5.0).equals(set, 0.0));
}

TEST(IntervalSet, ComplementOfEmptyIsDomain) {
  const IntervalSet c = IntervalSet().complement(1.0, 3.0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.intervals()[0].lo, 1.0);
  EXPECT_EQ(c.intervals()[0].hi, 3.0);
}

TEST(IntervalSet, IntegratePiecewise) {
  const IntervalSet set({{0.0, 1.0}, {2.0, 3.0}});
  // integrate f(x) = x: 0.5 + 2.5 = 3.0
  const double total = set.integrate([](double lo, double hi) {
    return 0.5 * (hi * hi - lo * lo);
  });
  EXPECT_NEAR(total, 3.0, 1e-14);
}

TEST(IntervalSet, IntegrateUnboundedPieceRequiresTailIntegrator) {
  const IntervalSet set({{1.0, kInf}});
  EXPECT_THROW(set.integrate([](double, double) { return 0.0; }),
               std::invalid_argument);
  const double total = set.integrate(
      [](double, double) { return 0.0; },
      [](double lo) { return std::exp(-lo); });
  EXPECT_NEAR(total, std::exp(-1.0), 1e-14);
}

TEST(IntervalSet, ToStringRendering) {
  EXPECT_EQ(IntervalSet().to_string(), "{}");
  EXPECT_EQ(IntervalSet({{1.0, 2.0}}).to_string(), "[1, 2)");
  EXPECT_EQ(IntervalSet({{1.0, 2.0}, {3.0, 4.0}}).to_string(),
            "[1, 2) U [3, 4)");
}

TEST(IntervalSet, ApproximateEquality) {
  const IntervalSet a({{1.0, 2.0}});
  const IntervalSet b({{1.0 + 1e-10, 2.0 - 1e-10}});
  EXPECT_TRUE(a.equals(b, 1e-9));
  EXPECT_FALSE(a.equals(b, 1e-12));
  EXPECT_FALSE(a.equals(IntervalSet(), 1.0));
}

}  // namespace
}  // namespace swapgame::math
