// Tests for the extended game with per-token discount rates and fees
// (src/model/extended_game) -- the paper's Section V future-work items.
#include "model/extended_game.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(ExtendedParams, Validation) {
  ExtendedParams p = ExtendedParams::from_basic(defaults());
  EXPECT_NO_THROW(p.validate());
  p.fee_a = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ExtendedParams::from_basic(defaults());
  p.alice.r_b = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ExtendedGame, FromBasicRecoversBasicGameExactly) {
  // The critical consistency pin: equal token rates + zero fees must
  // reproduce BasicGame to numerical precision.
  const ExtendedParams ext = ExtendedParams::from_basic(defaults());
  for (double p_star : {1.6, 2.0, 2.4}) {
    const ExtendedGame e(ext, p_star);
    const BasicGame b(defaults(), p_star);
    EXPECT_NEAR(e.alice_t3_cutoff(), b.alice_t3_cutoff(), 1e-12)
        << "p_star=" << p_star;
    EXPECT_NEAR(e.success_rate(), b.success_rate(), 1e-9);
    EXPECT_NEAR(e.alice_t1_cont(), b.alice_t1_cont(), 1e-9);
    const auto eb = e.bob_t2_band();
    const auto bb = b.bob_t2_band();
    ASSERT_EQ(eb.has_value(), bb.has_value());
    if (eb) {
      EXPECT_NEAR(eb->lo, bb->lo, 1e-6);
      EXPECT_NEAR(eb->hi, bb->hi, 1e-6);
    }
  }
  const FeasibleBand ext_band = extended_feasible_band(ext);
  const FeasibleBand basic_band = alice_feasible_band(defaults());
  ASSERT_TRUE(ext_band.viable);
  EXPECT_NEAR(ext_band.lo, basic_band.lo, 1e-4);
  EXPECT_NEAR(ext_band.hi, basic_band.hi, 1e-4);
}

TEST(ExtendedGame, FeesLowerSuccessRateAndShrinkBand) {
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  const double sr0 = ExtendedGame(ext, 2.0).success_rate();
  ext.fee_a = 0.02;
  ext.fee_b = 0.02;
  const ExtendedGame fee_game(ext, 2.0);
  EXPECT_LT(fee_game.success_rate(), sr0);
  const FeasibleBand fee_band = extended_feasible_band(ext);
  const FeasibleBand free_band =
      extended_feasible_band(ExtendedParams::from_basic(defaults()));
  ASSERT_TRUE(fee_band.viable);
  EXPECT_LT(fee_band.hi - fee_band.lo, free_band.hi - free_band.lo);
}

TEST(ExtendedGame, LargeFeesKillTheSwap) {
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  ext.fee_a = 0.5;
  ext.fee_b = 0.5;
  const FeasibleBand band = extended_feasible_band(ext);
  EXPECT_FALSE(band.viable);
}

TEST(ExtendedGame, FeeShiftsAliceT3Cutoff) {
  // Alice needs a higher token-b price to justify paying the claim fee.
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  const double cut0 = ExtendedGame(ext, 2.0).alice_t3_cutoff();
  ext.fee_b = 0.05;
  const double cut_fee = ExtendedGame(ext, 2.0).alice_t3_cutoff();
  EXPECT_GT(cut_fee, cut0);
}

TEST(ExtendedGame, TokenBYieldRaisesSuccessRate) {
  // A staking yield on token-b (r_b = r - y < r) makes holding token-b more
  // attractive for Alice, lowering her walk-away threshold.
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  const double sr0 = ExtendedGame(ext, 2.0).success_rate();
  ext.alice.r_b = 0.005;
  ext.bob.r_b = 0.005;
  const ExtendedGame yield_game(ext, 2.0);
  EXPECT_GT(yield_game.success_rate(), sr0);
  EXPECT_LT(yield_game.alice_t3_cutoff(),
            ExtendedGame(ExtendedParams::from_basic(defaults()), 2.0)
                .alice_t3_cutoff());
}

TEST(ExtendedGame, AsymmetricRatesShiftTheBand) {
  // Garman-Kohlhagen asymmetry: a higher carry cost on token-a flows makes
  // receiving token-a later less attractive for both agents.
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  ext.alice.r_a = 0.02;  // token-a flows discounted harder
  ext.bob.r_a = 0.02;
  const FeasibleBand band = extended_feasible_band(ext);
  const FeasibleBand base =
      extended_feasible_band(ExtendedParams::from_basic(defaults()));
  // Alice's refund branch is worth less, so she demands different terms:
  // the band must move (here: both edges drop or the band narrows).
  if (band.viable) {
    EXPECT_NE(band.lo, base.lo);
    EXPECT_LT(band.hi - band.lo, base.hi - base.lo);
  }
  // (Non-viability is also an acceptable qualitative outcome of higher
  // carry cost; either way it differs from the base case.)
}

TEST(ExtendedGame, T3IndifferenceHoldsWithFees) {
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  ext.fee_b = 0.03;
  const ExtendedGame game(ext, 2.0);
  const double cut = game.alice_t3_cutoff();
  EXPECT_NEAR(game.alice_t3_cont(cut), game.alice_t3_stop(), 1e-10);
}

TEST(ExtendedGame, BandEndpointsAreIndifferencePointsWithFees) {
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  ext.fee_a = 0.01;
  ext.fee_b = 0.01;
  const ExtendedGame game(ext, 2.0);
  const auto band = game.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_NEAR(game.bob_t2_cont(band->lo), game.bob_t2_stop(band->lo), 1e-6);
  EXPECT_NEAR(game.bob_t2_cont(band->hi), game.bob_t2_stop(band->hi), 1e-6);
}

TEST(ExtendedGame, SuccessRateIsAProbability) {
  ExtendedParams ext = ExtendedParams::from_basic(defaults());
  ext.fee_a = 0.01;
  ext.fee_b = 0.02;
  ext.alice.r_b = 0.008;
  for (double p_star = 1.0; p_star <= 3.0; p_star += 0.25) {
    const double sr = ExtendedGame(ext, p_star).success_rate();
    EXPECT_GE(sr, 0.0);
    EXPECT_LE(sr, 1.0);
  }
}

}  // namespace
}  // namespace swapgame::model
