// End-to-end tests of the premium escrow in the protocol (src/proto):
// settlement on every outcome path, watcher cancellation, composition with
// collateral, and agreement with the PremiumGame thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/naive.hpp"
#include "agents/rational.hpp"
#include "proto/swap_protocol.hpp"

namespace swapgame::proto {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

SwapSetup premium_setup(double pr) {
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  setup.premium = pr;
  return setup;
}

TEST(PremiumProtocol, SuccessReturnsPremiumToAlice) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(premium_setup(0.3), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kSuccess);
  EXPECT_DOUBLE_EQ(r.alice_premium_back, 0.3);
  EXPECT_DOUBLE_EQ(r.bob_premium_gain, 0.0);
  // Alice: started with P* + pr, spent P*, got pr back.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 0.3);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 2.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(PremiumProtocol, AliceWaivingForfeitsPremiumToBob) {
  agents::DefectorStrategy alice(agents::Stage::kT3Reveal);
  agents::HonestStrategy bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(premium_setup(0.3), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kAliceDeclinedT3);
  EXPECT_DOUBLE_EQ(r.alice_premium_back, 0.0);
  EXPECT_DOUBLE_EQ(r.bob_premium_gain, 0.3);
  // Alice: P* refunded but premium gone; Bob keeps token-b + premium.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 0.3);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(PremiumProtocol, WatcherCancelsWhenBobNeverLocks) {
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT2Lock);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(premium_setup(0.3), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobDeclinedT2);
  // Alice is NOT penalized: the watcher cancels the escrow back to her.
  EXPECT_DOUBLE_EQ(r.alice_premium_back, 0.3);
  EXPECT_DOUBLE_EQ(r.bob_premium_gain, 0.0);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.3);
  EXPECT_TRUE(r.conservation_ok);
  bool cancel_logged = false;
  for (const std::string& line : r.audit) {
    if (line.find("watcher cancelled") != std::string::npos) {
      cancel_logged = true;
    }
  }
  EXPECT_TRUE(cancel_logged);
}

TEST(PremiumProtocol, NotInitiatedKeepsPremiumUnescrowed) {
  agents::DefectorStrategy alice(agents::Stage::kT1Initiate);
  agents::HonestStrategy bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(premium_setup(0.3), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kNotInitiated);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.3);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(PremiumProtocol, BobMissedT4AliceStillRecoversPremium) {
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT4Claim);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(premium_setup(0.3), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobMissedT4);
  EXPECT_DOUBLE_EQ(r.alice_premium_back, 0.3);
  // Alice revealed, so she gets token-b AND the refund AND her premium.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.3);
  EXPECT_DOUBLE_EQ(r.alice.final_token_b, 1.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(PremiumProtocol, RationalPremiumAliceRevealsThroughModerateDrop) {
  // Price drops to 1.3: below the basic cutoff (1.481) but above the
  // premium-game cutoff with pr = 0.3 (~1.25) -- the premium keeps a
  // rational Alice honest where the basic game would defect.
  const double pr = 0.3;
  agents::PremiumRationalStrategy alice(agents::Role::kAlice, defaults(), 2.0,
                                        pr);
  agents::PremiumRationalStrategy bob(agents::Role::kBob, defaults(), 2.0, pr);
  const SteppedPricePath drop({{0.0, 2.0}, {6.5, 1.3}});
  const SwapResult with_premium = run_swap(premium_setup(pr), alice, bob, drop);
  EXPECT_EQ(with_premium.outcome, SwapOutcome::kSuccess);

  agents::RationalStrategy basic_alice(agents::Role::kAlice, defaults(), 2.0);
  agents::RationalStrategy basic_bob(agents::Role::kBob, defaults(), 2.0);
  const SwapResult without =
      run_swap(premium_setup(0.0), basic_alice, basic_bob, drop);
  EXPECT_EQ(without.outcome, SwapOutcome::kAliceDeclinedT3);
}

TEST(PremiumProtocol, RealizedUtilityIncludesPremiumUnscaled) {
  agents::HonestStrategy alice, bob;
  const double pr = 0.3;
  const ConstantPricePath path(2.0);
  const SwapSetup setup = premium_setup(pr);
  const SwapResult r = run_swap(setup, alice, bob, path);
  const auto& p = setup.params;
  const double swap_part =
      (1.0 + p.alice.alpha) * 2.0 * std::exp(-p.alice.r * r.schedule.t5);
  const double premium_part =
      pr * std::exp(-p.alice.r * (r.schedule.t3 + p.tau_a));
  EXPECT_NEAR(r.alice.realized_utility, swap_part + premium_part, 1e-12);
}

TEST(PremiumProtocol, ComposesWithCollateral) {
  SwapSetup setup = premium_setup(0.2);
  setup.collateral = 0.4;
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kSuccess);
  EXPECT_DOUBLE_EQ(r.alice_premium_back, 0.2);
  EXPECT_DOUBLE_EQ(r.alice_collateral_back, 0.4);
  EXPECT_DOUBLE_EQ(r.bob_collateral_back, 0.4);
  // Alice: P* + Q + pr initial; spent P*, recovered Q + pr.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 0.6);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(PremiumProtocol, ValidatesSetup) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup = premium_setup(-0.1);
  EXPECT_THROW((void)run_swap(setup, alice, bob, path), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::proto
