// Tests for the success-premium-uncertainty extension
// (src/model/premium_uncertainty).
#include "model/premium_uncertainty.hpp"

#include <gtest/gtest.h>

#include "model/basic_game.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(AlphaPrior, ValidationAndNormalization) {
  AlphaPrior p{{0.1, 0.3}, {2.0, 6.0}};
  p.validate_and_normalize();
  EXPECT_NEAR(p.weights[0], 0.25, 1e-12);
  EXPECT_NEAR(p.weights[1], 0.75, 1e-12);
  EXPECT_NEAR(p.mean(), 0.25 * 0.1 + 0.75 * 0.3, 1e-12);

  AlphaPrior empty{{}, {}};
  EXPECT_THROW(empty.validate_and_normalize(), std::invalid_argument);
  AlphaPrior mismatch{{0.1}, {1.0, 2.0}};
  EXPECT_THROW(mismatch.validate_and_normalize(), std::invalid_argument);
  AlphaPrior negative{{0.1}, {-1.0}};
  EXPECT_THROW(negative.validate_and_normalize(), std::invalid_argument);
  AlphaPrior zero_mass{{0.1, 0.2}, {0.0, 0.0}};
  EXPECT_THROW(zero_mass.validate_and_normalize(), std::invalid_argument);
  AlphaPrior bad_alpha{{-2.0}, {1.0}};
  EXPECT_THROW(bad_alpha.validate_and_normalize(), std::invalid_argument);
}

TEST(AlphaPrior, PointMass) {
  const AlphaPrior p = AlphaPrior::point(0.3);
  EXPECT_EQ(p.alphas.size(), 1u);
  EXPECT_DOUBLE_EQ(p.mean(), 0.3);
}

TEST(UncertainPremiumGame, PointPriorsRecoverCompleteInformation) {
  // Degenerate priors at the true premiums must reproduce the basic game.
  const SwapParams p = defaults();
  const UncertainPremiumGame u(p, AlphaPrior::point(p.alice.alpha),
                               AlphaPrior::point(p.bob.alpha), 2.0);
  const BasicGame complete(p, 2.0);

  for (double price : {1.0, 1.5, 2.0, 2.5}) {
    EXPECT_NEAR(u.bob_t2_cont_bayes(price), complete.bob_t2_cont(price), 1e-9)
        << "price=" << price;
  }
  const auto u_band = u.bob_t2_band_bayes();
  const auto c_band = complete.bob_t2_band();
  ASSERT_TRUE(u_band.has_value());
  ASSERT_TRUE(c_band.has_value());
  EXPECT_NEAR(u_band->lo, c_band->lo, 1e-6);
  EXPECT_NEAR(u_band->hi, c_band->hi, 1e-6);
  EXPECT_NEAR(u.realized_success_rate(), complete.success_rate(), 1e-6);
  EXPECT_NEAR(u.believed_success_rate(), complete.success_rate(), 1e-6);
  EXPECT_NEAR(u.alice_t1_cont_bayes(), complete.alice_t1_cont(), 1e-6);
}

TEST(UncertainPremiumGame, RealizedVsBelievedGapUnderMiscalibration) {
  // Bob believes Alice might have low alpha; Alice actually has the default
  // 0.3.  Believed SR (averaging over pessimistic cutoffs) differs from the
  // realized one.
  const SwapParams p = defaults();
  const AlphaPrior spread{{0.1, 0.3, 0.5}, {1.0, 1.0, 1.0}};
  const UncertainPremiumGame u(p, spread, AlphaPrior::point(p.bob.alpha), 2.0);
  const double realized = u.realized_success_rate();
  const double believed = u.believed_success_rate();
  EXPECT_GT(realized, 0.0);
  EXPECT_GT(believed, 0.0);
  EXPECT_NE(realized, believed);
}

TEST(UncertainPremiumGame, UncertaintyLowersRealizedSuccessRate) {
  // A mean-preserving spread over alpha^A distorts Bob's band relative to
  // the complete-information equilibrium; at Table III defaults this costs
  // success probability (regression-pinned from the validated build).
  const SwapParams p = defaults();
  const BasicGame complete(p, 2.0);
  const AlphaPrior spread{{0.1, 0.3, 0.5}, {1.0, 1.0, 1.0}};
  const UncertainPremiumGame u(p, spread, spread, 2.0);
  EXPECT_LT(u.realized_success_rate(), complete.success_rate());
}

TEST(UncertainPremiumGame, AliceStillInitiatesAtViableRate) {
  const SwapParams p = defaults();
  const AlphaPrior spread{{0.2, 0.4}, {1.0, 1.0}};
  const UncertainPremiumGame u(p, spread, spread, 2.0);
  EXPECT_EQ(u.alice_decision_t1(), Action::kCont);
  EXPECT_DOUBLE_EQ(u.alice_t1_stop(), 2.0);
}

TEST(UncertainPremiumGame, ValidatesInputs) {
  const SwapParams p = defaults();
  EXPECT_THROW(UncertainPremiumGame(p, AlphaPrior::point(0.3),
                                    AlphaPrior::point(0.3), 0.0),
               std::invalid_argument);
  AlphaPrior bad{{0.1}, {0.0}};
  EXPECT_THROW(UncertainPremiumGame(p, bad, AlphaPrior::point(0.3), 2.0),
               std::invalid_argument);
}

TEST(UncertainPremiumGame, HopelessPriorKillsBand) {
  // If Bob is sure Alice has a huge premium but HE has none and is very
  // impatient, no band exists and SR is zero.
  SwapParams p = defaults();
  p.bob.alpha = 0.0;
  p.bob.r = 0.05;
  const UncertainPremiumGame u(p, AlphaPrior::point(0.3),
                               AlphaPrior::point(0.0), 2.0);
  EXPECT_FALSE(u.bob_t2_band_bayes().has_value());
  EXPECT_EQ(u.realized_success_rate(), 0.0);
  EXPECT_EQ(u.believed_success_rate(), 0.0);
}

}  // namespace
}  // namespace swapgame::model
