// Tests for the population-scale market layer (src/market/population):
// fee-market accounting, end-to-end population runs, and the engine's
// market_sim cell (bit-identical across thread counts).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "chain/event_queue.hpp"
#include "chain/ledger.hpp"
#include "engine/batch_engine.hpp"
#include "engine/run_spec.hpp"
#include "market/population/fee_market.hpp"
#include "market/population/population_sim.hpp"

namespace swapgame::market {
namespace {

chain::TxPayload transfer(const char* from, const char* to, double tokens) {
  return chain::TransferPayload{chain::Address{from}, chain::Address{to},
                                chain::Amount::from_tokens(tokens)};
}

struct FeeMarketFixture {
  chain::EventQueue queue;
  chain::Ledger ledger;
  FeeMarket market;

  explicit FeeMarketFixture(FeeMarketConfig config)
      : ledger({chain::ChainId::kChainA, /*tau=*/1.0, /*eps=*/0.25}, queue),
        market(config, ledger, queue) {
    ledger.create_account(chain::Address{"a"}, chain::Amount::from_tokens(100.0));
    ledger.create_account(chain::Address{"b"}, chain::Amount::from_tokens(100.0));
  }
};

TEST(FeeMarket, ValidatesInput) {
  EXPECT_THROW(FeeMarketConfig({0.0, 4, 8}).validate(), std::invalid_argument);
  EXPECT_THROW(FeeMarketConfig({0.25, 0, 8}).validate(), std::invalid_argument);
  EXPECT_THROW(FeeMarketConfig({0.25, 4, 0}).validate(), std::invalid_argument);

  FeeMarketFixture fx({0.25, 4, 8});
  EXPECT_THROW(fx.market.submit(transfer("a", "b", 1.0), -1.0, 1.0, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(fx.market.submit(transfer("a", "b", 1.0), 0.01, -1.0, {}, {}),
               std::invalid_argument);
}

TEST(FeeMarket, IncludesByFeePriorityAndAccountsEveryIntent) {
  // Capacity 2 per block: the two best fees go first, the rest wait.
  FeeMarketFixture fx({0.25, 2, 16});
  std::vector<int> included;
  std::vector<int> dropped;
  const double fees[4] = {0.01, 0.04, 0.02, 0.03};
  for (int i = 0; i < 4; ++i) {
    fx.market.submit(
        transfer("a", "b", 1.0), fees[i], 10.0,
        [&included, i](chain::TxId) { included.push_back(i); },
        [&dropped, i](DropReason) { dropped.push_back(i); });
  }
  fx.queue.run();

  ASSERT_EQ(included.size(), 4u);
  EXPECT_TRUE(dropped.empty());
  // First block: fee 0.04 then 0.03; second block: 0.02 then 0.01.
  EXPECT_EQ(included, (std::vector<int>{1, 3, 2, 0}));
  EXPECT_EQ(fx.market.blocks_sealed(), 2u);
  EXPECT_EQ(fx.market.included(), 4u);
  EXPECT_EQ(fx.market.pending(), 0u);
  EXPECT_NEAR(fx.market.fees_paid(), 0.10, 1e-12);
}

TEST(FeeMarket, EqualFeesIncludeInArrivalOrder) {
  FeeMarketFixture fx({0.25, 8, 16});
  std::vector<int> included;
  for (int i = 0; i < 4; ++i) {
    fx.market.submit(
        transfer("a", "b", 1.0), 0.02, 10.0,
        [&included, i](chain::TxId) { included.push_back(i); }, {});
  }
  fx.queue.run();
  EXPECT_EQ(included, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FeeMarket, EvictsLowestFeeWhenOverCapacity) {
  // Mempool holds 2: the third submission evicts the cheapest bid.
  FeeMarketFixture fx({0.25, 1, 2});
  std::vector<std::pair<int, DropReason>> drops;
  const double fees[3] = {0.05, 0.01, 0.03};
  for (int i = 0; i < 3; ++i) {
    fx.market.submit(
        transfer("a", "b", 1.0), fees[i], 10.0, {},
        [&drops, i](DropReason r) { drops.emplace_back(i, r); });
  }
  // Eviction decided synchronously; notification arrives via the queue.
  EXPECT_EQ(fx.market.pending(), 2u);
  EXPECT_EQ(fx.market.evicted(), 1u);
  fx.queue.run();

  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].first, 1);  // the 0.01 bid lost
  EXPECT_EQ(drops[0].second, DropReason::kEvicted);
  EXPECT_EQ(fx.market.included(), 2u);
  // Conservation of intents: every submission is included or dropped.
  EXPECT_EQ(fx.market.included() + fx.market.evicted() + fx.market.expired(),
            3u);
}

TEST(FeeMarket, ExpiresIntentsPastTheirDeadline) {
  // Capacity 1 per block: the low bid waits, and its deadline lapses
  // before the second seal reaches it.
  FeeMarketFixture fx({0.25, 1, 16});
  std::vector<DropReason> drops;
  fx.market.submit(transfer("a", "b", 1.0), 0.05, 10.0, {}, {});
  fx.market.submit(transfer("a", "b", 1.0), 0.01, 0.3,
                   [](chain::TxId) { FAIL() << "expired intent included"; },
                   [&drops](DropReason r) { drops.push_back(r); });
  fx.queue.run();

  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], DropReason::kExpired);
  EXPECT_EQ(fx.market.included(), 1u);
  EXPECT_EQ(fx.market.expired(), 1u);
  EXPECT_NEAR(fx.market.fees_paid(), 0.05, 1e-12);
}

TEST(FeeMarket, CancelWithdrawsWithoutCallbacks) {
  FeeMarketFixture fx({0.25, 4, 16});
  bool touched = false;
  const std::uint64_t id = fx.market.submit(
      transfer("a", "b", 1.0), 0.02, 10.0,
      [&touched](chain::TxId) { touched = true; },
      [&touched](DropReason) { touched = true; });
  EXPECT_TRUE(fx.market.cancel(id));
  EXPECT_FALSE(fx.market.cancel(id));
  fx.queue.run();
  EXPECT_FALSE(touched);
  EXPECT_EQ(fx.market.included(), 0u);
}

// ---------------------------------------------------------------------------
// Population runs
// ---------------------------------------------------------------------------

PopulationConfig small_config(std::uint64_t sessions = 300) {
  PopulationConfig config;
  config.sessions = sessions;
  config.arrival_rate = 600.0;
  config.seed = 0xFEED5;
  return config;
}

TEST(PopulationSim, ValidatesConfig) {
  PopulationConfig config = small_config();
  config.sessions = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.arrival_rate = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.tau_b = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.rebid_factor = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(PopulationSim, OutcomesPartitionSessionsAndLedgersConserve) {
  PopulationSim sim(small_config());
  const PopulationResult r = sim.run();

  EXPECT_EQ(r.sessions, small_config().sessions);
  EXPECT_EQ(r.never_initiated + r.aborted_t2 + r.aborted_t3 + r.completed +
                r.starved + r.atomicity_lost,
            r.sessions);
  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.arrivals, r.sessions);
  EXPECT_GT(r.blocks_sealed, 0u);
  EXPECT_GT(r.end_time, 0.0);
  EXPECT_GT(r.min_price, 0.0);
  EXPECT_GE(r.max_price, r.min_price);

  // Stats roll-up is consistent with the outcome counts.
  EXPECT_EQ(r.stats.initiated, r.sessions - r.never_initiated);
  EXPECT_EQ(r.stats.completed, r.completed);
  EXPECT_EQ(r.stats.expired, r.starved + r.atomicity_lost);
  ASSERT_GT(r.stats.initiated, 0u);
  const double rate = r.stats.completion_rate();
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  if (r.completed > 0) {
    EXPECT_TRUE(std::isfinite(r.stats.latency_p50));
    EXPECT_LE(r.stats.latency_p50, r.stats.latency_p99);
    // Settlement cannot beat the two confirmation legs.
    EXPECT_GT(r.stats.latency_p50, small_config().tau_a);
  }
}

TEST(PopulationSim, CongestedFeeMarketEvictsAndStarves) {
  PopulationConfig config = small_config(400);
  config.arrival_rate = 2000.0;
  config.fee_a.block_capacity = 6;
  config.fee_b.block_capacity = 6;
  config.fee_a.mempool_capacity = 24;
  config.fee_b.mempool_capacity = 24;
  PopulationSim sim(config);
  const PopulationResult r = sim.run();

  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.txs_evicted, 0u);
  EXPECT_GT(r.rebids, 0u);
  EXPECT_GT(r.starved, 0u);
  // Some sessions still make it through the auction.
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.fees_paid, 0.0);
}

TEST(PopulationSim, RunsAreDeterministic) {
  PopulationSim sim_a(small_config(200));
  PopulationSim sim_b(small_config(200));
  const PopulationResult a = sim_a.run();
  const PopulationResult b = sim_b.run();

  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.orders_cancelled, b.orders_cancelled);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.starved, b.starved);
  EXPECT_EQ(a.never_initiated, b.never_initiated);
  EXPECT_EQ(a.txs_included, b.txs_included);
  EXPECT_EQ(a.txs_evicted, b.txs_evicted);
  EXPECT_EQ(a.rebids, b.rebids);
  // Bit-identical doubles, not just close.
  EXPECT_EQ(a.final_price, b.final_price);
  EXPECT_EQ(a.fees_paid, b.fees_paid);
  EXPECT_EQ(a.stats.latency_p50, b.stats.latency_p50);
  EXPECT_EQ(a.stats.latency_p99, b.stats.latency_p99);
  EXPECT_EQ(a.stats.lockup_token_a_hours, b.stats.lockup_token_a_hours);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(PopulationSim, SeedChangesTheRun) {
  PopulationConfig other = small_config(200);
  other.seed ^= 1;
  PopulationSim sim_a(small_config(200));
  PopulationSim sim_b(other);
  const PopulationResult a = sim_a.run();
  const PopulationResult b = sim_b.run();
  EXPECT_NE(a.final_price, b.final_price);
}

// ---------------------------------------------------------------------------
// Engine integration: the market_sim cell kind
// ---------------------------------------------------------------------------

engine::RunSpec market_spec(std::uint64_t sessions, std::uint64_t seed) {
  engine::RunSpec spec;
  spec.kind = engine::CellKind::kMarketSim;
  spec.population = small_config(sessions);
  spec.population.seed = seed;
  return spec;
}

TEST(EngineMarketSim, CanonicalStringCoversPopulationFields) {
  engine::RunSpec spec = market_spec(200, 7);
  const std::string base = spec.canonical_string();
  EXPECT_NE(base.find("kind=market_sim"), std::string::npos);
  EXPECT_NE(base.find("population.sessions=200"), std::string::npos);
  EXPECT_NE(base.find("population.workers=1"), std::string::npos);

  engine::RunSpec other = market_spec(200, 7);
  other.population.rebid_factor *= 2.0;
  EXPECT_NE(spec.hash(), other.hash());
  // The worker count IS part of the spec hash (a v5 canonical line), even
  // though results are bit-identical across counts: the cache key tracks
  // the full config, the equivalence tests track the semantics.
  other = market_spec(200, 7);
  other.population.workers = 8;
  EXPECT_NE(spec.hash(), other.hash());
  other = market_spec(200, 7);
  other.population.types = PopulationConfig::default_types();
  other.population.types[0].weight += 0.5;
  EXPECT_NE(spec.hash(), other.hash());
  other = market_spec(200, 8);
  EXPECT_NE(spec.hash(), other.hash());
}

TEST(EngineMarketSim, CellMatchesDirectRun) {
  PopulationSim sim(market_spec(200, 7).population);
  const PopulationResult direct = sim.run();
  const engine::RunResult cell = engine::evaluate_cell(market_spec(200, 7));

  EXPECT_TRUE(cell.complete);
  EXPECT_EQ(cell.samples, direct.sessions);
  EXPECT_EQ(cell.at("completed"), static_cast<double>(direct.completed));
  EXPECT_EQ(cell.at("final_price"), direct.final_price);
  EXPECT_EQ(cell.at("latency_p99"), direct.stats.latency_p99);
  EXPECT_EQ(cell.at("fees_paid"), direct.fees_paid);
  EXPECT_EQ(cell.at("conserved"), 1.0);
}

TEST(EngineMarketSim, BatchIsBitIdenticalAcrossThreadCounts) {
  std::vector<engine::RunSpec> specs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    specs.push_back(market_spec(120 + 20 * i, 100 + i));
  }

  engine::EngineConfig serial;
  serial.threads = 1;
  engine::EngineConfig wide;
  wide.threads = 8;
  engine::BatchEngine engine_serial(serial);
  engine::BatchEngine engine_wide(wide);
  const std::vector<engine::RunResult> a = engine_serial.run_batch(specs);
  const std::vector<engine::RunResult> b = engine_wide.run_batch(specs);

  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(a[i].values.size(), b[i].values.size());
    for (std::size_t j = 0; j < a[i].values.size(); ++j) {
      EXPECT_EQ(a[i].values[j].first, b[i].values[j].first);
      // Bitwise comparison: NaN == NaN, -0.0 != 0.0.
      EXPECT_EQ(std::memcmp(&a[i].values[j].second, &b[i].values[j].second,
                            sizeof(double)),
                0)
          << a[i].values[j].first;
    }
    EXPECT_EQ(a[i].to_entry(specs[i].hash()), b[i].to_entry(specs[i].hash()));
  }
}

TEST(EngineMarketSim, ResultRoundTripsThroughCacheEntry) {
  const engine::RunSpec spec = market_spec(120, 3);
  const engine::RunResult result = engine::evaluate_cell(spec);
  const std::string line = result.to_entry(spec.hash());
  const auto parsed = engine::RunResult::parse_entry(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, spec.hash());
  EXPECT_EQ(parsed->second.to_entry(spec.hash()), line);
}

}  // namespace
}  // namespace swapgame::market
