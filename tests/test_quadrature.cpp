// Unit tests for adaptive and fixed-order quadrature (src/math/quadrature).
#include "math/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::math {
namespace {

TEST(Integrate, ExactOnPolynomials) {
  // Simpson is exact on cubics even before adaptation.
  const auto cubic = [](double x) { return 3.0 * x * x * x - x + 2.0; };
  const auto result = integrate(cubic, -1.0, 2.0);
  // antiderivative: 3/4 x^4 - x^2/2 + 2x
  const double expected = (0.75 * 16 - 2.0 + 4.0) - (0.75 - 0.5 - 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, expected, 1e-12);
}

TEST(Integrate, KnownTranscendentalIntegrals) {
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0, M_PI).value,
              2.0, 1e-10);
  EXPECT_NEAR(integrate([](double x) { return std::exp(-x); }, 0.0, 5.0).value,
              1.0 - std::exp(-5.0), 1e-10);
  EXPECT_NEAR(integrate([](double x) { return 1.0 / x; }, 1.0, M_E).value, 1.0,
              1e-10);
}

TEST(Integrate, EmptyIntervalIsZero) {
  const auto result = integrate([](double) { return 42.0; }, 3.0, 3.0);
  EXPECT_EQ(result.value, 0.0);
  EXPECT_TRUE(result.converged);
}

TEST(Integrate, ReversedBoundsFlipSign) {
  const auto fwd = integrate([](double x) { return x * x; }, 0.0, 2.0);
  const auto rev = integrate([](double x) { return x * x; }, 2.0, 0.0);
  EXPECT_NEAR(fwd.value, -rev.value, 1e-12);
}

TEST(Integrate, RejectsNonFiniteBounds) {
  EXPECT_THROW(
      integrate([](double) { return 0.0; }, 0.0,
                std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  EXPECT_THROW(integrate([](double) { return 0.0; }, std::nan(""), 1.0),
               std::invalid_argument);
}

TEST(Integrate, NarrowSpikeIsCaptured) {
  // A Gaussian spike of width 1e-3 centered mid-interval: the initial
  // uniform panels plus adaptation must find it.
  const double s = 1e-3;
  const auto spike = [s](double x) {
    const double z = (x - 0.5) / s;
    return std::exp(-0.5 * z * z);
  };
  const auto result = integrate(spike, 0.0, 1.0);
  EXPECT_NEAR(result.value, s * std::sqrt(2.0 * M_PI), 1e-9);
}

TEST(Integrate, ReportsEvaluationsAndError) {
  const auto result = integrate([](double x) { return std::sin(x); }, 0.0, 1.0);
  EXPECT_GT(result.evaluations, 0);
  EXPECT_GE(result.error_estimate, 0.0);
  EXPECT_LT(result.error_estimate, 1e-8);
}

TEST(IntegrateToInfinity, GaussianTail) {
  // int_0^inf e^{-x^2/2} dx = sqrt(pi/2)
  const auto result = integrate_to_infinity(
      [](double x) { return std::exp(-0.5 * x * x); }, 0.0);
  EXPECT_NEAR(result.value, std::sqrt(M_PI / 2.0), 1e-8);
}

TEST(IntegrateToInfinity, ShiftedExponential) {
  // int_3^inf e^{-x} dx = e^{-3}
  const auto result =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 3.0);
  EXPECT_NEAR(result.value, std::exp(-3.0), 1e-10);
}

TEST(IntegrateToInfinity, RejectsNonFiniteLowerBound) {
  EXPECT_THROW(integrate_to_infinity([](double) { return 0.0; },
                                     std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(GaussLegendre, MatchesAdaptiveOnSmoothIntegrand) {
  const auto f = [](double x) { return std::exp(-x) * std::cos(3.0 * x); };
  const double adaptive = integrate(f, 0.0, 4.0).value;
  EXPECT_NEAR(gauss_legendre(f, 0.0, 4.0, 8), adaptive, 1e-10);
}

TEST(GaussLegendre, ExactOnHighDegreePolynomials) {
  // 15-point GL is exact up to degree 29 per panel.
  const auto poly = [](double x) { return std::pow(x, 13); };
  EXPECT_NEAR(gauss_legendre(poly, 0.0, 1.0, 1), 1.0 / 14.0, 1e-13);
}

TEST(GaussLegendre, ClampsPanelsAndValidatesBounds) {
  EXPECT_NO_THROW(gauss_legendre([](double) { return 1.0; }, 0.0, 1.0, 0));
  EXPECT_THROW(gauss_legendre([](double) { return 1.0; }, 0.0,
                              std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::math
