// The public RunSpec/RunResult JSON codec (docs/SERVICE.md).
//
// What is pinned here, in descending order of blast radius:
//   * the canonical-string bytes (via golden SHA-256 hashes captured from
//     the pre-visitor implementation) -- every cache entry, checkpoint
//     and content address depends on them;
//   * to_json -> from_json -> to_json byte-identity, including non-finite
//     doubles, >2^53 counters and tokenized composites, across every cell
//     kind and across seeded pseudo-random specs;
//   * the structured error surface: stale schema versions are
//     kUnsupportedVersion, everything malformed is kInvalidSpec with a
//     message naming the offending key;
//   * RunResult::to_entry / from_json round-trips (the one result codec
//     shared by disk cache, checkpoint manifest and the wire protocol).
#include "engine/run_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using swapgame::Status;
using swapgame::StatusCode;
using swapgame::engine::CellKind;
using swapgame::engine::RunResult;
using swapgame::engine::RunSpec;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Round-trips `spec` through the codec and checks every byte-level
/// invariant the service depends on.
void expect_round_trip(const RunSpec& spec) {
  const std::string json = spec.to_json();
  RunSpec reparsed;
  const Status status = RunSpec::from_json(json, &reparsed);
  ASSERT_TRUE(status.is_ok()) << status.to_string() << "\n" << json;
  EXPECT_EQ(reparsed.to_json(), json);
  EXPECT_EQ(reparsed.canonical_string(), spec.canonical_string());
  EXPECT_EQ(reparsed.hash(), spec.hash());
  EXPECT_EQ(reparsed.label, spec.label);
}

/// The golden spec pair whose canonical hashes were captured from the
/// pre-refactor (hand-written) canonical_string implementation.
RunSpec golden_market_spec() {
  RunSpec b;
  b.kind = CellKind::kMarketSim;
  b.mc.evaluator = swapgame::sim::McEvaluator::kProtocol;
  b.mc.bob_strategy = swapgame::sim::McStrategy::kHonest;
  b.mc.faults.chain_a.drop_prob = 0.25;
  b.mc.faults.chain_a.censorship = {{1.0, 2.5}};
  b.mc.faults.bob_offline = {{0.5, 0.75}, {3.0, 4.0}};
  b.mc.profile.alice_cutoff = 1.5;
  b.grid_lo = 1.0;
  b.grid_hi = 3.0;
  b.grid_count = 4;
  b.mechanism = swapgame::sim::Mechanism::kCollateral;
  b.deposit = 0.7;
  b.population.types = swapgame::market::PopulationConfig::default_types();
  b.population.compaction.enabled = true;
  return b;
}

TEST(SpecJson, GoldenCanonicalHashesPinned) {
  // These hashes are content addresses: if either changes, every cached
  // result is orphaned.  Bump kRunSpecSchemaVersion (and recapture) on
  // any INTENTIONAL canonical change; never let it drift silently.
  EXPECT_EQ(
      RunSpec{}.hash(),
      "b1c2672fb6a15df82df76b67a566e30ce8f8bcdcd85f9d6a8e625407c7a406e4");
  EXPECT_EQ(
      golden_market_spec().hash(),
      "d93a9728de3d2ab11a44b36850d8b4fe24c2d8823fd1dd470c53bdfe6d81930b");
}

TEST(SpecJson, RoundTripsEveryCellKind) {
  for (const CellKind kind :
       {CellKind::kAnalyticSr, CellKind::kSrGrid, CellKind::kSensitivity,
        CellKind::kJitterCell, CellKind::kScenario, CellKind::kMc,
        CellKind::kMarketSim}) {
    RunSpec spec;
    spec.kind = kind;
    spec.label = "kind-" + std::string(to_string(kind));
    expect_round_trip(spec);
  }
}

TEST(SpecJson, RoundTripsLoadedSpec) { expect_round_trip(golden_market_spec()); }

TEST(SpecJson, RoundTripsNonFiniteAndExtremeValues) {
  RunSpec spec;
  spec.kind = CellKind::kSrGrid;
  spec.label = "torture \"label\"\n\twith\\escapes";
  spec.grid_lo = kNan;  // the documented "use the feasible band" marker
  spec.grid_hi = kInf;
  spec.grid_offset = -kInf;
  spec.mc.params.gbm.mu = -0.0;
  spec.mc.params.alice.alpha = 5e-324;  // smallest subnormal
  spec.mc.params.bob.r = 1.7976931348623157e308;
  spec.mc.config.samples = 18446744073709551615ull;  // u64 max, > 2^53
  spec.mc.config.seed = 9007199254740993ull;         // 2^53 + 1
  spec.mc.faults.chain_b.censorship = {{kNan, kInf}};
  expect_round_trip(spec);
}

TEST(SpecJson, FuzzishRandomSpecsRoundTrip) {
  std::mt19937_64 rng(0xC0DEC);
  const auto rnd = [&rng]() -> double {
    switch (rng() % 8) {
      case 0:
        return kNan;
      case 1:
        return kInf;
      case 2:
        return -kInf;
      default:
        // A wide, sign-mixed spread with full mantissas.
        return std::ldexp(static_cast<double>(rng()) -
                              static_cast<double>(rng()),
                          static_cast<int>(rng() % 64) - 32);
    }
  };
  for (int iteration = 0; iteration < 64; ++iteration) {
    RunSpec spec;
    spec.kind = static_cast<CellKind>(rng() % 7);
    spec.label = "fuzz-" + std::to_string(iteration);
    spec.mc.params.alice.alpha = rnd();
    spec.mc.params.bob.r = rnd();
    spec.mc.params.p_t0 = rnd();
    spec.mc.params.gbm.sigma = rnd();
    spec.mc.p_star = rnd();
    spec.mc.collateral = rnd();
    spec.mc.premium = rnd();
    spec.mc.config.samples = rng();
    spec.mc.config.seed = rng();
    spec.mc.config.target_half_width = rnd();
    spec.mc.secret_seed = rng();
    spec.grid_count = static_cast<int>(rng() % 1000);
    spec.grid_offset = rnd();
    spec.grid_lo = rnd();
    spec.grid_hi = rnd();
    spec.deposit = rnd();
    const std::size_t windows = rng() % 3;
    for (std::size_t w = 0; w < windows; ++w) {
      spec.mc.faults.alice_offline.push_back({rnd(), rnd()});
      spec.mc.faults.chain_a.halts.push_back({rnd(), rnd()});
    }
    if (rng() % 2 == 0) {
      swapgame::market::TraderType type;
      type.agent.alpha = rnd();
      type.agent.r = rnd();
      type.weight = rnd();
      spec.population.types.push_back(type);
    }
    spec.population.sessions = rng();
    spec.population.seed = rng();
    expect_round_trip(spec);
  }
}

TEST(SpecJson, JsonKeysMirrorCanonicalLines) {
  // Drift guard: the JSON object must carry exactly the canonical keys,
  // in canonical order, plus the leading "v" and "label".  A field added
  // to one traversal but not the other fails here.
  const RunSpec spec = golden_market_spec();
  swapgame::obs::json::Value root;
  ASSERT_TRUE(swapgame::obs::json::parse(spec.to_json(), root).is_ok());
  std::vector<std::string> json_keys;
  for (const swapgame::obs::json::Member& member : root.as_object()) {
    json_keys.push_back(member.first);
  }
  std::vector<std::string> canonical_keys = {"v", "label"};
  const std::string canonical = spec.canonical_string();
  std::size_t pos = canonical.find('\n') + 1;  // skip the version line
  while (pos < canonical.size()) {
    const std::size_t eq = canonical.find('=', pos);
    canonical_keys.push_back(canonical.substr(pos, eq - pos));
    pos = canonical.find('\n', eq) + 1;
  }
  EXPECT_EQ(json_keys, canonical_keys);
}

TEST(SpecJson, RejectsStaleAndFutureSchemaVersions) {
  RunSpec out;
  std::string json = RunSpec{}.to_json();
  const std::string needle =
      "\"v\":" +
      std::to_string(swapgame::engine::kRunSpecSchemaVersion);
  for (const char* version : {"\"v\":4", "\"v\":6", "\"v\":999"}) {
    std::string stale = json;
    stale.replace(stale.find(needle), needle.size(), version);
    const Status status = RunSpec::from_json(stale, &out);
    EXPECT_EQ(status.code(), StatusCode::kUnsupportedVersion)
        << status.to_string();
    EXPECT_NE(status.message().find("this build speaks"), std::string::npos);
  }
}

TEST(SpecJson, RejectsUnknownMissingAndMistypedKeys) {
  RunSpec out;
  const std::string json = RunSpec{}.to_json();

  std::string unknown = json;
  unknown.insert(unknown.size() - 1, ",\"bogus\":1");
  Status status = RunSpec::from_json(unknown, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidSpec);
  EXPECT_NE(status.message().find("unknown key 'bogus'"), std::string::npos)
      << status.to_string();

  std::string missing = json;
  const std::size_t kind_pos = missing.find(",\"kind\":\"mc\"");
  ASSERT_NE(kind_pos, std::string::npos);
  missing.erase(kind_pos, std::string(",\"kind\":\"mc\"").size());
  status = RunSpec::from_json(missing, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidSpec);
  EXPECT_NE(status.message().find("missing key 'kind'"), std::string::npos)
      << status.to_string();

  std::string mistyped = json;
  mistyped.replace(mistyped.find("\"kind\":\"mc\""),
                   std::string("\"kind\":\"mc\"").size(),
                   "\"kind\":\"warp_drive\"");
  status = RunSpec::from_json(mistyped, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidSpec);
  EXPECT_NE(status.message().find("kind"), std::string::npos);

  status = RunSpec::from_json("this is not json", &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidSpec);
  status = RunSpec::from_json("[1,2,3]", &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidSpec);
}

TEST(SpecJson, RejectsMalformedCompositeTokens) {
  RunSpec out;
  std::string json = RunSpec{}.to_json();
  const std::string field = "\"faults.alice_offline\":\"\"";
  ASSERT_NE(json.find(field), std::string::npos);
  for (const char* bad :
       {"\"faults.alice_offline\":\"1.0:2.0\"",      // missing terminator
        "\"faults.alice_offline\":\"1.0;\"",          // missing field
        "\"faults.alice_offline\":\"1.0:2.0:3.0;\"",  // extra field
        "\"faults.alice_offline\":\"a:b;\""}) {       // non-numeric
    std::string mutated = json;
    mutated.replace(mutated.find(field), field.size(), bad);
    const Status status = RunSpec::from_json(mutated, &out);
    EXPECT_EQ(status.code(), StatusCode::kInvalidSpec) << bad;
    EXPECT_NE(status.message().find("faults.alice_offline"),
              std::string::npos)
        << status.to_string();
  }
}

TEST(ResultEntry, RoundTripsTortureResult) {
  RunResult result;
  result.samples = 18446744073709551615ull;
  result.rounds = 9007199254740993ull;
  result.set("sr", 0.25);
  result.set("nan metric", kNan);
  result.set("inf\"quoted\"", kInf);
  result.set("neg", -kInf);
  result.set("tiny", 5e-324);
  result.trace = "line1\nline2\t{\"json\":\"inside\"}\\backslash";
  const std::string hash(64, 'a');

  const std::string entry = result.to_entry(hash);
  const auto parsed = RunResult::parse_entry(entry);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, hash);
  EXPECT_EQ(parsed->second.to_entry(hash), entry);
  EXPECT_EQ(parsed->second.samples, result.samples);
  EXPECT_EQ(parsed->second.rounds, result.rounds);
  EXPECT_EQ(parsed->second.trace, result.trace);
  ASSERT_EQ(parsed->second.values.size(), result.values.size());
  EXPECT_TRUE(std::isnan(parsed->second.values[1].second));
}

TEST(ResultEntry, StructuredErrorCodes) {
  const auto parse = [](const std::string& text) {
    swapgame::obs::json::Value value;
    EXPECT_TRUE(swapgame::obs::json::parse(text, value).is_ok()) << text;
    std::string hash;
    RunResult result;
    return RunResult::from_json(value, &hash, &result);
  };
  RunResult ok_result;
  ok_result.set("sr", 1.0);
  const std::string good = ok_result.to_entry(std::string(64, 'b'));

  // Stale schema: a distinct, retry-after-upgrade code.
  std::string stale = good;
  stale.replace(stale.find("{\"v\":5"), 6, "{\"v\":4");
  EXPECT_EQ(parse(stale).code(), StatusCode::kUnsupportedVersion);

  // Anything structurally wrong is cache corruption.
  std::string extra = good;
  extra.insert(extra.size() - 1, ",\"extra\":1");
  EXPECT_EQ(parse(extra).code(), StatusCode::kCacheCorrupt);
  EXPECT_EQ(parse("{\"v\":5,\"hash\":\"x\"}").code(),
            StatusCode::kCacheCorrupt);
  EXPECT_EQ(parse("{\"v\":5,\"hash\":\"x\",\"samples\":1,\"rounds\":0,"
                  "\"values\":[[1,2]],\"trace\":\"\"}")
                .code(),
            StatusCode::kCacheCorrupt);

  // And parse_entry (the cache-facing wrapper) maps every failure to
  // "entry absent".
  EXPECT_FALSE(RunResult::parse_entry(stale).has_value());
  EXPECT_FALSE(RunResult::parse_entry("garbage").has_value());
}

}  // namespace
