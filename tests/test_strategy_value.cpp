// Tests for arbitrary-profile valuation and best responses
// (src/model/strategy_value), including the mutual-best-response
// (equilibrium) verification of the backward-induction solution.
#include "model/strategy_value.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(StrategyEvaluator, EquilibriumProfileMatchesBasicGame) {
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const BasicGame game(defaults(), 2.0);
  const ThresholdProfile eq = evaluator.equilibrium();
  EXPECT_NEAR(evaluator.alice_value(eq), game.alice_t1_cont(), 1e-6);
  EXPECT_NEAR(evaluator.bob_value(eq), game.bob_t1_cont(), 1e-6);
  EXPECT_NEAR(evaluator.success_rate(eq), game.success_rate(), 1e-6);
}

TEST(StrategyEvaluator, HonestProfileAlwaysSucceeds) {
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const ThresholdProfile honest = ThresholdProfile::honest();
  EXPECT_NEAR(evaluator.success_rate(honest), 1.0, 1e-6);
}

TEST(StrategyEvaluator, AliceBestResponseIsDominant) {
  // Alice's optimal cutoff does not depend on Bob's region: it is the
  // pointwise-optimal Eq. (18) threshold.
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const BasicGame game(defaults(), 2.0);
  EXPECT_NEAR(evaluator.alice_best_response_cutoff(), game.alice_t3_cutoff(),
              1e-12);
}

TEST(StrategyEvaluator, BobBestResponseToEquilibriumCutoffIsTheBand) {
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const BasicGame game(defaults(), 2.0);
  const math::IntervalSet response =
      evaluator.bob_best_response(game.alice_t3_cutoff());
  const auto band = game.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  ASSERT_EQ(response.size(), 1u);
  EXPECT_NEAR(response.intervals()[0].lo, band->lo, 1e-5);
  EXPECT_NEAR(response.intervals()[0].hi, band->hi, 1e-5);
}

TEST(StrategyEvaluator, EquilibriumIsMutualBestResponse) {
  // No profitable unilateral deviation in threshold space.
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const ThresholdProfile eq = evaluator.equilibrium();
  const double alice_eq_value = evaluator.alice_value(eq);
  const double bob_eq_value = evaluator.bob_value(eq);

  // Alice deviations: alternative cutoffs against Bob's equilibrium region.
  for (double cutoff : {0.0, 0.8, 1.2, 1.6, 2.0, 3.0}) {
    ThresholdProfile deviation = eq;
    deviation.alice_cutoff = cutoff;
    EXPECT_LE(evaluator.alice_value(deviation), alice_eq_value + 1e-7)
        << "cutoff=" << cutoff;
  }
  // Bob deviations: alternative bands against Alice's equilibrium cutoff.
  const auto band = eq.bob_region.intervals()[0];
  const struct {
    double lo;
    double hi;
  } bands[] = {{0.0, band.hi},           // lock at all low prices
               {band.lo, band.hi * 2.0}, // lock at all high prices
               {band.lo * 1.3, band.hi * 0.8},  // too narrow
               {0.0, 100.0},             // honest
               {band.lo * 0.5, band.hi * 1.2}};
  for (const auto& alt : bands) {
    ThresholdProfile deviation = eq;
    deviation.bob_region = math::IntervalSet({{alt.lo, alt.hi}});
    EXPECT_LE(evaluator.bob_value(deviation), bob_eq_value + 1e-7)
        << "band=(" << alt.lo << "," << alt.hi << ")";
  }
}

TEST(StrategyEvaluator, CommitmentSquareIsPrisonersDilemma) {
  // Both-committed dominates both-rational for BOTH agents, yet each has a
  // unilateral incentive to deviate -- the structural reason the paper's
  // Section IV collateral is needed.
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const ThresholdProfile rational = evaluator.equilibrium();
  const ThresholdProfile honest = ThresholdProfile::honest();

  const double alice_rr = evaluator.alice_value(rational);
  const double bob_rr = evaluator.bob_value(rational);
  const double alice_cc = evaluator.alice_value(honest);
  const double bob_cc = evaluator.bob_value(honest);
  EXPECT_GT(alice_cc, alice_rr);
  EXPECT_GT(bob_cc, bob_rr);

  // Unilateral deviation from (C, C) pays.
  ThresholdProfile alice_deviates = honest;
  alice_deviates.alice_cutoff = evaluator.alice_best_response_cutoff();
  EXPECT_GT(evaluator.alice_value(alice_deviates), alice_cc);

  ThresholdProfile bob_deviates = honest;
  bob_deviates.bob_region = evaluator.bob_best_response(0.0);
  EXPECT_GT(evaluator.bob_value(bob_deviates), bob_cc);
}

TEST(StrategyEvaluator, NeverLockRegionGivesBobOutsideOption) {
  const StrategyEvaluator evaluator(defaults(), 2.0);
  ThresholdProfile never;
  never.alice_cutoff = evaluator.alice_best_response_cutoff();
  never.bob_region = math::IntervalSet();  // Bob never locks
  EXPECT_EQ(evaluator.success_rate(never), 0.0);
  // Bob's value = discounted expected token-b price (he just holds).
  const math::GbmLaw law(defaults().gbm, defaults().p_t0, defaults().tau_a);
  EXPECT_NEAR(evaluator.bob_value(never),
              law.expectation() * std::exp(-defaults().bob.r * defaults().tau_a),
              1e-9);
  // Alice's value = discounted refund.
  const BasicGame game(defaults(), 2.0);
  EXPECT_NEAR(evaluator.alice_value(never),
              game.alice_t2_stop() *
                  std::exp(-defaults().alice.r * defaults().tau_a),
              1e-9);
}

TEST(StrategyEvaluator, SuccessRateMonotoneInCommitment) {
  // Lowering Alice's cutoff (more honest) weakly raises completion.
  const StrategyEvaluator evaluator(defaults(), 2.0);
  const ThresholdProfile eq = evaluator.equilibrium();
  double prev = -1.0;
  for (double cutoff : {2.0, 1.5, 1.0, 0.5, 0.0}) {
    ThresholdProfile profile = eq;
    profile.alice_cutoff = cutoff;
    const double sr = evaluator.success_rate(profile);
    EXPECT_GE(sr, prev - 1e-9) << "cutoff=" << cutoff;
    prev = sr;
  }
}

}  // namespace
}  // namespace swapgame::model
