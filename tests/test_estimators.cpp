// Tests for the variance-reduced batched Monte-Carlo engine
// (sim/estimators.hpp) and the math primitives it is built on:
//
//  * every estimator configuration (plain / antithetic / control-variate /
//    both, fixed-budget and CI-adaptive) agrees with the analytic
//    P(success) within its own confidence interval at fixed seeds;
//  * estimates are bit-identical at threads=1 and threads=8, including
//    under adaptive stopping (the stop rule only sees merged rounds);
//  * the inverse-CDF draw is monotone in the underlying uniform and
//    antisymmetric under u -> 1-u -- the properties common random numbers
//    and antithetic pairing rely on;
//  * the block RNG fills are bit-identical to sequential scalar draws;
//  * ControlVariateAccumulator::merge is exact (streamed == merged halves).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "math/rng.hpp"
#include "math/special.hpp"
#include "math/stats.hpp"
#include "model/basic_game.hpp"
#include "model/strategy_value.hpp"
#include "sim/estimators.hpp"
#include "sim/mc_driver.hpp"
#include "sim/mc_runner.hpp"

namespace swapgame::sim {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

constexpr double kPStar = 2.0;

VrEstimate model_vr(const model::SwapParams& params, double p_star,
                    const McConfig& cfg) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kModel;
  spec.params = params;
  spec.p_star = p_star;
  spec.config = cfg;
  return McRunner::run(spec).vr;
}

VrEstimate profile_vr(const model::SwapParams& params,
                      const model::ThresholdProfile& profile,
                      const McConfig& cfg) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProfile;
  spec.params = params;
  spec.profile = profile;
  spec.config = cfg;
  return McRunner::run(spec).vr;
}

McConfig base_config() {
  McConfig cfg;
  cfg.samples = 1u << 16;
  cfg.seed = 424242;
  return cfg;
}

// --- agreement with the analytic success rate ----------------------------

struct EstimatorCase {
  const char* name;
  bool antithetic;
  bool control_variate;
};

const EstimatorCase kCases[] = {
    {"plain", false, false},
    {"antithetic", true, false},
    {"control_variate", false, true},
    {"antithetic_cv", true, true},
};

TEST(VrEstimators, AllConfigurationsMatchAnalyticWithinCi) {
  const model::SwapParams params = defaults();
  const model::BasicGame game(params, kPStar);
  const double analytic = game.success_rate();
  for (const EstimatorCase& c : kCases) {
    McConfig cfg = base_config();
    cfg.antithetic = c.antithetic;
    cfg.control_variate = c.control_variate;
    cfg.ci_confidence = 0.999;
    const VrEstimate est = model_vr(params, kPStar, cfg);
    ASSERT_EQ(est.samples, cfg.samples) << c.name;
    // NaN-safe: a NaN estimate must fail, not vacuously pass.
    ASSERT_TRUE(std::isfinite(est.success_rate())) << c.name;
    EXPECT_LE(std::abs(est.success_rate() - analytic),
              est.half_width() + 1e-4)
        << c.name;
    // The realized counters are CI-consistent with the analytic rate too
    // (under smoothing they are a separate observation path).
    const auto ci = est.mc.success.wilson_interval(0.999);
    EXPECT_GE(analytic, ci.lo - 1e-4) << c.name;
    EXPECT_LE(analytic, ci.hi + 1e-4) << c.name;
  }
}

TEST(VrEstimators, PlainEngineBacksRunModelMc) {
  // Deliberate legacy-equivalence check: run_model_mc is a thin (now
  // deprecated, see CHANGES.md) wrapper over the VR engine with the flags
  // off: counters must agree exactly, and the plain accumulator mean must
  // equal the realized conditional success rate.
  const model::SwapParams params = defaults();
  const McConfig cfg = base_config();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const McEstimate scalar = run_model_mc(params, kPStar, 0.0, cfg);
#pragma GCC diagnostic pop
  const VrEstimate vr = model_vr(params, kPStar, cfg);
  EXPECT_EQ(scalar.success.trials(), vr.mc.success.trials());
  EXPECT_EQ(scalar.success.successes(), vr.mc.success.successes());
  EXPECT_EQ(scalar.initiated.successes(), vr.mc.initiated.successes());
  // Streamed Welford mean vs. the counters' ratio: same quantity through
  // two summation orders, so tight tolerance rather than bitwise.
  EXPECT_NEAR(vr.acc.mean_y(), vr.mc.conditional_success_rate(), 1e-12);
}

TEST(VrEstimators, ProfileEngineMatchesEquilibriumModelEngine) {
  // Playing the equilibrium profile through the profile engine must give
  // the same draws-to-outcomes map as the model engine at the same seed.
  const model::SwapParams params = defaults();
  const model::StrategyEvaluator eval(params, kPStar);
  const model::ThresholdProfile eq = eval.equilibrium();
  McConfig cfg = base_config();
  cfg.control_variate = true;
  const VrEstimate via_profile = profile_vr(params, eq, cfg);
  const VrEstimate via_model = model_vr(params, kPStar, cfg);
  EXPECT_EQ(via_profile.mc.success.successes(),
            via_model.mc.success.successes());
  // The two engines derive the analytic control mean through different
  // code paths (game object vs. lognormal region mass), so the adjusted
  // estimates agree to rounding, not bitwise.
  EXPECT_NEAR(via_profile.success_rate(), via_model.success_rate(), 1e-12);
}

// --- variance reduction actually reduces variance ------------------------

TEST(VrEstimators, ControlVariatePlusAntitheticShrinksHalfWidth) {
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  const VrEstimate plain = model_vr(params, kPStar, cfg);
  cfg.antithetic = true;
  cfg.control_variate = true;
  const VrEstimate reduced = model_vr(params, kPStar, cfg);
  ASSERT_GT(plain.half_width(), 0.0);
  // The issue's acceptance bar is >= 4x fewer samples to equal precision,
  // i.e. >= 2x narrower CI at equal samples.  Measured: ~7x narrower.
  EXPECT_LT(reduced.half_width(), 0.5 * plain.half_width());
}

// --- determinism across thread counts ------------------------------------

TEST(VrEstimators, BitIdenticalAcrossThreadCounts) {
  const model::SwapParams params = defaults();
  for (const EstimatorCase& c : kCases) {
    for (const bool adaptive : {false, true}) {
      McConfig cfg = base_config();
      cfg.antithetic = c.antithetic;
      cfg.control_variate = c.control_variate;
      if (adaptive) {
        cfg.samples = 1u << 19;
        cfg.target_half_width = c.control_variate ? 0.004 : 0.02;
      }
      cfg.threads = 1;
      const VrEstimate a = model_vr(params, kPStar, cfg);
      cfg.threads = 8;
      const VrEstimate b = model_vr(params, kPStar, cfg);
      EXPECT_EQ(a.samples, b.samples) << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.rounds, b.rounds) << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.mc.success.successes(), b.mc.success.successes())
          << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.mc.success.trials(), b.mc.success.trials())
          << c.name << " adaptive=" << adaptive;
      // Bitwise equality of the floating-point estimate, not approximate.
      EXPECT_EQ(a.acc.mean_y(), b.acc.mean_y())
          << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.success_rate(), b.success_rate())
          << c.name << " adaptive=" << adaptive;
    }
  }
}

TEST(VrEstimators, ProtocolAdaptiveBitIdenticalAcrossThreadCounts) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProtocol;
  spec.params = defaults();
  spec.p_star = kPStar;
  McConfig cfg;
  cfg.samples = 2048;
  cfg.seed = 7;
  cfg.target_half_width = 0.03;
  cfg.min_samples = 512;
  cfg.threads = 1;
  spec.config = cfg;
  const McEstimate a = McRunner::run(spec).estimate;
  spec.config.threads = 8;
  const McEstimate b = McRunner::run(spec).estimate;
  EXPECT_EQ(a.success.trials(), b.success.trials());
  EXPECT_EQ(a.success.successes(), b.success.successes());
  EXPECT_EQ(a.alice_utility.mean(), b.alice_utility.mean());
  EXPECT_EQ(a.bob_utility.mean(), b.bob_utility.mean());
  // Adaptive stopping engaged: fewer samples than the cap, above the floor.
  EXPECT_LT(a.success.trials(), cfg.samples);
  EXPECT_GE(a.success.trials(), cfg.min_samples);
}

// --- adaptive stopping ----------------------------------------------------

TEST(VrEstimators, AdaptiveStoppingReachesTargetUnderBudget) {
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  cfg.samples = 1u << 21;
  cfg.antithetic = true;
  cfg.control_variate = true;
  cfg.target_half_width = 0.002;
  const VrEstimate est = model_vr(params, kPStar, cfg);
  EXPECT_LE(est.half_width(), cfg.target_half_width);
  EXPECT_LT(est.samples, cfg.samples);
  EXPECT_GE(est.rounds, 1u);
  // Rounds are whole multiples of the fixed chunk grid -- the property the
  // cross-thread determinism of adaptive runs rests on.
  EXPECT_EQ(est.samples % detail::kModelMcChunk, 0u);
}

TEST(VrEstimators, MinSamplesFloorIsRespected) {
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  cfg.samples = 1u << 19;
  cfg.control_variate = true;
  cfg.target_half_width = 0.5;  // trivially reached in the first round
  cfg.min_samples = 3 * detail::kModelMcChunk * detail::kVrRoundChunks;
  const VrEstimate est = model_vr(params, kPStar, cfg);
  EXPECT_GE(est.samples, cfg.min_samples);
}

// --- common random numbers ------------------------------------------------

TEST(VrEstimators, CommonRandomNumbersKeepSweepCurvesSmooth) {
  // Every sample consumes exactly two normals regardless of its outcome,
  // so equal (seed, index) means equal draws at every parameter point: a
  // tiny parameter nudge flips almost no samples, and the MC curve moves
  // by ~the analytic delta instead of by fresh sampling noise.
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  const VrEstimate at = model_vr(params, kPStar, cfg);
  const VrEstimate nudged = model_vr(params, kPStar + 1e-4, cfg);
  const model::BasicGame g0(params, kPStar);
  const model::BasicGame g1(params, kPStar + 1e-4);
  const double analytic_delta = g1.success_rate() - g0.success_rate();
  const double mc_delta = nudged.success_rate() - at.success_rate();
  // Under CRN the delta's noise is driven by the (tiny) symmetric
  // difference of the acceptance regions, far below one half-width.
  EXPECT_LT(std::abs(mc_delta - analytic_delta), 0.2 * at.half_width());
}

// --- inverse-CDF draw properties -----------------------------------------

TEST(RngPrimitives, NormalQuantileMonotoneAndAntisymmetric) {
  const int n = 2000;
  double prev = -std::numeric_limits<double>::infinity();
  for (int i = 1; i < n; ++i) {
    const double u = static_cast<double>(i) / n;
    const double z = math::normal_quantile(u);
    EXPECT_GT(z, prev) << "u=" << u;  // strictly monotone in the uniform
    prev = z;
    // Antithetic symmetry: the u -> 1-u mirror is the z -> -z mirror.
    EXPECT_NEAR(math::normal_quantile(1.0 - u), -z,
                1e-9 * (1.0 + std::abs(z)));
  }
}

TEST(RngPrimitives, BlockFillsMatchSequentialScalarDraws) {
  constexpr std::size_t kN = 4096;
  math::Xoshiro256 a(99), b(99);
  std::vector<double> block(kN);
  math::fill_normal_inverse_cdf(a, block.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(block[i], math::normal_inverse_cdf_draw(b)) << i;  // bitwise
  }
  // And the uniform fill consumes exactly one RNG word per deviate, so the
  // two generators are in the same state afterwards.
  EXPECT_EQ(a(), b());
}

// --- control-variate machinery -------------------------------------------

TEST(ControlVariate, MergeMatchesStreamedAccumulation) {
  math::Xoshiro256 rng(5);
  std::vector<double> ys, xs;
  for (int i = 0; i < 257; ++i) {  // odd count: uneven halves
    const double x = math::normal_inverse_cdf_draw(rng);
    ys.push_back(0.3 * x + math::normal_inverse_cdf_draw(rng));
    xs.push_back(x);
  }
  math::ControlVariateAccumulator streamed, lo, hi;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    streamed.add(ys[i], xs[i]);
    (i < ys.size() / 2 ? lo : hi).add(ys[i], xs[i]);
  }
  lo.merge(hi);
  EXPECT_EQ(streamed.count(), lo.count());
  EXPECT_NEAR(streamed.mean_y(), lo.mean_y(), 1e-12);
  EXPECT_NEAR(streamed.mean_x(), lo.mean_x(), 1e-12);
  EXPECT_NEAR(streamed.variance_y(), lo.variance_y(), 1e-12);
  EXPECT_NEAR(streamed.beta(), lo.beta(), 1e-12);
  EXPECT_NEAR(streamed.adjusted_mean(0.0), lo.adjusted_mean(0.0), 1e-12);
}

TEST(ControlVariate, AdjustedEstimatorRemovesCorrelatedNoise) {
  // y = 2x + e with known E[X] = 0: the control should absorb nearly all
  // of the x-driven variance, leaving ~Var(e).
  math::Xoshiro256 rng(6);
  math::ControlVariateAccumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double x = math::normal_inverse_cdf_draw(rng);
    const double e = 0.1 * math::normal_inverse_cdf_draw(rng);
    acc.add(2.0 * x + e, x);
  }
  EXPECT_NEAR(acc.beta(), 2.0, 0.05);
  EXPECT_NEAR(acc.adjusted_mean(0.0), 0.0, 0.01);
  EXPECT_LT(acc.adjusted_variance(), 0.02);  // ~0.01 vs Var(Y) ~ 4
  EXPECT_LT(acc.adjusted_half_width(), 0.1 * acc.plain_half_width());
}

TEST(ControlVariate, AnalyticControlMeanMatchesSimulatedLockRate) {
  // bob_t2_cont_probability is the control's analytic mean; the engine's
  // observed lock frequency must sit inside its own binomial CI of it --
  // an independent check of the analytic lognormal-mass computation.
  const model::SwapParams params = defaults();
  const model::BasicGame game(params, kPStar);
  const double analytic_lock = game.bob_t2_cont_probability();
  McConfig cfg = base_config();
  const VrEstimate est = model_vr(params, kPStar, cfg);
  const double n = static_cast<double>(est.acc.count());
  const double se =
      std::sqrt(std::max(analytic_lock * (1.0 - analytic_lock), 1e-12) / n);
  EXPECT_NEAR(est.acc.mean_x(), analytic_lock, 4.0 * se);
}

}  // namespace
}  // namespace swapgame::sim
