// Tests for the variance-reduced batched Monte-Carlo engine
// (sim/estimators.hpp) and the math primitives it is built on:
//
//  * every estimator configuration (plain / antithetic / control-variate /
//    both, fixed-budget and CI-adaptive) agrees with the analytic
//    P(success) within its own confidence interval at fixed seeds;
//  * estimates are bit-identical at threads=1 and threads=8, including
//    under adaptive stopping (the stop rule only sees merged rounds);
//  * the inverse-CDF draw is monotone in the underlying uniform and
//    antisymmetric under u -> 1-u -- the properties common random numbers
//    and antithetic pairing rely on;
//  * the block RNG fills realize the lane-interleaved contract (rng.hpp):
//    position q*8+j is the q-th draw of the j-times-jumped lane stream;
//  * every SIMD dispatch level is bitwise identical to the scalar
//    reference -- buffer fills, accumulator blocks, and the full
//    VrEstimate across estimator configs and thread counts;
//  * ControlVariateAccumulator::merge is exact (streamed == merged halves).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "math/rng.hpp"
#include "math/simd.hpp"
#include "math/special.hpp"
#include "math/stats.hpp"
#include "model/basic_game.hpp"
#include "model/strategy_value.hpp"
#include "sim/estimators.hpp"
#include "sim/mc_driver.hpp"
#include "sim/mc_runner.hpp"

namespace swapgame::sim {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

constexpr double kPStar = 2.0;

VrEstimate model_vr(const model::SwapParams& params, double p_star,
                    const McConfig& cfg) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kModel;
  spec.params = params;
  spec.p_star = p_star;
  spec.config = cfg;
  return McRunner::run(spec).vr;
}

VrEstimate profile_vr(const model::SwapParams& params,
                      const model::ThresholdProfile& profile,
                      const McConfig& cfg) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProfile;
  spec.params = params;
  spec.profile = profile;
  spec.config = cfg;
  return McRunner::run(spec).vr;
}

McConfig base_config() {
  McConfig cfg;
  cfg.samples = 1u << 16;
  cfg.seed = 424242;
  return cfg;
}

// --- agreement with the analytic success rate ----------------------------

struct EstimatorCase {
  const char* name;
  bool antithetic;
  bool control_variate;
};

const EstimatorCase kCases[] = {
    {"plain", false, false},
    {"antithetic", true, false},
    {"control_variate", false, true},
    {"antithetic_cv", true, true},
};

TEST(VrEstimators, AllConfigurationsMatchAnalyticWithinCi) {
  const model::SwapParams params = defaults();
  const model::BasicGame game(params, kPStar);
  const double analytic = game.success_rate();
  for (const EstimatorCase& c : kCases) {
    McConfig cfg = base_config();
    cfg.antithetic = c.antithetic;
    cfg.control_variate = c.control_variate;
    cfg.ci_confidence = 0.999;
    const VrEstimate est = model_vr(params, kPStar, cfg);
    ASSERT_EQ(est.samples, cfg.samples) << c.name;
    // NaN-safe: a NaN estimate must fail, not vacuously pass.
    ASSERT_TRUE(std::isfinite(est.success_rate())) << c.name;
    EXPECT_LE(std::abs(est.success_rate() - analytic),
              est.half_width() + 1e-4)
        << c.name;
    // The realized counters are CI-consistent with the analytic rate too
    // (under smoothing they are a separate observation path).
    const auto ci = est.mc.success.wilson_interval(0.999);
    EXPECT_GE(analytic, ci.lo - 1e-4) << c.name;
    EXPECT_LE(analytic, ci.hi + 1e-4) << c.name;
  }
}

TEST(VrEstimators, PlainAccumulatorMeanMatchesCounters) {
  // With the VR flags off, the accumulator observes the raw success
  // indicator, so its Welford mean must equal the counters' realized
  // conditional success rate.  Same quantity through two summation orders:
  // tight tolerance rather than bitwise.
  const model::SwapParams params = defaults();
  const McConfig cfg = base_config();
  const VrEstimate vr = model_vr(params, kPStar, cfg);
  EXPECT_EQ(vr.mc.success.trials(), cfg.samples);
  EXPECT_EQ(vr.mc.initiated.successes(), cfg.samples);
  EXPECT_NEAR(vr.acc.mean_y(), vr.mc.conditional_success_rate(), 1e-12);
}

TEST(VrEstimators, ProfileEngineMatchesEquilibriumModelEngine) {
  // Playing the equilibrium profile through the profile engine must give
  // the same draws-to-outcomes map as the model engine at the same seed.
  const model::SwapParams params = defaults();
  const model::StrategyEvaluator eval(params, kPStar);
  const model::ThresholdProfile eq = eval.equilibrium();
  McConfig cfg = base_config();
  cfg.control_variate = true;
  const VrEstimate via_profile = profile_vr(params, eq, cfg);
  const VrEstimate via_model = model_vr(params, kPStar, cfg);
  EXPECT_EQ(via_profile.mc.success.successes(),
            via_model.mc.success.successes());
  // The two engines derive the analytic control mean through different
  // code paths (game object vs. lognormal region mass), so the adjusted
  // estimates agree to rounding, not bitwise.
  EXPECT_NEAR(via_profile.success_rate(), via_model.success_rate(), 1e-12);
}

// --- variance reduction actually reduces variance ------------------------

TEST(VrEstimators, ControlVariatePlusAntitheticShrinksHalfWidth) {
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  const VrEstimate plain = model_vr(params, kPStar, cfg);
  cfg.antithetic = true;
  cfg.control_variate = true;
  const VrEstimate reduced = model_vr(params, kPStar, cfg);
  ASSERT_GT(plain.half_width(), 0.0);
  // The issue's acceptance bar is >= 4x fewer samples to equal precision,
  // i.e. >= 2x narrower CI at equal samples.  Measured: ~7x narrower.
  EXPECT_LT(reduced.half_width(), 0.5 * plain.half_width());
}

// --- determinism across thread counts ------------------------------------

TEST(VrEstimators, BitIdenticalAcrossThreadCounts) {
  const model::SwapParams params = defaults();
  for (const EstimatorCase& c : kCases) {
    for (const bool adaptive : {false, true}) {
      McConfig cfg = base_config();
      cfg.antithetic = c.antithetic;
      cfg.control_variate = c.control_variate;
      if (adaptive) {
        cfg.samples = 1u << 19;
        cfg.target_half_width = c.control_variate ? 0.004 : 0.02;
      }
      cfg.threads = 1;
      const VrEstimate a = model_vr(params, kPStar, cfg);
      cfg.threads = 8;
      const VrEstimate b = model_vr(params, kPStar, cfg);
      EXPECT_EQ(a.samples, b.samples) << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.rounds, b.rounds) << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.mc.success.successes(), b.mc.success.successes())
          << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.mc.success.trials(), b.mc.success.trials())
          << c.name << " adaptive=" << adaptive;
      // Bitwise equality of the floating-point estimate, not approximate.
      EXPECT_EQ(a.acc.mean_y(), b.acc.mean_y())
          << c.name << " adaptive=" << adaptive;
      EXPECT_EQ(a.success_rate(), b.success_rate())
          << c.name << " adaptive=" << adaptive;
    }
  }
}

TEST(VrEstimators, ProtocolAdaptiveBitIdenticalAcrossThreadCounts) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProtocol;
  spec.params = defaults();
  spec.p_star = kPStar;
  McConfig cfg;
  cfg.samples = 2048;
  cfg.seed = 7;
  cfg.target_half_width = 0.03;
  cfg.min_samples = 512;
  cfg.threads = 1;
  spec.config = cfg;
  const McEstimate a = McRunner::run(spec).estimate;
  spec.config.threads = 8;
  const McEstimate b = McRunner::run(spec).estimate;
  EXPECT_EQ(a.success.trials(), b.success.trials());
  EXPECT_EQ(a.success.successes(), b.success.successes());
  EXPECT_EQ(a.alice_utility.mean(), b.alice_utility.mean());
  EXPECT_EQ(a.bob_utility.mean(), b.bob_utility.mean());
  // Adaptive stopping engaged: fewer samples than the cap, above the floor.
  EXPECT_LT(a.success.trials(), cfg.samples);
  EXPECT_GE(a.success.trials(), cfg.min_samples);
}

// --- adaptive stopping ----------------------------------------------------

TEST(VrEstimators, AdaptiveStoppingReachesTargetUnderBudget) {
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  cfg.samples = 1u << 21;
  cfg.antithetic = true;
  cfg.control_variate = true;
  cfg.target_half_width = 0.002;
  const VrEstimate est = model_vr(params, kPStar, cfg);
  EXPECT_LE(est.half_width(), cfg.target_half_width);
  EXPECT_LT(est.samples, cfg.samples);
  EXPECT_GE(est.rounds, 1u);
  // Rounds are whole multiples of the fixed chunk grid -- the property the
  // cross-thread determinism of adaptive runs rests on.
  EXPECT_EQ(est.samples % detail::kModelMcChunk, 0u);
}

TEST(VrEstimators, MinSamplesFloorIsRespected) {
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  cfg.samples = 1u << 19;
  cfg.control_variate = true;
  cfg.target_half_width = 0.5;  // trivially reached in the first round
  cfg.min_samples = 3 * detail::kModelMcChunk * detail::kVrRoundChunks;
  const VrEstimate est = model_vr(params, kPStar, cfg);
  EXPECT_GE(est.samples, cfg.min_samples);
}

// --- common random numbers ------------------------------------------------

TEST(VrEstimators, CommonRandomNumbersKeepSweepCurvesSmooth) {
  // Every sample consumes exactly two normals regardless of its outcome,
  // so equal (seed, index) means equal draws at every parameter point: a
  // tiny parameter nudge flips almost no samples, and the MC curve moves
  // by ~the analytic delta instead of by fresh sampling noise.
  const model::SwapParams params = defaults();
  McConfig cfg = base_config();
  const VrEstimate at = model_vr(params, kPStar, cfg);
  const VrEstimate nudged = model_vr(params, kPStar + 1e-4, cfg);
  const model::BasicGame g0(params, kPStar);
  const model::BasicGame g1(params, kPStar + 1e-4);
  const double analytic_delta = g1.success_rate() - g0.success_rate();
  const double mc_delta = nudged.success_rate() - at.success_rate();
  // Under CRN the delta's noise is driven by the (tiny) symmetric
  // difference of the acceptance regions, far below one half-width.
  EXPECT_LT(std::abs(mc_delta - analytic_delta), 0.2 * at.half_width());
}

// --- inverse-CDF draw properties -----------------------------------------

TEST(RngPrimitives, NormalQuantileMonotoneAndAntisymmetric) {
  const int n = 2000;
  double prev = -std::numeric_limits<double>::infinity();
  for (int i = 1; i < n; ++i) {
    const double u = static_cast<double>(i) / n;
    const double z = math::normal_quantile(u);
    EXPECT_GT(z, prev) << "u=" << u;  // strictly monotone in the uniform
    prev = z;
    // Antithetic symmetry: the u -> 1-u mirror is the z -> -z mirror.
    EXPECT_NEAR(math::normal_quantile(1.0 - u), -z,
                1e-9 * (1.0 + std::abs(z)));
  }
}

TEST(RngPrimitives, BlockFillsRealizeTheLaneInterleavedContract) {
  // out[q*8 + j] is the q-th draw of lane j, where lane j is the caller's
  // generator advanced by j jump()s -- verified against hand-built scalar
  // lane streams, including a ragged tail.
  constexpr std::size_t kN = 4097;
  math::Xoshiro256 rng(99);
  std::vector<math::Xoshiro256> lanes(math::kFillLanes, rng);
  for (std::size_t j = 0; j < math::kFillLanes; ++j) {
    for (std::size_t k = 0; k < j; ++k) lanes[j].jump();
  }
  std::vector<double> block(kN);
  math::fill_normal_inverse_cdf(rng, block.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(block[i], math::normal_inverse_cdf_draw(lanes[i % 8])) << i;
  }
  // End-state contract: the caller's generator continues as lane 0
  // advanced ceil(n / 8) steps (the tail group steps every lane).
  math::Xoshiro256 lane0(99);
  for (std::size_t q = 0; q < (kN + 7) / 8; ++q) (void)lane0();
  EXPECT_EQ(rng(), lane0());
}

TEST(RngPrimitives, BlockFillsArePrefixStable) {
  // Splitting a fill at any multiple of the lane width produces the same
  // stream as one big fill -- the property that makes the antithetic
  // base_n sub-fills reproducible.
  constexpr std::size_t kN = 1024;
  constexpr std::size_t kSplit = 512;  // multiple of kFillLanes
  math::Xoshiro256 whole_rng(7), split_rng(7);
  std::vector<double> whole(kN), split(kN);
  math::fill_uniform01(whole_rng, whole.data(), kN);
  math::fill_uniform01(split_rng, split.data(), kSplit);
  math::fill_uniform01(split_rng, split.data() + kSplit, kN - kSplit);
  EXPECT_EQ(whole, split);
}

// --- scalar vs SIMD bitwise equality --------------------------------------

std::vector<math::simd::SimdLevel> supported_levels() {
  std::vector<math::simd::SimdLevel> levels;
  for (const math::simd::SimdLevel level :
       {math::simd::SimdLevel::kScalar, math::simd::SimdLevel::kAvx2,
        math::simd::SimdLevel::kAvx512}) {
    if (math::simd::level_supported(level)) levels.push_back(level);
  }
  return levels;
}

TEST(SimdBitwise, BufferFillsIdenticalAtEveryDispatchLevel) {
  const math::simd::KernelTable* scalar =
      math::simd::kernels(math::simd::SimdLevel::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                              std::size_t{1000}, std::size_t{4097}}) {
    math::Xoshiro256 ref_rng(31);
    std::vector<double> ref_u(n), ref_z(n);
    scalar->fill_uniform01(ref_rng, ref_u.data(), n);
    const std::uint64_t ref_next = ref_rng();  // end-state probe
    ref_z = ref_u;
    scalar->normal_quantile_transform(ref_z.data(), n);
    for (const math::simd::SimdLevel level : supported_levels()) {
      const math::simd::KernelTable* kt = math::simd::kernels(level);
      ASSERT_NE(kt, nullptr);
      math::Xoshiro256 rng(31);
      std::vector<double> u(n);
      kt->fill_uniform01(rng, u.data(), n);
      EXPECT_EQ(u, ref_u) << to_string(level) << " n=" << n;
      // Identical end state too, not just identical outputs.
      EXPECT_EQ(rng(), ref_next) << to_string(level) << " n=" << n;
      std::vector<double> z = ref_u;
      kt->normal_quantile_transform(z.data(), n);
      EXPECT_EQ(z, ref_z) << to_string(level) << " n=" << n;
    }
  }
}

TEST(SimdBitwise, FullVrEstimateIdenticalAtEveryDispatchLevel) {
  // The whole engine -- fills, z-kernel evaluation, Welford blocks,
  // adaptive stopping -- must be bitwise reproducible at every dispatch
  // level and thread count.  EXPECT_EQ on doubles throughout: this is the
  // determinism contract SWAPGAME_SIMD=off relies on.
  const model::SwapParams params = defaults();
  struct Snapshot {
    VrEstimate est;
    const char* name;
    bool adaptive;
    unsigned threads;
  };
  std::vector<Snapshot> reference;
  ASSERT_TRUE(math::simd::force_level(math::simd::SimdLevel::kScalar));
  for (const EstimatorCase& c : kCases) {
    for (const bool adaptive : {false, true}) {
      for (const unsigned threads : {1u, 8u}) {
        McConfig cfg = base_config();
        cfg.samples = adaptive ? (1u << 18) : (1u << 14);
        cfg.antithetic = c.antithetic;
        cfg.control_variate = c.control_variate;
        cfg.threads = threads;
        if (adaptive) {
          cfg.target_half_width = c.control_variate ? 0.004 : 0.02;
        }
        reference.push_back(
            {model_vr(params, kPStar, cfg), c.name, adaptive, threads});
      }
    }
  }
  for (const math::simd::SimdLevel level : supported_levels()) {
    ASSERT_TRUE(math::simd::force_level(level));
    std::size_t i = 0;
    for (const EstimatorCase& c : kCases) {
      for (const bool adaptive : {false, true}) {
        for (const unsigned threads : {1u, 8u}) {
          McConfig cfg = base_config();
          cfg.samples = adaptive ? (1u << 18) : (1u << 14);
          cfg.antithetic = c.antithetic;
          cfg.control_variate = c.control_variate;
          cfg.threads = threads;
          if (adaptive) {
            cfg.target_half_width = c.control_variate ? 0.004 : 0.02;
          }
          const VrEstimate got = model_vr(params, kPStar, cfg);
          const Snapshot& want = reference[i++];
          const std::string tag = std::string(to_string(level)) + " " +
                                  want.name +
                                  " adaptive=" + (adaptive ? "1" : "0") +
                                  " threads=" + std::to_string(threads);
          EXPECT_EQ(got.samples, want.est.samples) << tag;
          EXPECT_EQ(got.rounds, want.est.rounds) << tag;
          EXPECT_EQ(got.mc.success.successes(),
                    want.est.mc.success.successes()) << tag;
          EXPECT_EQ(got.mc.success.trials(), want.est.mc.success.trials())
              << tag;
          EXPECT_EQ(got.mc.initiated.successes(),
                    want.est.mc.initiated.successes()) << tag;
          EXPECT_EQ(got.mc.outcomes, want.est.mc.outcomes) << tag;
          EXPECT_EQ(got.acc.count(), want.est.acc.count()) << tag;
          EXPECT_EQ(got.acc.mean_y(), want.est.acc.mean_y()) << tag;
          EXPECT_EQ(got.acc.mean_x(), want.est.acc.mean_x()) << tag;
          EXPECT_EQ(got.success_rate(), want.est.success_rate()) << tag;
          EXPECT_EQ(got.half_width(), want.est.half_width()) << tag;
        }
      }
    }
  }
  math::simd::reset_level();
}

// --- control-variate machinery -------------------------------------------

TEST(ControlVariate, MergeMatchesStreamedAccumulation) {
  math::Xoshiro256 rng(5);
  std::vector<double> ys, xs;
  for (int i = 0; i < 257; ++i) {  // odd count: uneven halves
    const double x = math::normal_inverse_cdf_draw(rng);
    ys.push_back(0.3 * x + math::normal_inverse_cdf_draw(rng));
    xs.push_back(x);
  }
  math::ControlVariateAccumulator streamed, lo, hi;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    streamed.add(ys[i], xs[i]);
    (i < ys.size() / 2 ? lo : hi).add(ys[i], xs[i]);
  }
  lo.merge(hi);
  EXPECT_EQ(streamed.count(), lo.count());
  EXPECT_NEAR(streamed.mean_y(), lo.mean_y(), 1e-12);
  EXPECT_NEAR(streamed.mean_x(), lo.mean_x(), 1e-12);
  EXPECT_NEAR(streamed.variance_y(), lo.variance_y(), 1e-12);
  EXPECT_NEAR(streamed.beta(), lo.beta(), 1e-12);
  EXPECT_NEAR(streamed.adjusted_mean(0.0), lo.adjusted_mean(0.0), 1e-12);
}

TEST(ControlVariate, AddBlockIsBitwiseIdenticalAcrossDispatchLevels) {
  // add_block is defined by the fixed 8-lane Welford decomposition, so its
  // result is the same at every dispatch level AND for any split of the
  // same stream into blocks at multiples of 8.
  constexpr std::size_t kN = 1013;  // ragged tail
  math::Xoshiro256 rng(17);
  std::vector<double> ys(kN), xs(kN);
  math::fill_normal_inverse_cdf(rng, ys.data(), kN);
  math::fill_normal_inverse_cdf(rng, xs.data(), kN);
  math::ControlVariateAccumulator ref;
  ASSERT_TRUE(math::simd::force_level(math::simd::SimdLevel::kScalar));
  ref.add_block(ys.data(), xs.data(), kN);
  for (const math::simd::SimdLevel level : supported_levels()) {
    ASSERT_TRUE(math::simd::force_level(level));
    math::ControlVariateAccumulator acc;
    acc.add_block(ys.data(), xs.data(), kN);
    EXPECT_EQ(acc.count(), ref.count()) << to_string(level);
    EXPECT_EQ(acc.mean_y(), ref.mean_y()) << to_string(level);
    EXPECT_EQ(acc.mean_x(), ref.mean_x()) << to_string(level);
    EXPECT_EQ(acc.variance_y(), ref.variance_y()) << to_string(level);
    EXPECT_EQ(acc.beta(), ref.beta()) << to_string(level);
  }
  math::simd::reset_level();
}

TEST(ControlVariate, AddBlockAgreesWithStreamedAddStatistically) {
  // Different summation order than per-sample add(), so the moments agree
  // to rounding, not bitwise.
  constexpr std::size_t kN = 777;
  math::Xoshiro256 rng(18);
  std::vector<double> ys(kN), xs(kN);
  math::fill_normal_inverse_cdf(rng, ys.data(), kN);
  math::fill_normal_inverse_cdf(rng, xs.data(), kN);
  math::ControlVariateAccumulator streamed, blocked;
  for (std::size_t i = 0; i < kN; ++i) streamed.add(ys[i], xs[i]);
  blocked.add_block(ys.data(), xs.data(), kN);
  EXPECT_EQ(streamed.count(), blocked.count());
  EXPECT_NEAR(streamed.mean_y(), blocked.mean_y(), 1e-12);
  EXPECT_NEAR(streamed.mean_x(), blocked.mean_x(), 1e-12);
  EXPECT_NEAR(streamed.variance_y(), blocked.variance_y(), 1e-10);
  EXPECT_NEAR(streamed.beta(), blocked.beta(), 1e-10);
}

TEST(ControlVariate, AdjustedEstimatorRemovesCorrelatedNoise) {
  // y = 2x + e with known E[X] = 0: the control should absorb nearly all
  // of the x-driven variance, leaving ~Var(e).
  math::Xoshiro256 rng(6);
  math::ControlVariateAccumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double x = math::normal_inverse_cdf_draw(rng);
    const double e = 0.1 * math::normal_inverse_cdf_draw(rng);
    acc.add(2.0 * x + e, x);
  }
  EXPECT_NEAR(acc.beta(), 2.0, 0.05);
  EXPECT_NEAR(acc.adjusted_mean(0.0), 0.0, 0.01);
  EXPECT_LT(acc.adjusted_variance(), 0.02);  // ~0.01 vs Var(Y) ~ 4
  EXPECT_LT(acc.adjusted_half_width(), 0.1 * acc.plain_half_width());
}

TEST(ControlVariate, AnalyticControlMeanMatchesSimulatedLockRate) {
  // bob_t2_cont_probability is the control's analytic mean; the engine's
  // observed lock frequency must sit inside its own binomial CI of it --
  // an independent check of the analytic lognormal-mass computation.
  const model::SwapParams params = defaults();
  const model::BasicGame game(params, kPStar);
  const double analytic_lock = game.bob_t2_cont_probability();
  McConfig cfg = base_config();
  const VrEstimate est = model_vr(params, kPStar, cfg);
  const double n = static_cast<double>(est.acc.count());
  const double se =
      std::sqrt(std::max(analytic_lock * (1.0 - analytic_lock), 1e-12) / n);
  EXPECT_NEAR(est.acc.mean_x(), analytic_lock, 4.0 * se);
}

}  // namespace
}  // namespace swapgame::sim
