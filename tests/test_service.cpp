// The swapgamed service layer (src/service, docs/SERVICE.md): daemon
// lifecycle, cross-client cache sharing, admission control, and the raw
// wire protocol's structured error surface.  Everything runs against a
// real daemon on a private AF_UNIX socket -- the same code paths the
// swapgamed / swapgame_client binaries exercise across processes.
#include "service/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/run_spec.hpp"
#include "obs/json.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "status.hpp"

namespace {

using swapgame::Status;
using swapgame::StatusCode;
using swapgame::engine::BatchNode;
using swapgame::engine::CellKind;
using swapgame::service::Client;
using swapgame::service::Daemon;
using swapgame::service::LineSocket;
using swapgame::service::ServiceConfig;

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::swapgame::Status status_ = (expr);          \
    ASSERT_TRUE(status_.is_ok()) << status_.to_string(); \
  } while (0)

/// A per-test socket path: short (sun_path is ~100 bytes) and unique per
/// process so parallel ctest runs cannot collide.
std::string socket_path(const std::string& tag) {
  return "/tmp/swapgame-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

/// Two cheap analytic cells with a dependency edge -- finishes in
/// microseconds, no sampling.
std::vector<BatchNode> tiny_dag() {
  std::vector<BatchNode> nodes(2);
  nodes[0].spec.kind = CellKind::kAnalyticSr;
  nodes[0].spec.label = "test:analytic";
  nodes[1].spec.kind = CellKind::kSrGrid;
  nodes[1].spec.label = "test:grid";
  nodes[1].spec.grid_count = 4;
  nodes[1].spec.grid_denom = 4;
  nodes[1].deps = {0};
  return nodes;
}

/// Reads and parses the next event line off a raw socket.
Status read_event(LineSocket& socket, swapgame::obs::json::Value* event) {
  std::string line;
  bool eof = false;
  Status status = socket.read_line(&line, &eof);
  if (!status.is_ok()) return status;
  if (eof) return Status::unavailable("unexpected EOF");
  return swapgame::obs::json::parse(line, *event);
}

/// Expects the next event to be `{"event":<name>,"code":<code>}`.
void expect_status_event(LineSocket& socket, std::string_view name,
                         StatusCode code) {
  swapgame::obs::json::Value event;
  ASSERT_OK(read_event(socket, &event));
  ASSERT_TRUE(event.find("event") != nullptr);
  EXPECT_EQ(event.find("event")->as_string(), name);
  ASSERT_TRUE(event.find("code") != nullptr);
  EXPECT_EQ(event.find("code")->as_string(), swapgame::to_string(code));
}

TEST(StatusTokens, RoundTripEveryCode) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidSpec,
        StatusCode::kUnsupportedVersion, StatusCode::kAdmissionRejected,
        StatusCode::kCacheCorrupt, StatusCode::kProtocolError,
        StatusCode::kUnavailable, StatusCode::kShuttingDown,
        StatusCode::kInternal}) {
    EXPECT_EQ(swapgame::status_code_from_token(swapgame::to_string(code)),
              code);
  }
  // Unknown tokens (a newer peer) degrade to kInternal, never to kOk.
  EXPECT_EQ(swapgame::status_code_from_token("quantum_flux"),
            StatusCode::kInternal);
  const Status status = Status::from_token("admission_rejected", "later");
  EXPECT_EQ(status.code(), StatusCode::kAdmissionRejected);
  EXPECT_EQ(status.message(), "later");
}

TEST(Service, LifecycleSharesCacheAcrossClients) {
  ServiceConfig config;
  config.socket_path = socket_path("life");
  config.threads = 2;
  Daemon daemon(config);
  ASSERT_OK(daemon.start());
  ASSERT_TRUE(daemon.running());

  const std::vector<BatchNode> nodes = tiny_dag();

  // Client A runs the DAG cold: every cell evaluated, none cached.
  Client a;
  ASSERT_OK(a.connect(config.socket_path));
  Client::SubmitOutcome cold;
  ASSERT_OK(a.submit(nodes, &cold));
  EXPECT_EQ(cold.cells, nodes.size());
  EXPECT_EQ(cold.cached_cells, 0u);
  EXPECT_EQ(cold.failed_cells, 0u);

  // Client B -- a separate connection -- resubmits the same specs and
  // must be served entirely from the shared cache, byte for byte.
  Client b;
  ASSERT_OK(b.connect(config.socket_path));
  Client::SubmitOutcome warm;
  std::size_t progress_events = 0;
  ASSERT_OK(b.submit(nodes, &warm,
                     [&progress_events](const Client::CellUpdate& update) {
                       ++progress_events;
                       EXPECT_TRUE(update.cached);
                       EXPECT_EQ(update.source, "memory");
                       EXPECT_TRUE(update.status.is_ok());
                     }));
  EXPECT_EQ(progress_events, nodes.size());
  EXPECT_EQ(warm.cached_cells, nodes.size());
  ASSERT_EQ(warm.results.size(), cold.results.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::string hash = nodes[i].spec.hash();
    EXPECT_EQ(warm.results[i].to_entry(hash), cold.results[i].to_entry(hash));
  }

  const swapgame::service::DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.connections_total, 2u);
  EXPECT_EQ(stats.jobs_accepted, 2u);
  EXPECT_EQ(stats.cells_completed, 2 * nodes.size());
  EXPECT_EQ(stats.cells_cached, nodes.size());
  EXPECT_EQ(stats.cells_failed, 0u);

  // Clean shutdown THROUGH the protocol: bye, wait() unparks, stop()
  // drains and unlinks the socket.
  ASSERT_OK(b.shutdown_server());
  daemon.wait();
  daemon.stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_NE(::access(config.socket_path.c_str(), F_OK), 0);
}

TEST(Service, AdmissionControlRejectsOversizedJobs) {
  ServiceConfig config;
  config.socket_path = socket_path("admit");
  config.threads = 1;
  config.max_queued_cells = 1;
  Daemon daemon(config);
  ASSERT_OK(daemon.start());

  Client client;
  ASSERT_OK(client.connect(config.socket_path));

  // Two cells against a one-cell bound: structured backpressure, nothing
  // runs.
  Client::SubmitOutcome outcome;
  const Status rejected = client.submit(tiny_dag(), &outcome);
  EXPECT_EQ(rejected.code(), StatusCode::kAdmissionRejected)
      << rejected.to_string();

  // A job that fits is still admitted afterwards -- rejection is
  // per-request, not a poisoned connection.
  std::vector<BatchNode> small(1);
  small[0].spec.kind = CellKind::kAnalyticSr;
  ASSERT_OK(client.submit(small, &outcome));
  EXPECT_EQ(outcome.cells, 1u);

  const swapgame::service::DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_EQ(stats.jobs_accepted, 1u);
  daemon.stop();
}

TEST(Service, WireProtocolErrorSurface) {
  ServiceConfig config;
  config.socket_path = socket_path("wire");
  config.threads = 1;
  Daemon daemon(config);
  ASSERT_OK(daemon.start());

  int fd = -1;
  ASSERT_OK(swapgame::service::connect_unix(config.socket_path, &fd));
  LineSocket socket;
  socket.adopt(fd);

  // The greeting pins both version numbers.
  swapgame::obs::json::Value hello;
  ASSERT_OK(read_event(socket, &hello));
  EXPECT_EQ(hello.find("event")->as_string(), "hello");
  EXPECT_EQ(hello.find("proto")->as_u64(),
            static_cast<std::uint64_t>(swapgame::service::kProtocolVersion));
  EXPECT_EQ(
      hello.find("spec_version")->as_u64(),
      static_cast<std::uint64_t>(swapgame::engine::kRunSpecSchemaVersion));

  const std::string spec_json = swapgame::engine::RunSpec{}.to_json();

  // Unparseable line -> protocol_error (connection stays usable).
  ASSERT_OK(socket.write_line("this is not json"));
  expect_status_event(socket, "error", StatusCode::kProtocolError);

  // Envelope version skew -> unsupported_version.
  ASSERT_OK(socket.write_line("{\"proto\":2,\"op\":\"ping\",\"id\":1}"));
  expect_status_event(socket, "error", StatusCode::kUnsupportedVersion);

  // Unknown op -> protocol_error.
  ASSERT_OK(socket.write_line("{\"proto\":1,\"op\":\"teleport\",\"id\":2}"));
  expect_status_event(socket, "error", StatusCode::kProtocolError);

  // Empty cell list -> invalid_spec rejection.
  ASSERT_OK(socket.write_line(
      "{\"proto\":1,\"op\":\"submit\",\"id\":3,\"cells\":[]}"));
  expect_status_event(socket, "rejected", StatusCode::kInvalidSpec);

  // A cell with a stale RunSpec schema -> the codec's code survives to
  // the wire as unsupported_version, not a generic failure.
  std::string stale = spec_json;
  stale.replace(stale.find("\"v\":5"), 5, "\"v\":4");
  ASSERT_OK(socket.write_line("{\"proto\":1,\"op\":\"submit\",\"id\":4," +
                              std::string("\"cells\":[") + stale + "]}"));
  expect_status_event(socket, "rejected", StatusCode::kUnsupportedVersion);

  // A cell with an unknown key -> invalid_spec naming it.
  std::string bogus = spec_json;
  bogus.insert(bogus.size() - 1, ",\"bogus\":1");
  ASSERT_OK(socket.write_line("{\"proto\":1,\"op\":\"submit\",\"id\":5," +
                              std::string("\"cells\":[") + bogus + "]}"));
  expect_status_event(socket, "rejected", StatusCode::kInvalidSpec);

  // Dependency out of range -> invalid_spec.
  ASSERT_OK(socket.write_line("{\"proto\":1,\"op\":\"submit\",\"id\":6," +
                              std::string("\"cells\":[") + spec_json +
                              "],\"deps\":[[7]]}"));
  expect_status_event(socket, "rejected", StatusCode::kInvalidSpec);

  // Dependency cycle -> invalid_spec (never enqueued, never deadlocks).
  ASSERT_OK(socket.write_line("{\"proto\":1,\"op\":\"submit\",\"id\":7," +
                              std::string("\"cells\":[") + spec_json + "," +
                              spec_json + "],\"deps\":[[1],[0]]}"));
  expect_status_event(socket, "rejected", StatusCode::kInvalidSpec);

  // After all that abuse the connection still answers a well-formed ping.
  ASSERT_OK(socket.write_line("{\"proto\":1,\"op\":\"ping\",\"id\":8}"));
  swapgame::obs::json::Value pong;
  ASSERT_OK(read_event(socket, &pong));
  EXPECT_EQ(pong.find("event")->as_string(), "pong");
  EXPECT_EQ(pong.find("id")->as_u64(), 8u);

  EXPECT_EQ(daemon.stats().protocol_errors, 3u);
  socket.close();
  daemon.stop();
}

TEST(Service, ClientRefusesSpecVersionSkew) {
  // A fake server whose hello advertises a RunSpec schema this client
  // does not speak: connect() must fail BEFORE any work can be
  // submitted, with the distinct upgrade-me code.
  const std::string path = socket_path("skew");
  int listen_fd = -1;
  ASSERT_OK(swapgame::service::listen_unix(path, 4, &listen_fd));
  std::thread server([listen_fd] {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn_fd, 0);
    LineSocket peer;
    peer.adopt(conn_fd);
    ASSERT_OK(peer.write_line(
        "{\"proto\":1,\"event\":\"hello\",\"server\":\"fake\","
        "\"spec_version\":999}"));
    std::string line;
    bool eof = false;
    (void)peer.read_line(&line, &eof);  // drain until the client hangs up
  });

  Client client;
  const Status status = client.connect(path);
  EXPECT_EQ(status.code(), StatusCode::kUnsupportedVersion)
      << status.to_string();
  client.close();
  server.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
}

}  // namespace
