// Tests for the Monte-Carlo estimators (src/sim/mc_runner over
// src/sim/monte_carlo): determinism, agreement with the analytic success
// rate, and estimate plumbing.
#include "sim/mc_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "agents/naive.hpp"
#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"

namespace swapgame::sim {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

McEstimate model_mc(double p_star, double collateral, const McConfig& cfg) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kModel;
  spec.params = defaults();
  spec.p_star = p_star;
  spec.collateral = collateral;
  spec.config = cfg;
  return McRunner::run(spec).estimate;
}

McEstimate protocol_mc(double collateral, McStrategy strategy,
                       const McConfig& cfg) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProtocol;
  spec.params = defaults();
  spec.p_star = 2.0;
  spec.collateral = collateral;
  spec.strategy = strategy;
  spec.config = cfg;
  return McRunner::run(spec).estimate;
}

TEST(McEstimate, ConditionalSuccessRate) {
  McEstimate e;
  for (int i = 0; i < 10; ++i) e.initiated.add(i < 8);
  for (int i = 0; i < 10; ++i) e.success.add(i < 4);
  EXPECT_DOUBLE_EQ(e.conditional_success_rate(), 0.5);  // 4 of 8 initiated
  // Regression: "no sample ever initiated" used to report 0.0, conflating
  // an empty conditioning event with "initiated and always failed".
  McEstimate empty;
  EXPECT_TRUE(std::isnan(empty.conditional_success_rate()));
  McEstimate all_failed;
  all_failed.initiated.add(true);
  all_failed.success.add(false);
  EXPECT_EQ(all_failed.conditional_success_rate(), 0.0);  // a true zero
}

TEST(McEstimate, MergeAggregates) {
  McEstimate a, b;
  a.success.add(true);
  a.initiated.add(true);
  a.alice_utility.add(2.0);
  a.outcomes[proto::SwapOutcome::kSuccess] = 1;
  b.success.add(false);
  b.initiated.add(true);
  b.alice_utility.add(3.0);
  b.outcomes[proto::SwapOutcome::kSuccess] = 4;
  b.outcomes[proto::SwapOutcome::kBobDeclinedT2] = 2;
  a.merge(b);
  EXPECT_EQ(a.success.trials(), 2u);
  EXPECT_EQ(a.alice_utility.count(), 2u);
  EXPECT_EQ(a.outcomes[proto::SwapOutcome::kSuccess], 5u);
  EXPECT_EQ(a.outcomes[proto::SwapOutcome::kBobDeclinedT2], 2u);
}

TEST(ModelMc, MatchesAnalyticSuccessRate) {
  const model::BasicGame game(defaults(), 2.0);
  McConfig cfg;
  cfg.samples = 100000;
  cfg.seed = 5;
  const McEstimate est = model_mc(2.0, 0.0, cfg);
  const auto ci = est.success.wilson_interval(0.999);
  EXPECT_GE(game.success_rate(), ci.lo);
  EXPECT_LE(game.success_rate(), ci.hi);
}

TEST(ModelMc, MatchesAnalyticCollateralSuccessRate) {
  const model::CollateralGame game(defaults(), 2.0, 0.5);
  McConfig cfg;
  cfg.samples = 100000;
  cfg.seed = 6;
  const McEstimate est = model_mc(2.0, 0.5, cfg);
  const auto ci = est.success.wilson_interval(0.999);
  EXPECT_GE(game.success_rate(), ci.lo);
  EXPECT_LE(game.success_rate(), ci.hi);
}

TEST(ModelMc, DeterministicAcrossThreadCounts) {
  // RNG streams and sample chunks are keyed by fixed chunk indices, so the
  // merged estimate is bit-identical regardless of thread count.  Use
  // enough samples to span several chunks.
  McConfig one;
  one.samples = 20'000;
  one.seed = 9;
  one.threads = 1;
  McConfig four = one;
  four.threads = 4;
  const McEstimate a = model_mc(2.0, 0.0, one);
  const McEstimate b = model_mc(2.0, 0.0, four);
  EXPECT_EQ(a.success.trials(), b.success.trials());
  EXPECT_EQ(a.success.successes(), b.success.successes());
  EXPECT_EQ(a.initiated.successes(), b.initiated.successes());
  EXPECT_EQ(a.outcomes, b.outcomes);
  // Bitwise-equal merged moments, not just statistically close.
  EXPECT_EQ(a.alice_utility.mean(), b.alice_utility.mean());
  EXPECT_EQ(a.bob_utility.mean(), b.bob_utility.mean());
}

TEST(ProtocolMc, DeterministicAcrossThreadCounts) {
  McConfig one;
  one.samples = 1500;  // spans several protocol chunks
  one.seed = 77;
  one.threads = 1;
  McConfig eight = one;
  eight.threads = 8;
  const McEstimate a = protocol_mc(0.0, McStrategy::kRational, one);
  const McEstimate b = protocol_mc(0.0, McStrategy::kRational, eight);
  EXPECT_EQ(a.success.trials(), b.success.trials());
  EXPECT_EQ(a.success.successes(), b.success.successes());
  EXPECT_EQ(a.initiated.successes(), b.initiated.successes());
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.alice_utility.mean(), b.alice_utility.mean());
  EXPECT_EQ(a.alice_utility.variance(), b.alice_utility.variance());
  EXPECT_EQ(a.bob_utility.mean(), b.bob_utility.mean());
}

TEST(ModelMc, NonViableRateNeverInitiates) {
  McConfig cfg;
  cfg.samples = 100;
  const McEstimate est = model_mc(5.0, 0.0, cfg);
  EXPECT_EQ(est.initiated.successes(), 0u);
  EXPECT_TRUE(std::isnan(est.conditional_success_rate()));
  EXPECT_EQ(est.outcomes.at(proto::SwapOutcome::kNotInitiated), 100u);
}

TEST(ProtocolMc, MatchesAnalyticSuccessRate) {
  // Full end-to-end validation: HTLCs, mempool leaks, refunds and all.
  const model::BasicGame game(defaults(), 2.0);
  McConfig cfg;
  cfg.samples = 3000;
  cfg.seed = 11;
  const McEstimate est = protocol_mc(0.0, McStrategy::kRational, cfg);
  const auto ci = est.success.wilson_interval(0.999);
  EXPECT_GE(game.success_rate(), ci.lo - 0.01);
  EXPECT_LE(game.success_rate(), ci.hi + 0.01);
  // Realized mean utilities approximate the model's t1 values.
  EXPECT_NEAR(est.alice_utility.mean(), game.alice_t1_cont(), 0.08);
  EXPECT_NEAR(est.bob_utility.mean(), game.bob_t1_cont(), 0.08);
}

TEST(ProtocolMc, CollateralRaisesEmpiricalSuccessRate) {
  McConfig cfg;
  cfg.samples = 1500;
  cfg.seed = 21;
  const McEstimate base = protocol_mc(0.0, McStrategy::kRational, cfg);
  const McEstimate coll = protocol_mc(1.0, McStrategy::kRational, cfg);
  EXPECT_GT(coll.conditional_success_rate(),
            base.conditional_success_rate());
}

TEST(ProtocolMc, HonestAliceAgainstRationalBobFaresWorse) {
  // The optionality asymmetry: an honest Alice (reveals even after adverse
  // moves) hands Bob the upside; her realized utility is lower than the
  // rational Alice's.  The mixed pairing uses McRunSpec::bob_strategy.
  McConfig cfg;
  cfg.samples = 2000;
  cfg.seed = 31;
  const McEstimate rational = protocol_mc(0.0, McStrategy::kRational, cfg);
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProtocol;
  spec.params = defaults();
  spec.p_star = 2.0;
  spec.strategy = McStrategy::kHonest;
  spec.bob_strategy = McStrategy::kRational;
  spec.config = cfg;
  const McEstimate honest = McRunner::run(spec).estimate;
  EXPECT_LT(honest.alice_utility.mean(), rational.alice_utility.mean());
  // But the swap succeeds more often with an honest Alice.
  EXPECT_GT(honest.conditional_success_rate(),
            rational.conditional_success_rate());
}

TEST(ProtocolMc, AllOutcomesAccounted) {
  McConfig cfg;
  cfg.samples = 1000;
  cfg.seed = 41;
  const McEstimate est = protocol_mc(0.0, McStrategy::kRational, cfg);
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : est.outcomes) total += count;
  EXPECT_EQ(total, cfg.samples);
  // Rational agents never hit the irrational kBobMissedT4 path.
  EXPECT_EQ(est.outcomes.count(proto::SwapOutcome::kBobMissedT4), 0u);
}

// An explicit bob_strategy equal to Alice's family must be bitwise
// indistinguishable from leaving it unset (the inherit default).
TEST(McRunnerMigration, ExplicitSameBobStrategyMatchesInheritBitwise) {
  McConfig cfg;
  cfg.samples = 1000;
  cfg.seed = 51;
  McRunSpec inherit;
  inherit.evaluator = McEvaluator::kProtocol;
  inherit.params = defaults();
  inherit.p_star = 2.0;
  inherit.strategy = McStrategy::kRational;
  inherit.config = cfg;
  McRunSpec explicit_same = inherit;
  explicit_same.bob_strategy = McStrategy::kRational;
  const McEstimate a = McRunner::run(inherit).estimate;
  const McEstimate b = McRunner::run(explicit_same).estimate;
  EXPECT_EQ(a.success.successes(), b.success.successes());
  EXPECT_EQ(a.success.trials(), b.success.trials());
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.alice_utility.mean(), b.alice_utility.mean());
  EXPECT_EQ(a.bob_utility.variance(), b.bob_utility.variance());
}

}  // namespace
}  // namespace swapgame::sim
