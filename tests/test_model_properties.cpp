// Randomized property tests over the model family: for parameter sets
// drawn from realistic ranges, the structural identities of the solvers
// must hold -- indifference at every threshold, equivalence of the reduced
// models, agreement between analytic and simulated success rates
// (differential testing via the profile MC engine), and cross-solver
// consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"
#include "model/commitment_game.hpp"
#include "model/extended_game.hpp"
#include "model/game_tree.hpp"
#include "model/premium_game.hpp"
#include "model/strategy_value.hpp"
#include "sim/mc_runner.hpp"

namespace swapgame {
namespace {

/// Draws a random but valid parameter set from realistic ranges.
model::SwapParams random_params(math::Xoshiro256& rng) {
  const auto uniform = [&rng](double lo, double hi) {
    return lo + (hi - lo) * math::uniform01(rng);
  };
  model::SwapParams p;
  p.alice.alpha = uniform(0.15, 0.6);
  p.bob.alpha = uniform(0.15, 0.6);
  p.alice.r = uniform(0.004, 0.014);
  p.bob.r = uniform(0.004, 0.014);
  p.tau_a = uniform(1.0, 5.0);
  p.tau_b = uniform(1.0, 5.0);
  p.eps_b = uniform(0.2, 0.8) * p.tau_b;
  p.p_t0 = uniform(0.5, 4.0);
  p.gbm.mu = uniform(-0.004, 0.006);
  p.gbm.sigma = uniform(0.04, 0.14);
  return p;
}

class RandomizedModelProperties : public ::testing::TestWithParam<int> {
 protected:
  RandomizedModelProperties() : rng_(static_cast<std::uint64_t>(GetParam())) {
    params_ = random_params(rng_);
    p_star_ = params_.p_t0 * (0.8 + 0.4 * math::uniform01(rng_));
  }

  math::Xoshiro256 rng_;
  model::SwapParams params_;
  double p_star_ = 2.0;
};

TEST_P(RandomizedModelProperties, ThresholdIndifferenceIdentities) {
  const model::BasicGame game(params_, p_star_);
  const double cut = game.alice_t3_cutoff();
  EXPECT_NEAR(game.alice_t3_cont(cut), game.alice_t3_stop(),
              1e-10 * (1.0 + game.alice_t3_stop()));
  if (const auto band = game.bob_t2_band()) {
    // lo == 0 is the domain boundary (mu >= r regime), not an indifference
    // point; only strictly interior endpoints satisfy cont == stop.
    if (band->lo > 0.0) {
      EXPECT_NEAR(game.bob_t2_cont(band->lo), band->lo,
                  1e-5 * (1.0 + band->lo));
    }
    EXPECT_NEAR(game.bob_t2_cont(band->hi), band->hi, 1e-5 * (1.0 + band->hi));
  }
}

TEST_P(RandomizedModelProperties, SuccessRateIsAProbabilityEverywhere) {
  const model::BasicGame basic(params_, p_star_);
  const model::CollateralGame coll(params_, p_star_, 0.4);
  const model::PremiumGame prem(params_, p_star_, 0.4);
  const model::CommitmentGame comm(params_, p_star_);
  for (double sr : {basic.success_rate(), coll.success_rate(),
                    prem.success_rate(), comm.success_rate()}) {
    EXPECT_GE(sr, -1e-12);
    EXPECT_LE(sr, 1.0 + 1e-9);
  }
}

TEST_P(RandomizedModelProperties, ReducedModelsCoincide) {
  // Q = 0 collateral game == pr = 0 premium game == basic game; the
  // neutral extended game == basic game.
  const model::BasicGame basic(params_, p_star_);
  const model::CollateralGame coll(params_, p_star_, 0.0);
  const model::PremiumGame prem(params_, p_star_, 0.0);
  const model::ExtendedGame ext(model::ExtendedParams::from_basic(params_),
                                p_star_);
  EXPECT_NEAR(coll.success_rate(), basic.success_rate(), 1e-6);
  EXPECT_NEAR(prem.success_rate(), basic.success_rate(), 1e-6);
  EXPECT_NEAR(ext.success_rate(), basic.success_rate(), 1e-6);
  EXPECT_NEAR(ext.alice_t3_cutoff(), basic.alice_t3_cutoff(), 1e-10);
}

TEST_P(RandomizedModelProperties, MechanismOrderingHolds) {
  // At equal deposit, collateral >= premium >= basic (weakly), and the
  // commitment protocol beats the basic HTLC.
  const double d = 0.3;
  const double basic = model::BasicGame(params_, p_star_).success_rate();
  const double coll =
      model::CollateralGame(params_, p_star_, d).success_rate();
  const double prem = model::PremiumGame(params_, p_star_, d).success_rate();
  const double comm = model::CommitmentGame(params_, p_star_).success_rate();
  // Collateral-vs-premium can invert by O(1e-3) in saturated regimes (the
  // premium is reclaimed one eps_b earlier, shifting Alice's cutoff a hair
  // lower); the ordering is strict away from saturation (bench X5).
  EXPECT_GE(coll, prem - 2e-3);
  EXPECT_GE(prem, basic - 1e-6);
  EXPECT_GE(comm, basic - 5e-3);
}

TEST_P(RandomizedModelProperties, EvaluatorMatchesGameOnEquilibrium) {
  const model::BasicGame game(params_, p_star_);
  const model::StrategyEvaluator evaluator(params_, p_star_);
  const model::ThresholdProfile eq = evaluator.equilibrium();
  EXPECT_NEAR(evaluator.success_rate(eq), game.success_rate(), 1e-6);
  EXPECT_NEAR(evaluator.alice_value(eq), game.alice_t1_cont(), 1e-5);
  EXPECT_NEAR(evaluator.bob_value(eq), game.bob_t1_cont(), 1e-5);
}

TEST_P(RandomizedModelProperties, ProfileMcMatchesEvaluator) {
  // Differential test: simulate an arbitrary (non-equilibrium) profile and
  // compare with the closed-form evaluator.
  const model::StrategyEvaluator evaluator(params_, p_star_);
  model::ThresholdProfile profile;
  profile.alice_cutoff = p_star_ * (0.4 + 0.4 * math::uniform01(rng_));
  const double lo = params_.p_t0 * 0.5 * math::uniform01(rng_);
  const double hi = lo + params_.p_t0 * (0.5 + math::uniform01(rng_));
  profile.bob_region = math::IntervalSet({{lo, hi}});

  sim::McRunSpec spec;
  spec.evaluator = sim::McEvaluator::kProfile;
  spec.params = params_;
  spec.profile = profile;
  spec.config.samples = 60000;
  spec.config.seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  spec.config.threads = 1;
  const sim::McEstimate est = sim::McRunner::run(spec).estimate;
  const auto ci = est.success.wilson_interval(0.999);
  const double analytic = evaluator.success_rate(profile);
  EXPECT_GE(analytic, ci.lo - 0.01);
  EXPECT_LE(analytic, ci.hi + 0.01);
}

TEST_P(RandomizedModelProperties, GameTreeAgreesOnRandomParams) {
  const model::BasicGame game(params_, p_star_);
  model::GameTreeConfig cfg;
  cfg.strata = 400;
  const model::GameTreeSolution tree =
      model::solve_game_tree(params_, p_star_, cfg);
  EXPECT_NEAR(tree.success_rate, game.success_rate(), 0.01);
  EXPECT_NEAR(tree.alice_t1_cont, game.alice_t1_cont(),
              0.01 * (1.0 + game.alice_t1_cont()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedModelProperties,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace swapgame
