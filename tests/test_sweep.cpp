// Tests for the parallel sweep engine (src/sweep/sweep) and the solver
// cache it feeds (src/model/solver_cache): ordering, exception
// propagation, serial equivalence, deterministic chunking, and warm-vs-cold
// solver agreement.
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/basic_game.hpp"
#include "model/solver_cache.hpp"

namespace swapgame::sweep {
namespace {

TEST(PlanChunks, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (unsigned workers : {1u, 3u, 8u}) {
      const auto chunks = plan_chunks(n, workers, 1, 0);
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : chunks) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        covered += end - begin;
        expect_begin = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(PlanChunks, FixedChunkIgnoresWorkerCount) {
  const auto a = plan_chunks(100, 1, 1, 32);
  const auto b = plan_chunks(100, 16, 1, 32);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);  // 32 + 32 + 32 + 4
  EXPECT_EQ(a.back().second - a.back().first, 4u);
}

TEST(PlanChunks, MinChunkBoundsPartition) {
  for (const auto& [begin, end] : plan_chunks(10, 8, 4, 0)) {
    // Only the final chunk may be smaller than min_chunk.
    if (end != 10) {
      EXPECT_GE(end - begin, 4u);
    }
  }
}

TEST(ParallelMap, PreservesOrder) {
  const std::size_t n = 1000;
  const auto out =
      parallel_map<std::size_t>(n, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, MatchesSerialReferenceExactly) {
  // Same floating-point work serial and parallel must agree bitwise: the
  // engine only partitions indices, it never reorders the per-index math.
  const std::size_t n = 257;
  const auto work = [](std::size_t i) {
    double acc = 0.0;
    for (int k = 1; k <= 20; ++k) {
      acc += std::sin(static_cast<double>(i) / k) / k;
    }
    return acc;
  };
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = work(i);

  SweepOptions parallel_opts;
  parallel_opts.threads = 4;
  const auto parallel = parallel_map<double>(n, work, parallel_opts);
  SweepOptions inline_opts;
  inline_opts.threads = 1;
  const auto inline_run = parallel_map<double>(n, work, inline_opts);

  ASSERT_EQ(parallel.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(parallel[i], serial[i]);
    EXPECT_EQ(inline_run[i], serial[i]);
  }
}

TEST(ParallelMap, PropagatesFirstException) {
  ThreadPool pool(4);
  SweepOptions opts;
  opts.pool = &pool;
  opts.min_chunk = 1;
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_map<int>(
          64,
          [&executed](std::size_t i) {
            executed.fetch_add(1);
            if (i % 16 == 3) throw std::runtime_error("boom at " +
                                                      std::to_string(i));
            return static_cast<int>(i);
          },
          opts),
      std::runtime_error);
  // The pool stays usable after a throwing batch.
  const auto out = parallel_map<int>(
      8, [](std::size_t i) { return static_cast<int>(i); }, opts);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7], 7);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(0, [&ran](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelMapStateful, OneStatePerChunkAndOrderPreserved) {
  std::atomic<int> states_created{0};
  SweepOptions opts;
  opts.fixed_chunk = 16;
  const std::size_t n = 100;
  const auto out = parallel_map_stateful<std::size_t>(
      n,
      [&states_created] {
        states_created.fetch_add(1);
        return std::size_t{0};
      },
      [](std::size_t& count, std::size_t i) {
        ++count;  // chunk-local: no synchronization needed
        return i + count - count + i;
      },
      opts);
  EXPECT_EQ(states_created.load(), 7);  // ceil(100 / 16)
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(ParallelMapStateful, FixedChunkResultIndependentOfThreads) {
  // With pinned chunk boundaries the (state, index) pairing -- and thus any
  // state-dependent result -- must not depend on the worker count.
  const std::size_t n = 64;
  const auto run = [n](unsigned threads) {
    SweepOptions opts;
    opts.threads = threads;
    opts.fixed_chunk = 10;
    return parallel_map_stateful<int>(
        n, [] { return 0; },
        [](int& calls, std::size_t) { return calls++; }, opts);
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(SharedPool, IsStableAndSized) {
  ThreadPool& a = shared_pool();
  ThreadPool& b = shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), default_threads());
  EXPECT_GE(a.size(), 1u);
}

// --- Solver cache: warm-started sweeps agree with cold construction. ------

TEST(SolverCache, WarmSweepMatchesColdAcrossRateGrid) {
  const model::SwapParams params = model::SwapParams::table3_defaults();
  model::BasicGameSweeper sweeper(params);
  for (double p_star = 1.6; p_star <= 2.6 + 1e-9; p_star += 0.02) {
    const model::BasicGame cold(params, p_star);
    const auto warm = sweeper.at(p_star);
    ASSERT_NE(warm, nullptr);
    EXPECT_NEAR(warm->success_rate(), cold.success_rate(), 1e-10);
    EXPECT_NEAR(warm->alice_t1_cont(), cold.alice_t1_cont(), 1e-10);
    EXPECT_NEAR(warm->bob_t1_cont(), cold.bob_t1_cont(), 1e-10);
    EXPECT_NEAR(warm->alice_t3_cutoff(), cold.alice_t3_cutoff(), 1e-10);
    ASSERT_EQ(warm->t2_roots().size(), cold.t2_roots().size());
    for (std::size_t i = 0; i < cold.t2_roots().size(); ++i) {
      EXPECT_NEAR(warm->t2_roots()[i], cold.t2_roots()[i], 1e-10);
    }
  }
}

TEST(SolverCache, SweeperMemoizesRepeatQueries) {
  model::BasicGameSweeper sweeper(model::SwapParams::table3_defaults());
  const auto first = sweeper.at(2.0);
  const auto again = sweeper.at(2.0);
  EXPECT_EQ(first.get(), again.get());
}

TEST(SolverCache, CollateralWarmSweepMatchesCold) {
  const model::SwapParams params = model::SwapParams::table3_defaults();
  model::CollateralGameSweeper sweeper(params);
  for (double q : {0.0, 0.5, 1.0}) {
    for (double p_star = 1.8; p_star <= 2.4 + 1e-9; p_star += 0.1) {
      const model::CollateralGame cold(params, p_star, q);
      const auto warm = sweeper.at(p_star, q);
      ASSERT_NE(warm, nullptr);
      EXPECT_NEAR(warm->success_rate(), cold.success_rate(), 1e-10);
      EXPECT_NEAR(warm->alice_t1_cont(), cold.alice_t1_cont(), 1e-10);
      EXPECT_NEAR(warm->bob_t1_cont(), cold.bob_t1_cont(), 1e-10);
    }
  }
}

TEST(SolverCache, CachedFeasibleBandMatchesDirect) {
  const model::SwapParams params = model::SwapParams::table3_defaults();
  const model::FeasibleBand direct = model::alice_feasible_band(params);
  const model::FeasibleBand cached = model::cached_feasible_band(params);
  EXPECT_EQ(cached.lo, direct.lo);
  EXPECT_EQ(cached.hi, direct.hi);
  // Distinct parameters are distinct keys, never stale hits.
  model::SwapParams other = params;
  other.gbm.sigma += 0.01;
  const model::FeasibleBand other_cached = model::cached_feasible_band(other);
  const model::FeasibleBand other_direct = model::alice_feasible_band(other);
  EXPECT_EQ(other_cached.lo, other_direct.lo);
  EXPECT_EQ(other_cached.hi, other_direct.hi);
  EXPECT_NE(other_cached.lo, cached.lo);
}

}  // namespace
}  // namespace swapgame::sweep
