// Tests for the DEX match-making layer (src/market): order book semantics
// and HTLC settlement of matches.
#include <gtest/gtest.h>

#include "market/order_book.hpp"
#include "market/settlement.hpp"

namespace swapgame::market {
namespace {

model::AgentParams prefs(double alpha = 0.3, double r = 0.01) {
  return {alpha, r};
}

TEST(OrderBook, ValidatesInput) {
  OrderBook book;
  EXPECT_THROW((void)book.submit(Side::kBuyTokenB, "t", 0.0, prefs()),
               std::invalid_argument);
  EXPECT_THROW((void)book.submit(Side::kBuyTokenB, "", 2.0, prefs()),
               std::invalid_argument);
  EXPECT_THROW((void)book.submit(Side::kBuyTokenB, "t", 2.0, prefs(0.3, 0.0)),
               std::invalid_argument);
}

TEST(OrderBook, RestingOrdersDoNotMatchWithoutCross) {
  OrderBook book;
  book.submit(Side::kBuyTokenB, "buyer", 1.9, prefs());
  book.submit(Side::kSellTokenB, "seller", 2.1, prefs());
  EXPECT_FALSE(book.take_match().has_value());
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 1u);
  EXPECT_EQ(book.depth(Side::kSellTokenB), 1u);
  EXPECT_DOUBLE_EQ(*book.best_bid(), 1.9);
  EXPECT_DOUBLE_EQ(*book.best_ask(), 2.1);
}

TEST(OrderBook, CrossMatchesAtMakerPrice) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "maker", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "taker", 2.3, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_DOUBLE_EQ(match->rate, 2.0);  // maker's (resting) price
  EXPECT_EQ(match->buy.trader, "taker");
  EXPECT_EQ(match->sell.trader, "maker");
  EXPECT_EQ(book.depth(Side::kSellTokenB), 0u);
}

TEST(OrderBook, PricePriorityBestOppositeFirst) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "expensive", 2.2, prefs());
  book.submit(Side::kSellTokenB, "cheap", 1.8, prefs());
  book.submit(Side::kBuyTokenB, "buyer", 2.5, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->sell.trader, "cheap");
  EXPECT_DOUBLE_EQ(match->rate, 1.8);
  EXPECT_EQ(book.depth(Side::kSellTokenB), 1u);
}

TEST(OrderBook, TimePriorityAtEqualPrice) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "first", 2.0, prefs());
  book.submit(Side::kSellTokenB, "second", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "buyer", 2.0, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->sell.trader, "first");
}

TEST(OrderBook, SellTakerCrossesBestBid) {
  OrderBook book;
  book.submit(Side::kBuyTokenB, "low", 1.9, prefs());
  book.submit(Side::kBuyTokenB, "high", 2.1, prefs());
  book.submit(Side::kSellTokenB, "seller", 2.0, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->buy.trader, "high");
  EXPECT_DOUBLE_EQ(match->rate, 2.1);  // maker bid
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 1u);
}

TEST(OrderBook, CancelRemovesRestingOrder) {
  OrderBook book;
  const auto id = book.submit(Side::kBuyTokenB, "buyer", 1.9, prefs());
  EXPECT_TRUE(book.cancel(id));
  EXPECT_FALSE(book.cancel(id));
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 0u);
  // A later crossing sell no longer matches.
  book.submit(Side::kSellTokenB, "seller", 1.8, prefs());
  EXPECT_FALSE(book.take_match().has_value());
}

TEST(OrderBook, MatchesAreFifo) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "s1", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "b1", 2.0, prefs());
  book.submit(Side::kSellTokenB, "s2", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "b2", 2.0, prefs());
  EXPECT_EQ(book.matches_produced(), 2u);
  EXPECT_EQ(book.take_match()->buy.trader, "b1");
  EXPECT_EQ(book.take_match()->buy.trader, "b2");
  EXPECT_FALSE(book.take_match().has_value());
}

// ---- Settlement. ------------------------------------------------------------

Match make_match(double rate, double buyer_alpha = 0.3,
                 double seller_alpha = 0.3) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "seller", rate, prefs(seller_alpha));
  book.submit(Side::kBuyTokenB, "buyer", rate, prefs(buyer_alpha));
  return *book.take_match();
}

TEST(Settlement, ParamsInheritTraderPreferences) {
  const Match match = make_match(2.0, 0.45, 0.25);
  const model::SwapParams params = params_for_match(match, SettlementConfig{});
  EXPECT_DOUBLE_EQ(params.alice.alpha, 0.45);  // buyer plays Alice
  EXPECT_DOUBLE_EQ(params.bob.alpha, 0.25);
}

TEST(Settlement, ViableMatchSettlesOnChain) {
  const Match match = make_match(2.0);
  math::Xoshiro256 rng(7);
  const Settlement s = settle_match(match, SettlementConfig{}, rng);
  EXPECT_NEAR(s.predicted_sr, 0.7143, 2e-3);
  EXPECT_TRUE(s.initiated);
  EXPECT_TRUE(s.result.conservation_ok);
}

TEST(Settlement, OffBandRateNeverInitiates) {
  const Match match = make_match(5.0);  // far above the feasible band
  math::Xoshiro256 rng(7);
  const Settlement s = settle_match(match, SettlementConfig{}, rng);
  EXPECT_FALSE(s.initiated);
  EXPECT_EQ(s.result.outcome, proto::SwapOutcome::kNotInitiated);
}

TEST(Settlement, EmpiricalCompletionTracksPrediction) {
  // Settle the same viable match across many sampled paths; the realized
  // completion rate approximates the analytic SR.
  const Match match = make_match(2.0);
  math::Xoshiro256 rng(11);
  std::vector<Settlement> settlements;
  for (int i = 0; i < 400; ++i) {
    settlements.push_back(settle_match(match, SettlementConfig{}, rng));
  }
  const MarketStats stats = aggregate(settlements);
  EXPECT_EQ(stats.matches, 400u);
  EXPECT_EQ(stats.initiated, 400u);
  EXPECT_NEAR(stats.completion_rate(), stats.mean_predicted_sr, 0.07);
}

TEST(Settlement, CollateralRaisesCompletion) {
  const Match match = make_match(2.0);
  SettlementConfig with_q;
  with_q.collateral = 1.0;
  math::Xoshiro256 rng_a(13), rng_b(13);
  int base = 0, coll = 0;
  for (int i = 0; i < 250; ++i) {
    if (settle_match(match, SettlementConfig{}, rng_a).result.success) ++base;
    if (settle_match(match, with_q, rng_b).result.success) ++coll;
  }
  EXPECT_GT(coll, base);
}

}  // namespace
}  // namespace swapgame::market
