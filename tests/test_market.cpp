// Tests for the DEX match-making layer (src/market): order book semantics
// and HTLC settlement of matches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "market/order_book.hpp"
#include "market/settlement.hpp"

namespace swapgame::market {
namespace {

model::AgentParams prefs(double alpha = 0.3, double r = 0.01) {
  return {alpha, r};
}

TEST(OrderBook, ValidatesInput) {
  OrderBook book;
  EXPECT_THROW((void)book.submit(Side::kBuyTokenB, "t", 0.0, prefs()),
               std::invalid_argument);
  EXPECT_THROW((void)book.submit(Side::kBuyTokenB, "", 2.0, prefs()),
               std::invalid_argument);
  EXPECT_THROW((void)book.submit(Side::kBuyTokenB, "t", 2.0, prefs(0.3, 0.0)),
               std::invalid_argument);
}

TEST(OrderBook, RestingOrdersDoNotMatchWithoutCross) {
  OrderBook book;
  book.submit(Side::kBuyTokenB, "buyer", 1.9, prefs());
  book.submit(Side::kSellTokenB, "seller", 2.1, prefs());
  EXPECT_FALSE(book.take_match().has_value());
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 1u);
  EXPECT_EQ(book.depth(Side::kSellTokenB), 1u);
  EXPECT_DOUBLE_EQ(*book.best_bid(), 1.9);
  EXPECT_DOUBLE_EQ(*book.best_ask(), 2.1);
}

TEST(OrderBook, CrossMatchesAtMakerPrice) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "maker", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "taker", 2.3, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_DOUBLE_EQ(match->rate, 2.0);  // maker's (resting) price
  EXPECT_EQ(match->buy.trader, "taker");
  EXPECT_EQ(match->sell.trader, "maker");
  EXPECT_EQ(book.depth(Side::kSellTokenB), 0u);
}

TEST(OrderBook, PricePriorityBestOppositeFirst) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "expensive", 2.2, prefs());
  book.submit(Side::kSellTokenB, "cheap", 1.8, prefs());
  book.submit(Side::kBuyTokenB, "buyer", 2.5, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->sell.trader, "cheap");
  EXPECT_DOUBLE_EQ(match->rate, 1.8);
  EXPECT_EQ(book.depth(Side::kSellTokenB), 1u);
}

TEST(OrderBook, TimePriorityAtEqualPrice) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "first", 2.0, prefs());
  book.submit(Side::kSellTokenB, "second", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "buyer", 2.0, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->sell.trader, "first");
}

TEST(OrderBook, SellTakerCrossesBestBid) {
  OrderBook book;
  book.submit(Side::kBuyTokenB, "low", 1.9, prefs());
  book.submit(Side::kBuyTokenB, "high", 2.1, prefs());
  book.submit(Side::kSellTokenB, "seller", 2.0, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->buy.trader, "high");
  EXPECT_DOUBLE_EQ(match->rate, 2.1);  // maker bid
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 1u);
}

TEST(OrderBook, CancelRemovesRestingOrder) {
  OrderBook book;
  const auto id = book.submit(Side::kBuyTokenB, "buyer", 1.9, prefs());
  EXPECT_TRUE(book.cancel(id));
  EXPECT_FALSE(book.cancel(id));
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 0u);
  // A later crossing sell no longer matches.
  book.submit(Side::kSellTokenB, "seller", 1.8, prefs());
  EXPECT_FALSE(book.take_match().has_value());
}

TEST(OrderBook, CancelAfterMatchReturnsFalse) {
  // Once a resting order has been consumed by a cross, its id must leave
  // the cancel index: cancelling it is a no-op that reports false.
  OrderBook book;
  const auto maker = book.submit(Side::kSellTokenB, "maker", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "taker", 2.3, prefs());
  ASSERT_TRUE(book.take_match().has_value());
  EXPECT_FALSE(book.cancel(maker));
  EXPECT_EQ(book.depth(Side::kSellTokenB), 0u);
}

TEST(OrderBook, CancelThenEqualPriceKeepsFifo) {
  // Cancelling the first of two equal-priced makers must leave the
  // second's time priority intact -- and never disturb its book position.
  OrderBook book;
  const auto first = book.submit(Side::kSellTokenB, "first", 2.0, prefs());
  book.submit(Side::kSellTokenB, "second", 2.0, prefs());
  book.submit(Side::kSellTokenB, "third", 2.0, prefs());
  EXPECT_TRUE(book.cancel(first));
  book.submit(Side::kBuyTokenB, "buyer", 2.0, prefs());
  const auto match = book.take_match();
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->sell.trader, "second");
  EXPECT_EQ(book.depth(Side::kSellTokenB), 1u);
}

TEST(OrderBook, IdIndexStaysConsistentUnderChurn) {
  // Interleaved rests, crosses and cancels on both sides: every resting id
  // is cancellable exactly once, consumed ids never are, and depth always
  // matches the live-order count.
  OrderBook book;
  std::vector<std::uint64_t> live;
  std::vector<std::uint64_t> consumed;
  for (int round = 0; round < 50; ++round) {
    const double bid = 1.0 + 0.01 * round;
    const double ask = 3.0 - 0.01 * round;
    live.push_back(book.submit(Side::kBuyTokenB, "b", bid, prefs()));
    live.push_back(book.submit(Side::kSellTokenB, "s", ask, prefs()));
    if (round % 5 == 0 && !live.empty()) {
      EXPECT_TRUE(book.cancel(live.front()));
      live.erase(live.begin());
    }
    if (round % 7 == 0) {
      // A marketable buy consumes the current best ask.
      book.submit(Side::kBuyTokenB, "taker", 3.5, prefs());
      const auto match = book.take_match();
      ASSERT_TRUE(match.has_value());
      consumed.push_back(match->sell.id);
      live.erase(std::find(live.begin(), live.end(), match->sell.id));
    }
  }
  EXPECT_EQ(book.depth(Side::kBuyTokenB) + book.depth(Side::kSellTokenB),
            live.size());
  for (const std::uint64_t id : consumed) EXPECT_FALSE(book.cancel(id));
  for (const std::uint64_t id : live) EXPECT_TRUE(book.cancel(id));
  EXPECT_EQ(book.depth(Side::kBuyTokenB), 0u);
  EXPECT_EQ(book.depth(Side::kSellTokenB), 0u);
}

TEST(OrderBook, MatchesAreFifo) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "s1", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "b1", 2.0, prefs());
  book.submit(Side::kSellTokenB, "s2", 2.0, prefs());
  book.submit(Side::kBuyTokenB, "b2", 2.0, prefs());
  EXPECT_EQ(book.matches_produced(), 2u);
  EXPECT_EQ(book.take_match()->buy.trader, "b1");
  EXPECT_EQ(book.take_match()->buy.trader, "b2");
  EXPECT_FALSE(book.take_match().has_value());
}

// ---- Settlement. ------------------------------------------------------------

Match make_match(double rate, double buyer_alpha = 0.3,
                 double seller_alpha = 0.3) {
  OrderBook book;
  book.submit(Side::kSellTokenB, "seller", rate, prefs(seller_alpha));
  book.submit(Side::kBuyTokenB, "buyer", rate, prefs(buyer_alpha));
  return *book.take_match();
}

TEST(Settlement, ParamsInheritTraderPreferences) {
  const Match match = make_match(2.0, 0.45, 0.25);
  const model::SwapParams params = params_for_match(match, SettlementConfig{});
  EXPECT_DOUBLE_EQ(params.alice.alpha, 0.45);  // buyer plays Alice
  EXPECT_DOUBLE_EQ(params.bob.alpha, 0.25);
}

TEST(Settlement, ViableMatchSettlesOnChain) {
  const Match match = make_match(2.0);
  const Settlement s = settle_match(match, SettlementConfig{}, 0);
  EXPECT_NEAR(s.predicted_sr, 0.7143, 2e-3);
  EXPECT_TRUE(s.initiated);
  EXPECT_TRUE(s.result.conservation_ok);
}

TEST(Settlement, OffBandRateNeverInitiates) {
  const Match match = make_match(5.0);  // far above the feasible band
  const Settlement s = settle_match(match, SettlementConfig{}, 0);
  EXPECT_FALSE(s.initiated);
  EXPECT_EQ(s.result.outcome, proto::SwapOutcome::kNotInitiated);
}

TEST(Settlement, EmpiricalCompletionTracksPrediction) {
  // Settle the same viable match across many per-session streams; the
  // realized completion rate approximates the analytic SR.
  const Match match = make_match(2.0);
  std::vector<Settlement> settlements;
  for (std::uint64_t i = 0; i < 400; ++i) {
    settlements.push_back(settle_match(match, SettlementConfig{}, i));
  }
  const MarketStats stats = aggregate(settlements);
  EXPECT_EQ(stats.matches, 400u);
  EXPECT_EQ(stats.initiated, 400u);
  EXPECT_NEAR(stats.completion_rate(), stats.mean_predicted_sr, 0.07);
}

TEST(Settlement, CollateralRaisesCompletion) {
  const Match match = make_match(2.0);
  SettlementConfig with_q;
  with_q.collateral = 1.0;
  int base = 0, coll = 0;
  for (std::uint64_t i = 0; i < 250; ++i) {
    if (settle_match(match, SettlementConfig{}, i).result.success) ++base;
    if (settle_match(match, with_q, i).result.success) ++coll;
  }
  EXPECT_GT(coll, base);
}

TEST(Settlement, ResultIsIndependentOfSettlementOrder) {
  // The satellite-4 regression: a session's secret and price path come
  // from its own counter-keyed stream, so settling [m0, m1, m2] forwards
  // or backwards yields bit-identical per-session results.
  const Match match = make_match(2.0);
  const SettlementConfig config;
  std::vector<Settlement> forward, backward;
  for (std::uint64_t i = 0; i < 8; ++i) {
    forward.push_back(settle_match(match, config, i));
  }
  for (std::uint64_t i = 8; i-- > 0;) {
    backward.insert(backward.begin(), settle_match(match, config, i));
  }
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].result.outcome, backward[i].result.outcome);
    EXPECT_EQ(forward[i].result.alice.final_token_a,
              backward[i].result.alice.final_token_a);
    EXPECT_EQ(forward[i].result.alice.realized_utility,
              backward[i].result.alice.realized_utility);
    EXPECT_EQ(forward[i].result.bob.realized_utility,
              backward[i].result.bob.realized_utility);
  }
  // Distinct sessions draw distinct paths: not every outcome can coincide
  // with session 0's final balances on a viable-but-risky match.
  bool any_difference = false;
  for (std::size_t i = 1; i < forward.size(); ++i) {
    if (forward[i].result.alice.realized_utility !=
        forward[0].result.alice.realized_utility) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Settlement, CompletionRateIsNaNWhenNeverInitiated) {
  // The satellite-3 regression: an empty (or never-initiated) batch has NO
  // empirical completion rate; 0.0 would be a fake number that drags down
  // averages.  Matches McEstimate::conditional_success_rate's convention.
  const MarketStats empty = aggregate({});
  EXPECT_TRUE(std::isnan(empty.completion_rate()));

  const Match match = make_match(5.0);  // off-band: never initiates
  std::vector<Settlement> settlements;
  for (std::uint64_t i = 0; i < 4; ++i) {
    settlements.push_back(settle_match(match, SettlementConfig{}, i));
  }
  const MarketStats stats = aggregate(settlements);
  EXPECT_EQ(stats.initiated, 0u);
  EXPECT_TRUE(std::isnan(stats.completion_rate()));
}

}  // namespace
}  // namespace swapgame::market
