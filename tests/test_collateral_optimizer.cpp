// Tests for collateral sizing (src/model/collateral_optimizer).
#include "model/collateral_optimizer.hpp"

#include <gtest/gtest.h>

#include "model/collateral_game.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(OptimizeCollateral, ValidatesArguments) {
  EXPECT_THROW((void)optimize_collateral(defaults(), 2.0,
                                         CollateralObjective::kSuccessRate,
                                         1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)optimize_collateral(defaults(), 2.0,
                                         CollateralObjective::kSuccessRate,
                                         -1.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW((void)optimize_collateral(defaults(), 2.0,
                                         CollateralObjective::kSuccessRate,
                                         0.0, 2.0, 1),
               std::invalid_argument);
}

TEST(OptimizeCollateral, SuccessRateObjectivePushesQUp) {
  // SR is monotone in Q at defaults, so the SR-optimal Q is near q_hi.
  const CollateralChoice best = optimize_collateral(
      defaults(), 2.0, CollateralObjective::kSuccessRate, 0.0, 2.0, 32);
  EXPECT_GT(best.collateral, 1.5);
  EXPECT_NEAR(best.success_rate, 1.0, 5e-3);
  EXPECT_GE(best.objective_value, best.success_rate - 1e-12);
}

TEST(OptimizeCollateral, JointSurplusHasInteriorOptimum) {
  const CollateralChoice best = optimize_collateral(
      defaults(), 2.0, CollateralObjective::kJointSurplus, 0.0, 4.0, 64);
  EXPECT_TRUE(best.engaged);
  EXPECT_GT(best.collateral, 0.0);
  EXPECT_LT(best.collateral, 4.0);
  // The optimum must beat both endpoints.
  const CollateralGame none(defaults(), 2.0, 0.0);
  const double surplus_none = (none.alice_t1_cont() - none.alice_t1_stop()) +
                              (none.bob_t1_cont() - none.bob_t1_stop());
  EXPECT_GE(best.objective_value, surplus_none - 1e-9);
}

TEST(OptimizeCollateral, ObjectiveValueConsistentWithDirectEvaluation) {
  const CollateralChoice best = optimize_collateral(
      defaults(), 2.0, CollateralObjective::kJointSurplus, 0.0, 4.0, 32);
  const CollateralGame game(defaults(), 2.0, best.collateral);
  const double direct = (game.alice_t1_cont() - game.alice_t1_stop()) +
                        (game.bob_t1_cont() - game.bob_t1_stop());
  EXPECT_NEAR(best.objective_value, direct, 1e-9);
  EXPECT_NEAR(best.success_rate, game.success_rate(), 1e-9);
}

TEST(MinCollateralForSr, FindsMinimalQ) {
  const auto q = min_collateral_for_sr(defaults(), 2.0, 0.95);
  ASSERT_TRUE(q.has_value());
  EXPECT_GT(*q, 0.0);
  // Achieves the target...
  EXPECT_GE(CollateralGame(defaults(), 2.0, *q).success_rate(), 0.95 - 1e-6);
  // ...and is minimal up to tolerance.
  EXPECT_LT(CollateralGame(defaults(), 2.0, *q - 0.01).success_rate(), 0.95);
}

TEST(MinCollateralForSr, ZeroWhenAlreadyAchieved) {
  // SR at Q=0 is ~0.714, so a 0.5 target needs no collateral.
  const auto q = min_collateral_for_sr(defaults(), 2.0, 0.5);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, 0.0);
}

TEST(MinCollateralForSr, NulloptWhenUnreachable) {
  // A hopeless parameterization: Bob never continues regardless of Q?  Use
  // an absurd target above 1 - impossible; instead use tiny q_hi with a
  // high target.
  const auto q = min_collateral_for_sr(defaults(), 2.0, 0.9999, /*q_hi=*/0.05);
  EXPECT_FALSE(q.has_value());
}

TEST(MinCollateralForSr, ValidatesTarget) {
  EXPECT_THROW((void)min_collateral_for_sr(defaults(), 2.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)min_collateral_for_sr(defaults(), 2.0, 1.5),
               std::invalid_argument);
}

TEST(MinCollateralForSr, MonotoneInTarget) {
  const auto q90 = min_collateral_for_sr(defaults(), 2.0, 0.90);
  const auto q99 = min_collateral_for_sr(defaults(), 2.0, 0.99);
  ASSERT_TRUE(q90.has_value());
  ASSERT_TRUE(q99.has_value());
  EXPECT_LT(*q90, *q99);
}

}  // namespace
}  // namespace swapgame::model
