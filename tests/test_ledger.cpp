// Unit and property tests for the simulated ledger (src/chain/ledger):
// transaction lifecycle, HTLC semantics, vault operations and the supply
// conservation invariant.
#include "chain/ledger.hpp"

#include <gtest/gtest.h>

#include "crypto/secret.hpp"
#include "math/rng.hpp"

namespace swapgame::chain {
namespace {

constexpr double kTau = 3.0;
constexpr double kEps = 1.0;

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : ledger_(make_params(), queue_) {
    ledger_.create_account(alice_, Amount::from_tokens(10.0));
    ledger_.create_account(bob_, Amount::from_tokens(5.0));
  }

  static ChainParams make_params() {
    return {ChainId::kChainA, kTau, kEps};
  }

  crypto::Secret make_secret(std::uint64_t seed = 1) {
    math::Xoshiro256 rng(seed);
    return crypto::Secret::generate(rng);
  }

  EventQueue queue_;
  Ledger ledger_;
  const Address alice_{"alice"};
  const Address bob_{"bob"};
};

TEST_F(LedgerTest, ChainParamsValidation) {
  EXPECT_THROW((ChainParams{ChainId::kChainA, 0.0, 1.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((ChainParams{ChainId::kChainA, 3.0, 0.0}.validate()),
               std::invalid_argument);
  // Eq. (3): epsilon must be strictly less than tau.
  EXPECT_THROW((ChainParams{ChainId::kChainA, 3.0, 3.0}.validate()),
               std::invalid_argument);
  EXPECT_NO_THROW((ChainParams{ChainId::kChainA, 3.0, 2.9}.validate()));
}

TEST_F(LedgerTest, AccountLifecycle) {
  EXPECT_TRUE(ledger_.has_account(alice_));
  EXPECT_FALSE(ledger_.has_account(Address{"carol"}));
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(10.0));
  EXPECT_THROW((void)ledger_.balance(Address{"carol"}), std::out_of_range);
  EXPECT_THROW(ledger_.create_account(alice_, Amount{}), std::invalid_argument);
}

TEST_F(LedgerTest, TransferConfirmsAfterTau) {
  const TxId id =
      ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(2.0)});
  EXPECT_EQ(ledger_.transaction(id).status, TxStatus::kPending);
  // Funds do not move before confirmation.
  queue_.run_until(kTau - 0.001);
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(5.0));
  queue_.run_until(kTau);
  EXPECT_EQ(ledger_.transaction(id).status, TxStatus::kConfirmed);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(8.0));
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(7.0));
}

TEST_F(LedgerTest, TransferInsufficientFundsFails) {
  const TxId id =
      ledger_.submit(TransferPayload{bob_, alice_, Amount::from_tokens(50.0)});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(id).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.transaction(id).failure_reason,
            "transfer: insufficient funds");
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(5.0));
}

TEST_F(LedgerTest, TransferUnknownAccountFails) {
  const TxId id = ledger_.submit(
      TransferPayload{alice_, Address{"nobody"}, Amount::from_tokens(1.0)});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(id).status, TxStatus::kFailed);
}

TEST_F(LedgerTest, ValidationHappensAtConfirmationTime) {
  // Two transfers submitted back-to-back; the first empties the account, so
  // the second -- valid at submission -- fails at its confirmation.
  ledger_.submit(TransferPayload{bob_, alice_, Amount::from_tokens(5.0)});
  const TxId second =
      ledger_.submit(TransferPayload{bob_, alice_, Amount::from_tokens(5.0)});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(second).status, TxStatus::kFailed);
}

TEST_F(LedgerTest, HtlcSuccessfulClaim) {
  const crypto::Secret secret = make_secret();
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), 20.0});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  ASSERT_TRUE(ledger_.has_htlc(contract));
  EXPECT_EQ(ledger_.htlc(contract).state, HtlcState::kLocked);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(8.0));

  ledger_.submit(ClaimHtlcPayload{contract, secret, bob_});
  queue_.run_until(2.0 * kTau);
  EXPECT_EQ(ledger_.htlc(contract).state, HtlcState::kClaimed);
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(7.0));
  ASSERT_TRUE(ledger_.htlc(contract).revealed_secret.has_value());
  EXPECT_EQ(*ledger_.htlc(contract).revealed_secret, secret);
}

TEST_F(LedgerTest, HtlcWrongPreimageFails) {
  const crypto::Secret secret = make_secret(1);
  const crypto::Secret wrong = make_secret(2);
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), 20.0});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  const TxId claim = ledger_.submit(ClaimHtlcPayload{contract, wrong, bob_});
  queue_.run_until(2.0 * kTau);
  EXPECT_EQ(ledger_.transaction(claim).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.transaction(claim).failure_reason, "claim: wrong preimage");
  EXPECT_EQ(ledger_.htlc(contract).state, HtlcState::kLocked);
}

TEST_F(LedgerTest, HtlcClaimConfirmingAfterExpiryFails) {
  const crypto::Secret secret = make_secret();
  const double expiry = 5.0;
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), expiry});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  // Claim submitted at 3.0 confirms at 6.0 > expiry 5.0 -> rejected; the
  // auto-refund at expiry wins instead.
  const TxId claim = ledger_.submit(ClaimHtlcPayload{contract, secret, bob_});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(claim).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.htlc(contract).state, HtlcState::kRefunded);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(10.0));
}

TEST_F(LedgerTest, HtlcAutoRefundTimesMatchPaper) {
  // The sender's funds return at expiry + tau (paper Eqs. (10)/(11)).
  const crypto::Secret secret = make_secret();
  const double expiry = 8.0;
  ledger_.submit(DeployHtlcPayload{alice_, bob_, Amount::from_tokens(2.0),
                                   secret.commitment(), expiry});
  queue_.run_until(expiry + kTau - 0.001);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(8.0));
  queue_.run_until(expiry + kTau);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(10.0));
}

TEST_F(LedgerTest, HtlcRefundBeforeExpiryFails) {
  const crypto::Secret secret = make_secret();
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), 50.0});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  const TxId refund = ledger_.submit(RefundHtlcPayload{contract, alice_});
  queue_.run_until(2.0 * kTau);
  EXPECT_EQ(ledger_.transaction(refund).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.transaction(refund).failure_reason,
            "refund: time lock still active");
}

TEST_F(LedgerTest, HtlcDoubleClaimFails) {
  const crypto::Secret secret = make_secret();
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), 50.0});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  ledger_.submit(ClaimHtlcPayload{contract, secret, bob_});
  queue_.run_until(2.0 * kTau);
  const TxId second = ledger_.submit(ClaimHtlcPayload{contract, secret, bob_});
  queue_.run_until(3.0 * kTau);
  EXPECT_EQ(ledger_.transaction(second).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(7.0));  // only once
}

TEST_F(LedgerTest, HtlcDeployWithPastExpiryFails) {
  const crypto::Secret secret = make_secret();
  queue_.run_until(10.0);
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), 10.5});
  // Confirms at 13.0 > expiry 10.5: the expiry is not in the future then.
  queue_.run();
  EXPECT_EQ(ledger_.transaction(deploy).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(10.0));
}

TEST_F(LedgerTest, HtlcInsufficientFundsFails) {
  const crypto::Secret secret = make_secret();
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      bob_, alice_, Amount::from_tokens(100.0), secret.commitment(), 20.0});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(deploy).status, TxStatus::kFailed);
}

TEST_F(LedgerTest, MempoolSecretVisibilityRespectsEpsilon) {
  const crypto::Secret secret = make_secret();
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), 50.0});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  const double claim_time = queue_.now();
  ledger_.submit(ClaimHtlcPayload{contract, secret, bob_});
  // Not yet visible...
  queue_.run_until(claim_time + kEps - 0.001);
  EXPECT_TRUE(ledger_.visible_secrets().empty());
  // ... visible at epsilon, well before confirmation at tau.
  queue_.run_until(claim_time + kEps);
  const auto secrets = ledger_.visible_secrets();
  ASSERT_EQ(secrets.size(), 1u);
  EXPECT_EQ(secrets[0].secret, secret);
  EXPECT_EQ(secrets[0].contract, contract);
  EXPECT_LT(kEps, kTau);
}

TEST_F(LedgerTest, FailedClaimStillLeaksSecret) {
  // Broadcasting a claim is irreversible: even if it confirms too late, the
  // preimage became public at visibility time.
  const crypto::Secret secret = make_secret();
  const double expiry = 5.0;
  const TxId deploy = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(2.0), secret.commitment(), expiry});
  const HtlcId contract = ledger_.pending_contract_of(deploy);
  queue_.run_until(kTau);
  ledger_.submit(ClaimHtlcPayload{contract, secret, bob_});  // will fail
  queue_.run();
  EXPECT_FALSE(ledger_.visible_secrets().empty());
}

TEST_F(LedgerTest, VaultDepositAndRelease) {
  const TxId dep = ledger_.submit(
      DepositCollateralPayload{alice_, Amount::from_tokens(3.0)});
  queue_.run_until(kTau);
  EXPECT_EQ(ledger_.transaction(dep).status, TxStatus::kConfirmed);
  EXPECT_EQ(ledger_.vault_deposit_of(alice_), Amount::from_tokens(3.0));
  EXPECT_EQ(ledger_.vault_total(), Amount::from_tokens(3.0));
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(7.0));

  ledger_.submit(ReleaseCollateralPayload{bob_, Amount::from_tokens(3.0)});
  queue_.run();
  EXPECT_EQ(ledger_.vault_total(), Amount{});
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(8.0));
}

TEST_F(LedgerTest, VaultReleaseUnderfundedFails) {
  const TxId rel = ledger_.submit(
      ReleaseCollateralPayload{bob_, Amount::from_tokens(1.0)});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(rel).status, TxStatus::kFailed);
}

TEST_F(LedgerTest, ChargeCollateralIsSynchronous) {
  ledger_.charge_collateral(alice_, Amount::from_tokens(2.0));
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(8.0));
  EXPECT_EQ(ledger_.vault_total(), Amount::from_tokens(2.0));
  EXPECT_THROW(ledger_.charge_collateral(alice_, Amount::from_tokens(100.0)),
               std::invalid_argument);
  EXPECT_THROW(ledger_.charge_collateral(Address{"nobody"}, Amount{}),
               std::out_of_range);
}

TEST_F(LedgerTest, VaultReleaseUpdatesDepositorMap) {
  // Regression: apply_release used to decrement vault_total_ without
  // touching the per-depositor breakdown, leaving vault_deposit_of stale
  // and the map's sum above the pool total.
  ledger_.submit(
      DepositCollateralPayload{alice_, Amount::from_tokens(3.0)});
  queue_.run_until(kTau);
  ledger_.submit(ReleaseCollateralPayload{bob_, Amount::from_tokens(2.0)});
  queue_.run();
  EXPECT_EQ(ledger_.vault_total(), Amount::from_tokens(1.0));
  EXPECT_EQ(ledger_.vault_deposit_of(alice_), Amount::from_tokens(1.0));
  Amount sum;
  for (const auto& [who, amount] : ledger_.vault_deposits()) sum += amount;
  EXPECT_EQ(sum, ledger_.vault_total());
}

TEST_F(LedgerTest, FindHtlcByHash) {
  const crypto::Secret s1 = make_secret(1);
  const crypto::Secret s2 = make_secret(2);
  EXPECT_EQ(ledger_.find_htlc_by_hash(s1.commitment()), nullptr);
  ledger_.submit(DeployHtlcPayload{alice_, bob_, Amount::from_tokens(1.0),
                                   s1.commitment(), 50.0});
  ledger_.submit(DeployHtlcPayload{alice_, bob_, Amount::from_tokens(1.0),
                                   s2.commitment(), 50.0});
  queue_.run_until(kTau);
  const HtlcContract* found = ledger_.find_htlc_by_hash(s2.commitment());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->hash_lock, s2.commitment());
}

TEST_F(LedgerTest, FindHtlcByHashPrefersLatestDeployed) {
  // Regression: the lookup used to return whichever matching contract the
  // map iterated first (ascending id), even when a later deploy created a
  // fresher contract under the same hash lock.  With confirmation jitter
  // the submission order and the deployment order can disagree; the lookup
  // must follow deployed_at, not id.
  const crypto::Secret secret = make_secret(5);
  bool exercised_inversion = false;
  for (std::uint64_t seed = 1; seed <= 64 && !exercised_inversion; ++seed) {
    EventQueue queue;
    math::Xoshiro256 rng(seed);
    Ledger ledger({ChainId::kChainA, kTau, kEps, 2.0}, queue, &rng);
    ledger.create_account(alice_, Amount::from_tokens(10.0));
    ledger.create_account(bob_, Amount::from_tokens(5.0));
    const TxId first = ledger.submit(DeployHtlcPayload{
        alice_, bob_, Amount::from_tokens(1.0), secret.commitment(), 50.0});
    const TxId second = ledger.submit(DeployHtlcPayload{
        alice_, bob_, Amount::from_tokens(1.0), secret.commitment(), 50.0});
    queue.run_until(20.0);
    // Look for a jitter draw where the FIRST submission confirmed LAST.
    if (!(ledger.transaction(first).confirmed_at >
          ledger.transaction(second).confirmed_at)) {
      continue;
    }
    exercised_inversion = true;
    const HtlcContract* found = ledger.find_htlc_by_hash(secret.commitment());
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id.value, ledger.pending_contract_of(first).value);
    EXPECT_DOUBLE_EQ(found->deployed_at,
                     ledger.transaction(first).confirmed_at);
  }
  ASSERT_TRUE(exercised_inversion)
      << "no jitter seed inverted the confirmation order";
}

TEST_F(LedgerTest, FindHtlcByHashTieBreaksOnHigherId) {
  // Without jitter both deploys confirm at the same instant; the younger
  // contract (higher id) wins the tie deterministically.
  const crypto::Secret secret = make_secret(6);
  ledger_.submit(DeployHtlcPayload{alice_, bob_, Amount::from_tokens(1.0),
                                   secret.commitment(), 50.0});
  const TxId second = ledger_.submit(DeployHtlcPayload{
      alice_, bob_, Amount::from_tokens(1.0), secret.commitment(), 50.0});
  queue_.run_until(kTau);
  const HtlcContract* found = ledger_.find_htlc_by_hash(secret.commitment());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id.value, ledger_.pending_contract_of(second).value);
}

TEST_F(LedgerTest, ConservationAcrossRandomizedWorkload) {
  // Property: total supply (balances + locked HTLCs + vault) never changes,
  // whatever mix of valid and invalid operations is thrown at the ledger.
  const Amount initial = ledger_.total_supply();
  math::Xoshiro256 rng(2024);
  std::vector<HtlcId> contracts;
  const crypto::Secret secret = make_secret(7);
  for (int step = 0; step < 200; ++step) {
    const std::uint64_t pick = rng() % 6;
    const double amt = 0.1 + 3.0 * math::uniform01(rng);
    switch (pick) {
      case 0:
        ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(amt)});
        break;
      case 1:
        ledger_.submit(TransferPayload{bob_, alice_, Amount::from_tokens(amt)});
        break;
      case 2: {
        const TxId id = ledger_.submit(
            DeployHtlcPayload{alice_, bob_, Amount::from_tokens(amt),
                              secret.commitment(), queue_.now() + 5.0});
        contracts.push_back(ledger_.pending_contract_of(id));
        break;
      }
      case 3:
        if (!contracts.empty()) {
          ledger_.submit(ClaimHtlcPayload{
              contracts[rng() % contracts.size()], secret, bob_});
        }
        break;
      case 4:
        if (!contracts.empty()) {
          ledger_.submit(RefundHtlcPayload{
              contracts[rng() % contracts.size()], alice_});
        }
        break;
      case 5:
        ledger_.submit(
            DepositCollateralPayload{bob_, Amount::from_tokens(amt)});
        break;
    }
    queue_.run_until(queue_.now() + 0.7);
    ASSERT_EQ(ledger_.total_supply(), initial) << "step " << step;
  }
  queue_.run();
  EXPECT_EQ(ledger_.total_supply(), initial);
}

TEST_F(LedgerTest, ConfirmationLogOrdersConfirmedTransactions) {
  ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  queue_.run_until(0.5);
  ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  queue_.run();
  ASSERT_EQ(ledger_.confirmation_log().size(), 2u);
  const auto& first = ledger_.transaction(ledger_.confirmation_log()[0]);
  const auto& second = ledger_.transaction(ledger_.confirmation_log()[1]);
  EXPECT_LE(first.confirmed_at, second.confirmed_at);
}

TEST_F(LedgerTest, UnknownLookupsThrow) {
  EXPECT_THROW((void)ledger_.transaction(TxId{999}), std::out_of_range);
  EXPECT_THROW((void)ledger_.htlc(HtlcId{999}), std::out_of_range);
  const TxId transfer =
      ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  EXPECT_THROW((void)ledger_.pending_contract_of(transfer),
               std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::chain
