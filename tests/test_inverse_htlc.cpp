// Tests for the INVERSE HTLC escrow semantics (src/chain/ledger): the
// premium mechanism's contract type, where the preimage path refunds the
// SENDER and the timeout path pays the RECIPIENT.
#include <gtest/gtest.h>

#include "chain/ledger.hpp"
#include "crypto/secret.hpp"
#include "math/rng.hpp"

namespace swapgame::chain {
namespace {

class InverseHtlcTest : public ::testing::Test {
 protected:
  InverseHtlcTest() : ledger_({ChainId::kChainA, 3.0, 1.0}, queue_) {
    ledger_.create_account(alice_, Amount::from_tokens(10.0));
    ledger_.create_account(bob_, Amount::from_tokens(10.0));
    math::Xoshiro256 rng(17);
    secret_ = crypto::Secret::generate(rng);
  }

  HtlcId deploy_inverse(double amount, double expiry) {
    const TxId tx = ledger_.submit(
        DeployHtlcPayload{alice_, bob_, Amount::from_tokens(amount),
                          secret_.commitment(), expiry, HtlcKind::kInverse});
    return ledger_.pending_contract_of(tx);
  }

  EventQueue queue_;
  Ledger ledger_;
  const Address alice_{"alice"};
  const Address bob_{"bob"};
  crypto::Secret secret_;
};

TEST_F(InverseHtlcTest, PreimageClaimRefundsSender) {
  const HtlcId escrow = deploy_inverse(0.5, 50.0);
  queue_.run_until(3.0);
  EXPECT_EQ(ledger_.htlc(escrow).kind, HtlcKind::kInverse);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(9.5));
  // Alice reveals: HER balance is restored, not Bob's.
  ledger_.submit(ClaimHtlcPayload{escrow, secret_, alice_});
  queue_.run_until(6.0);
  EXPECT_EQ(ledger_.htlc(escrow).state, HtlcState::kClaimed);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(10.0));
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(10.0));
}

TEST_F(InverseHtlcTest, TimeoutPaysRecipient) {
  const HtlcId escrow = deploy_inverse(0.5, 6.0);
  queue_.run();  // auto-refund fires at expiry, confirms at expiry + tau
  EXPECT_EQ(ledger_.htlc(escrow).state, HtlcState::kRefunded);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(9.5));
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(10.5));
}

TEST_F(InverseHtlcTest, TimeoutReceiptAtExpiryPlusTau) {
  const double expiry = 6.0;
  deploy_inverse(0.5, expiry);
  queue_.run_until(expiry + 3.0 - 0.001);
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(10.0));
  queue_.run_until(expiry + 3.0);
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(10.5));
}

TEST_F(InverseHtlcTest, CancelReturnsDepositBeforeExpiry) {
  const HtlcId escrow = deploy_inverse(0.5, 50.0);
  queue_.run_until(3.0);
  const TxId cancel = ledger_.submit(CancelHtlcPayload{escrow, alice_});
  queue_.run_until(6.0);
  EXPECT_EQ(ledger_.transaction(cancel).status, TxStatus::kConfirmed);
  EXPECT_EQ(ledger_.htlc(escrow).state, HtlcState::kCancelled);
  EXPECT_EQ(ledger_.balance(alice_), Amount::from_tokens(10.0));
}

TEST_F(InverseHtlcTest, CancelAfterExpiryFails) {
  const HtlcId escrow = deploy_inverse(0.5, 5.0);
  queue_.run_until(4.0);
  // Cancel submitted at 4.0 confirms at 7.0, after the 5.0 expiry.
  const TxId cancel = ledger_.submit(CancelHtlcPayload{escrow, alice_});
  queue_.run();
  EXPECT_EQ(ledger_.transaction(cancel).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.transaction(cancel).failure_reason,
            "cancel: escrow already expired");
  // The timeout path won instead.
  EXPECT_EQ(ledger_.htlc(escrow).state, HtlcState::kRefunded);
  EXPECT_EQ(ledger_.balance(bob_), Amount::from_tokens(10.5));
}

TEST_F(InverseHtlcTest, CancelOnStandardHtlcFails) {
  const TxId tx = ledger_.submit(
      DeployHtlcPayload{alice_, bob_, Amount::from_tokens(1.0),
                        secret_.commitment(), 50.0, HtlcKind::kStandard});
  const HtlcId contract = ledger_.pending_contract_of(tx);
  queue_.run_until(3.0);
  const TxId cancel = ledger_.submit(CancelHtlcPayload{contract, alice_});
  queue_.run_until(6.0);
  EXPECT_EQ(ledger_.transaction(cancel).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.transaction(cancel).failure_reason,
            "cancel: only inverse escrows can be cancelled");
}

TEST_F(InverseHtlcTest, CancelOnSettledEscrowFails) {
  const HtlcId escrow = deploy_inverse(0.5, 50.0);
  queue_.run_until(3.0);
  ledger_.submit(ClaimHtlcPayload{escrow, secret_, alice_});
  queue_.run_until(6.0);
  const TxId cancel = ledger_.submit(CancelHtlcPayload{escrow, alice_});
  queue_.run_until(9.0);
  EXPECT_EQ(ledger_.transaction(cancel).status, TxStatus::kFailed);
}

TEST_F(InverseHtlcTest, WrongPreimageStillRejected) {
  const HtlcId escrow = deploy_inverse(0.5, 50.0);
  queue_.run_until(3.0);
  math::Xoshiro256 rng(18);
  const crypto::Secret wrong = crypto::Secret::generate(rng);
  const TxId claim = ledger_.submit(ClaimHtlcPayload{escrow, wrong, alice_});
  queue_.run_until(6.0);
  EXPECT_EQ(ledger_.transaction(claim).status, TxStatus::kFailed);
  EXPECT_EQ(ledger_.htlc(escrow).state, HtlcState::kLocked);
}

TEST_F(InverseHtlcTest, ConservationHoldsThroughAllPaths) {
  const Amount initial = ledger_.total_supply();
  deploy_inverse(0.5, 5.0);                     // timeout path
  const HtlcId e2 = deploy_inverse(0.7, 50.0);  // claim path
  const HtlcId e3 = deploy_inverse(0.9, 50.0);  // cancel path
  queue_.run_until(3.0);
  ledger_.submit(ClaimHtlcPayload{e2, secret_, alice_});
  ledger_.submit(CancelHtlcPayload{e3, alice_});
  queue_.run();
  EXPECT_EQ(ledger_.total_supply(), initial);
}

TEST(HtlcKindNames, ToString) {
  EXPECT_STREQ(to_string(HtlcKind::kStandard), "standard");
  EXPECT_STREQ(to_string(HtlcKind::kInverse), "inverse");
  EXPECT_STREQ(to_string(HtlcState::kCancelled), "cancelled");
}

}  // namespace
}  // namespace swapgame::chain
