// Tests for GBM calibration (src/model/calibration): round-trip recovery,
// standard errors, validation.
#include "model/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::model {
namespace {

TEST(FitGbm, ValidatesInput) {
  math::Xoshiro256 rng(1);
  const std::vector<double> two = {1.0, 1.1};
  EXPECT_THROW((void)fit_gbm(two, 1.0), std::invalid_argument);
  const std::vector<double> bad = {1.0, -1.0, 1.2};
  EXPECT_THROW((void)fit_gbm(bad, 1.0), std::invalid_argument);
  const std::vector<double> ok = {1.0, 1.1, 1.05};
  EXPECT_THROW((void)fit_gbm(ok, 0.0), std::invalid_argument);
  const std::vector<double> flat = {1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW((void)fit_gbm(flat, 1.0), std::invalid_argument);
}

TEST(FitGbm, RecoversParametersFromLongSeries) {
  // Round trip: simulate the paper's Table III dynamics, fit, recover.
  const math::GbmParams truth{0.002, 0.1};
  math::Xoshiro256 rng(42);
  const std::vector<double> prices =
      simulate_price_series(truth, 2.0, 1.0, 20000, rng);
  const GbmFit fit = fit_gbm(prices, 1.0);
  EXPECT_EQ(fit.increments, 20000u);
  // Sigma is tightly identified...
  EXPECT_NEAR(fit.params.sigma, truth.sigma, 3.0 * fit.sigma_stderr);
  EXPECT_NEAR(fit.params.sigma, 0.1, 0.005);
  // ...drift much less so (standard for diffusions); check the CI covers.
  EXPECT_NEAR(fit.params.mu, truth.mu, 3.0 * fit.mu_stderr);
}

TEST(FitGbm, StderrShrinksWithSampleSize) {
  const math::GbmParams truth{0.002, 0.1};
  math::Xoshiro256 rng(7);
  const auto short_series = simulate_price_series(truth, 2.0, 1.0, 500, rng);
  const auto long_series = simulate_price_series(truth, 2.0, 1.0, 8000, rng);
  const GbmFit fs = fit_gbm(short_series, 1.0);
  const GbmFit fl = fit_gbm(long_series, 1.0);
  EXPECT_LT(fl.sigma_stderr, fs.sigma_stderr);
  EXPECT_LT(fl.mu_stderr, fs.mu_stderr);
}

TEST(FitGbm, HandlesDifferentSamplingIntervals) {
  // The same process sampled at dt = 0.25h must fit the same per-hour
  // parameters.
  const math::GbmParams truth{0.002, 0.1};
  math::Xoshiro256 rng(11);
  const auto prices = simulate_price_series(truth, 2.0, 0.25, 40000, rng);
  const GbmFit fit = fit_gbm(prices, 0.25);
  EXPECT_NEAR(fit.params.sigma, 0.1, 0.005);
  EXPECT_NEAR(fit.params.mu, truth.mu, 3.0 * fit.mu_stderr);
}

TEST(FitGbm, ExactTwoIncrementCase) {
  // Deterministic check of the estimator formulas on a tiny series.
  const std::vector<double> prices = {1.0, std::exp(0.1), std::exp(0.1)};
  const GbmFit fit = fit_gbm(prices, 1.0);
  // Log increments: {0.1, 0.0}; mean 0.05, MLE var 0.0025.
  EXPECT_NEAR(fit.params.sigma, std::sqrt(0.0025), 1e-12);
  EXPECT_NEAR(fit.params.mu, 0.05 + 0.5 * 0.0025, 1e-12);
}

TEST(FitGbm, LogLikelihoodIsFinite) {
  const math::GbmParams truth{0.0, 0.2};
  math::Xoshiro256 rng(3);
  const auto prices = simulate_price_series(truth, 1.0, 1.0, 100, rng);
  const GbmFit fit = fit_gbm(prices, 1.0);
  EXPECT_TRUE(std::isfinite(fit.log_likelihood));
  EXPECT_EQ(fit.increments, 100u);
}

TEST(SimulatePriceSeries, ShapeAndPositivity) {
  math::Xoshiro256 rng(5);
  const auto prices =
      simulate_price_series(math::GbmParams{0.002, 0.1}, 2.0, 1.0, 50, rng);
  ASSERT_EQ(prices.size(), 51u);
  EXPECT_EQ(prices[0], 2.0);
  for (double p : prices) EXPECT_GT(p, 0.0);
  EXPECT_THROW(
      (void)simulate_price_series(math::GbmParams{0.0, 0.1}, 0.0, 1.0, 5, rng),
      std::invalid_argument);
}

TEST(SimulatePriceSeries, DeterministicPerSeed) {
  math::Xoshiro256 a(9), b(9);
  const auto pa = simulate_price_series(math::GbmParams{0.002, 0.1}, 2.0, 1.0,
                                        20, a);
  const auto pb = simulate_price_series(math::GbmParams{0.002, 0.1}, 2.0, 1.0,
                                        20, b);
  EXPECT_EQ(pa, pb);
}

}  // namespace
}  // namespace swapgame::model
