// Tests for the unified Monte-Carlo entry point (src/sim/mc_runner): the
// spec -> SwapSetup mirror, the per-evaluator result-envelope contract,
// the strategy families, and the remaining deprecated-wrapper equivalence
// (run_profile_mc; the model/protocol/VR wrappers are covered in
// test_monte_carlo and test_estimators).
#include "sim/mc_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/params.hpp"
#include "model/strategy_value.hpp"

namespace swapgame::sim {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

TEST(McRunSpec, ToSetupMirrorsEveryProtocolField) {
  McRunSpec spec;
  spec.params = defaults();
  spec.p_star = 2.25;
  spec.collateral = 0.4;
  spec.premium = 0.3;
  spec.alice_extra_token_a = 1.5;
  spec.bob_extra_token_a = 2.5;
  spec.secret_seed = 111;
  spec.confirmation_jitter_a = 0.25;
  spec.confirmation_jitter_b = 0.75;
  spec.expiry_margin = 6.5;
  spec.latency_seed = 222;
  spec.faults.chain_a.drop_prob = 0.05;
  spec.faults.chain_b.extra_delay_prob = 0.2;
  spec.faults.chain_b.extra_delay_max = 3.0;
  spec.faults.bob_offline.push_back({7.0, 8.0});
  spec.audit = false;

  const proto::SwapSetup setup = spec.to_setup();
  EXPECT_EQ(setup.params.p_t0, spec.params.p_t0);
  EXPECT_EQ(setup.p_star, spec.p_star);
  EXPECT_EQ(setup.collateral, spec.collateral);
  EXPECT_EQ(setup.premium, spec.premium);
  EXPECT_EQ(setup.alice_extra_token_a, spec.alice_extra_token_a);
  EXPECT_EQ(setup.bob_extra_token_a, spec.bob_extra_token_a);
  EXPECT_EQ(setup.secret_seed, spec.secret_seed);
  EXPECT_EQ(setup.confirmation_jitter_a, spec.confirmation_jitter_a);
  EXPECT_EQ(setup.confirmation_jitter_b, spec.confirmation_jitter_b);
  EXPECT_EQ(setup.expiry_margin, spec.expiry_margin);
  EXPECT_EQ(setup.latency_seed, spec.latency_seed);
  EXPECT_EQ(setup.faults.chain_a.drop_prob, spec.faults.chain_a.drop_prob);
  EXPECT_EQ(setup.faults.chain_b.extra_delay_prob,
            spec.faults.chain_b.extra_delay_prob);
  EXPECT_EQ(setup.faults.chain_b.extra_delay_max,
            spec.faults.chain_b.extra_delay_max);
  ASSERT_EQ(setup.faults.bob_offline.size(), 1u);
  EXPECT_EQ(setup.faults.bob_offline[0].begin, 7.0);
  EXPECT_EQ(setup.faults.bob_offline[0].end, 8.0);
  EXPECT_EQ(setup.audit, spec.audit);
}

TEST(McRunner, ModelEvaluatorFillsTheVrEnvelope) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kModel;
  spec.params = defaults();
  spec.p_star = 2.0;
  spec.config.samples = 5000;
  spec.config.seed = 3;
  const McRunResult r = McRunner::run(spec);
  // Model engines carry the VR detail; the envelope fields are views of it.
  EXPECT_EQ(r.sr, r.vr.success_rate());
  EXPECT_EQ(r.half_width, r.vr.half_width());
  EXPECT_EQ(r.samples, r.vr.samples);
  EXPECT_EQ(r.rounds, r.vr.rounds);
  EXPECT_EQ(r.estimate.success.trials(), r.vr.mc.success.trials());
  EXPECT_EQ(r.estimate.success.successes(), r.vr.mc.success.successes());
  EXPECT_GT(r.samples, 0u);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_TRUE(std::isfinite(r.half_width));
}

TEST(McRunner, ProtocolEvaluatorFillsTheCounterEnvelope) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProtocol;
  spec.params = defaults();
  spec.p_star = 2.0;
  spec.config.samples = 600;
  spec.config.seed = 13;
  const McRunResult r = McRunner::run(spec);
  // Protocol runs have no VR machinery: sr is the conditional rate from
  // the counters, the model-only CI half-width stays NaN.
  EXPECT_EQ(r.sr, r.estimate.conditional_success_rate());
  EXPECT_TRUE(std::isnan(r.half_width));
  EXPECT_EQ(r.samples, r.estimate.success.trials());
  EXPECT_EQ(r.estimate.success.trials(), 600u);
}

TEST(McRunner, StrategyFamiliesDiverge) {
  McRunSpec rational;
  rational.evaluator = McEvaluator::kProtocol;
  rational.params = defaults();
  rational.p_star = 2.0;
  rational.config.samples = 1200;
  rational.config.seed = 23;
  McRunSpec honest = rational;
  honest.strategy = McStrategy::kHonest;
  const McRunResult r = McRunner::run(rational);
  const McRunResult h = McRunner::run(honest);
  // Honest agents never abandon mid-swap, so their conditional success
  // rate dominates the rational pair's on the same sample paths.
  EXPECT_GT(h.sr, r.sr);
  EXPECT_NE(r.estimate.outcomes, h.estimate.outcomes);

  McRunSpec premium = rational;
  premium.strategy = McStrategy::kPremiumRational;
  premium.premium = 0.5;
  const McRunResult p = McRunner::run(premium);
  EXPECT_EQ(p.estimate.success.trials(), 1200u);
  EXPECT_GE(p.sr, r.sr - 0.05);  // the escrow cannot make things much worse
}

TEST(McRunner, DeprecatedProfileWrapperMatchesRunnerBitwise) {
  model::ThresholdProfile profile;
  profile.alice_cutoff = 1.4;
  profile.bob_region = math::IntervalSet({{0.4, 2.6}});
  McConfig cfg;
  cfg.samples = 8000;
  cfg.seed = 29;

  McRunSpec spec;
  spec.evaluator = McEvaluator::kProfile;
  spec.params = defaults();
  spec.profile = profile;
  spec.config = cfg;
  const McEstimate via_runner = McRunner::run(spec).estimate;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const McEstimate legacy = run_profile_mc(defaults(), profile, cfg);
#pragma GCC diagnostic pop
  EXPECT_EQ(legacy.success.successes(), via_runner.success.successes());
  EXPECT_EQ(legacy.success.trials(), via_runner.success.trials());
  EXPECT_EQ(legacy.initiated.successes(), via_runner.initiated.successes());
  EXPECT_EQ(legacy.alice_utility.mean(), via_runner.alice_utility.mean());
  EXPECT_EQ(legacy.bob_utility.variance(), via_runner.bob_utility.variance());
  EXPECT_EQ(legacy.outcomes, via_runner.outcomes);
}

TEST(McRunner, RunnerIsBitIdenticalAcrossThreadCounts) {
  // The runner inherits the chunked-RNG determinism contract of the
  // underlying engines for every evaluator it dispatches to.
  for (const McEvaluator evaluator :
       {McEvaluator::kModel, McEvaluator::kProtocol}) {
    McRunSpec spec;
    spec.evaluator = evaluator;
    spec.params = defaults();
    spec.p_star = 2.0;
    spec.config.samples = evaluator == McEvaluator::kModel ? 20000 : 700;
    spec.config.seed = 37;
    spec.config.threads = 1;
    McRunSpec wide = spec;
    wide.config.threads = 8;
    const McRunResult a = McRunner::run(spec);
    const McRunResult b = McRunner::run(wide);
    EXPECT_EQ(a.estimate.success.successes(), b.estimate.success.successes());
    EXPECT_EQ(a.estimate.success.trials(), b.estimate.success.trials());
    EXPECT_EQ(a.estimate.alice_utility.mean(), b.estimate.alice_utility.mean());
    EXPECT_EQ(a.estimate.outcomes, b.estimate.outcomes);
    EXPECT_EQ(a.samples, b.samples);
  }
}

}  // namespace
}  // namespace swapgame::sim
