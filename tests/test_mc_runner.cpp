// Tests for the unified Monte-Carlo entry point (src/sim/mc_runner): the
// spec -> SwapSetup mirror, the per-evaluator result-envelope contract,
// the strategy families, and the per-side bob_strategy pairing.
#include "sim/mc_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/params.hpp"
#include "model/strategy_value.hpp"

namespace swapgame::sim {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

TEST(McRunSpec, ToSetupMirrorsEveryProtocolField) {
  McRunSpec spec;
  spec.params = defaults();
  spec.p_star = 2.25;
  spec.collateral = 0.4;
  spec.premium = 0.3;
  spec.alice_extra_token_a = 1.5;
  spec.bob_extra_token_a = 2.5;
  spec.secret_seed = 111;
  spec.confirmation_jitter_a = 0.25;
  spec.confirmation_jitter_b = 0.75;
  spec.expiry_margin = 6.5;
  spec.latency_seed = 222;
  spec.faults.chain_a.drop_prob = 0.05;
  spec.faults.chain_b.extra_delay_prob = 0.2;
  spec.faults.chain_b.extra_delay_max = 3.0;
  spec.faults.bob_offline.push_back({7.0, 8.0});
  spec.audit = false;

  const proto::SwapSetup setup = spec.to_setup();
  EXPECT_EQ(setup.params.p_t0, spec.params.p_t0);
  EXPECT_EQ(setup.p_star, spec.p_star);
  EXPECT_EQ(setup.collateral, spec.collateral);
  EXPECT_EQ(setup.premium, spec.premium);
  EXPECT_EQ(setup.alice_extra_token_a, spec.alice_extra_token_a);
  EXPECT_EQ(setup.bob_extra_token_a, spec.bob_extra_token_a);
  EXPECT_EQ(setup.secret_seed, spec.secret_seed);
  EXPECT_EQ(setup.confirmation_jitter_a, spec.confirmation_jitter_a);
  EXPECT_EQ(setup.confirmation_jitter_b, spec.confirmation_jitter_b);
  EXPECT_EQ(setup.expiry_margin, spec.expiry_margin);
  EXPECT_EQ(setup.latency_seed, spec.latency_seed);
  EXPECT_EQ(setup.faults.chain_a.drop_prob, spec.faults.chain_a.drop_prob);
  EXPECT_EQ(setup.faults.chain_b.extra_delay_prob,
            spec.faults.chain_b.extra_delay_prob);
  EXPECT_EQ(setup.faults.chain_b.extra_delay_max,
            spec.faults.chain_b.extra_delay_max);
  ASSERT_EQ(setup.faults.bob_offline.size(), 1u);
  EXPECT_EQ(setup.faults.bob_offline[0].begin, 7.0);
  EXPECT_EQ(setup.faults.bob_offline[0].end, 8.0);
  EXPECT_EQ(setup.audit, spec.audit);
}

TEST(McRunner, ModelEvaluatorFillsTheVrEnvelope) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kModel;
  spec.params = defaults();
  spec.p_star = 2.0;
  spec.config.samples = 5000;
  spec.config.seed = 3;
  const McRunResult r = McRunner::run(spec);
  // Model engines carry the VR detail; the envelope fields are views of it.
  EXPECT_EQ(r.sr, r.vr.success_rate());
  EXPECT_EQ(r.half_width, r.vr.half_width());
  EXPECT_EQ(r.samples, r.vr.samples);
  EXPECT_EQ(r.rounds, r.vr.rounds);
  EXPECT_EQ(r.estimate.success.trials(), r.vr.mc.success.trials());
  EXPECT_EQ(r.estimate.success.successes(), r.vr.mc.success.successes());
  EXPECT_GT(r.samples, 0u);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_TRUE(std::isfinite(r.half_width));
}

TEST(McRunner, ProtocolEvaluatorFillsTheCounterEnvelope) {
  McRunSpec spec;
  spec.evaluator = McEvaluator::kProtocol;
  spec.params = defaults();
  spec.p_star = 2.0;
  spec.config.samples = 600;
  spec.config.seed = 13;
  const McRunResult r = McRunner::run(spec);
  // Protocol runs have no VR machinery: sr is the conditional rate from
  // the counters, the model-only CI half-width stays NaN.
  EXPECT_EQ(r.sr, r.estimate.conditional_success_rate());
  EXPECT_TRUE(std::isnan(r.half_width));
  EXPECT_EQ(r.samples, r.estimate.success.trials());
  EXPECT_EQ(r.estimate.success.trials(), 600u);
}

TEST(McRunner, StrategyFamiliesDiverge) {
  McRunSpec rational;
  rational.evaluator = McEvaluator::kProtocol;
  rational.params = defaults();
  rational.p_star = 2.0;
  rational.config.samples = 1200;
  rational.config.seed = 23;
  McRunSpec honest = rational;
  honest.strategy = McStrategy::kHonest;
  const McRunResult r = McRunner::run(rational);
  const McRunResult h = McRunner::run(honest);
  // Honest agents never abandon mid-swap, so their conditional success
  // rate dominates the rational pair's on the same sample paths.
  EXPECT_GT(h.sr, r.sr);
  EXPECT_NE(r.estimate.outcomes, h.estimate.outcomes);

  McRunSpec premium = rational;
  premium.strategy = McStrategy::kPremiumRational;
  premium.premium = 0.5;
  const McRunResult p = McRunner::run(premium);
  EXPECT_EQ(p.estimate.success.trials(), 1200u);
  EXPECT_GE(p.sr, r.sr - 0.05);  // the escrow cannot make things much worse
}

TEST(McRunner, MixedBobStrategyDivergesFromSymmetricPairing) {
  // A rational Bob against an honest Alice is a different game than the
  // symmetric honest pairing -- the per-side field must actually reach the
  // protocol engine.
  McRunSpec honest;
  honest.evaluator = McEvaluator::kProtocol;
  honest.params = defaults();
  honest.p_star = 2.0;
  honest.strategy = McStrategy::kHonest;
  honest.config.samples = 1200;
  honest.config.seed = 29;
  McRunSpec mixed = honest;
  mixed.bob_strategy = McStrategy::kRational;
  const McRunResult h = McRunner::run(honest);
  const McRunResult m = McRunner::run(mixed);
  EXPECT_NE(h.estimate.outcomes, m.estimate.outcomes);
  // Bob's rational abandonment can only cost Alice relative to an honest
  // counterparty on the same sample paths.
  EXPECT_LE(m.sr, h.sr);
}

TEST(McRunner, RunnerIsBitIdenticalAcrossThreadCounts) {
  // The runner inherits the chunked-RNG determinism contract of the
  // underlying engines for every evaluator it dispatches to.
  for (const McEvaluator evaluator :
       {McEvaluator::kModel, McEvaluator::kProtocol}) {
    McRunSpec spec;
    spec.evaluator = evaluator;
    spec.params = defaults();
    spec.p_star = 2.0;
    spec.config.samples = evaluator == McEvaluator::kModel ? 20000 : 700;
    spec.config.seed = 37;
    spec.config.threads = 1;
    McRunSpec wide = spec;
    wide.config.threads = 8;
    const McRunResult a = McRunner::run(spec);
    const McRunResult b = McRunner::run(wide);
    EXPECT_EQ(a.estimate.success.successes(), b.estimate.success.successes());
    EXPECT_EQ(a.estimate.success.trials(), b.estimate.success.trials());
    EXPECT_EQ(a.estimate.alice_utility.mean(), b.estimate.alice_utility.mean());
    EXPECT_EQ(a.estimate.outcomes, b.estimate.outcomes);
    EXPECT_EQ(a.samples, b.samples);
  }
}

}  // namespace
}  // namespace swapgame::sim
