// Tests for parameter validation (src/model/params) and the decision
// timeline (src/model/timeline): Eqs. (3)-(13) and Fig. 2.
#include <gtest/gtest.h>

#include "model/params.hpp"
#include "model/timeline.hpp"

namespace swapgame::model {
namespace {

TEST(AgentParams, Validation) {
  EXPECT_NO_THROW((AgentParams{0.3, 0.01}.validate()));
  EXPECT_NO_THROW((AgentParams{0.0, 0.01}.validate()));   // alpha may be 0
  EXPECT_NO_THROW((AgentParams{-0.5, 0.01}.validate()));  // or negative > -1
  EXPECT_THROW((AgentParams{-1.5, 0.01}.validate()), std::invalid_argument);
  EXPECT_THROW((AgentParams{0.3, 0.0}.validate()), std::invalid_argument);
  EXPECT_THROW((AgentParams{0.3, -0.01}.validate()), std::invalid_argument);
}

TEST(SwapParams, Table3DefaultsAreValidAndMatchPaper) {
  const SwapParams p = SwapParams::table3_defaults();
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.alice.alpha, 0.3);
  EXPECT_DOUBLE_EQ(p.bob.alpha, 0.3);
  EXPECT_DOUBLE_EQ(p.alice.r, 0.01);
  EXPECT_DOUBLE_EQ(p.bob.r, 0.01);
  EXPECT_DOUBLE_EQ(p.tau_a, 3.0);
  EXPECT_DOUBLE_EQ(p.tau_b, 4.0);
  EXPECT_DOUBLE_EQ(p.eps_b, 1.0);
  EXPECT_DOUBLE_EQ(p.p_t0, 2.0);
  EXPECT_DOUBLE_EQ(p.gbm.mu, 0.002);
  EXPECT_DOUBLE_EQ(p.gbm.sigma, 0.1);
}

TEST(SwapParams, ValidationRejectsEq3Violation) {
  SwapParams p = SwapParams::table3_defaults();
  p.eps_b = p.tau_b;  // Eq. (3) requires eps_b < tau_b
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.eps_b = 5.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SwapParams, ValidationRejectsNonPositiveTimes) {
  SwapParams p = SwapParams::table3_defaults();
  p.tau_a = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SwapParams::table3_defaults();
  p.tau_b = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SwapParams::table3_defaults();
  p.p_t0 = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Action, Names) {
  EXPECT_STREQ(to_string(Action::kCont), "cont");
  EXPECT_STREQ(to_string(Action::kStop), "stop");
}

TEST(Timeline, IdealizedScheduleMatchesEq13) {
  const SwapParams p = SwapParams::table3_defaults();
  const Schedule s = idealized_schedule(p, 0.0);
  EXPECT_DOUBLE_EQ(s.t0, 0.0);
  EXPECT_DOUBLE_EQ(s.t1, 0.0);                    // t1 = t0
  EXPECT_DOUBLE_EQ(s.t2, 3.0);                    // t1 + tau_a
  EXPECT_DOUBLE_EQ(s.t3, 7.0);                    // t2 + tau_b
  EXPECT_DOUBLE_EQ(s.t4, 8.0);                    // t3 + eps_b
  EXPECT_DOUBLE_EQ(s.t5, 11.0);                   // t3 + tau_b = t_b
  EXPECT_DOUBLE_EQ(s.t_b, 11.0);
  EXPECT_DOUBLE_EQ(s.t6, 11.0);                   // t4 + tau_a = t_a
  EXPECT_DOUBLE_EQ(s.t_a, 11.0);
  EXPECT_DOUBLE_EQ(s.t7, 15.0);                   // t_b + tau_b
  EXPECT_DOUBLE_EQ(s.t8, 14.0);                   // t_a + tau_a
}

TEST(Timeline, IdealizedScheduleSatisfiesConstraintSystem) {
  for (double tau_a : {0.5, 3.0, 6.0}) {
    for (double tau_b : {0.8, 4.0, 9.0}) {
      SwapParams p = SwapParams::table3_defaults();
      p.tau_a = tau_a;
      p.tau_b = tau_b;
      p.eps_b = 0.5 * tau_b;
      const Schedule s = idealized_schedule(p, 2.5);
      const auto violation = check_schedule(s, p.tau_a, p.tau_b, p.eps_b);
      EXPECT_FALSE(violation.has_value())
          << "tau_a=" << tau_a << " tau_b=" << tau_b << ": " << *violation;
    }
  }
}

TEST(Timeline, IdealizedScheduleAnchorsAtT0) {
  const SwapParams p = SwapParams::table3_defaults();
  const Schedule s = idealized_schedule(p, 100.0);
  EXPECT_DOUBLE_EQ(s.t1, 100.0);
  EXPECT_DOUBLE_EQ(s.t8, 114.0);
}

TEST(Timeline, CheckScheduleReportsSpecificViolations) {
  const SwapParams p = SwapParams::table3_defaults();
  Schedule s = idealized_schedule(p, 0.0);

  Schedule bad = s;
  bad.t2 = s.t1 + p.tau_a - 0.1;  // Bob locks before Alice's confirmation
  auto v = check_schedule(bad, p.tau_a, p.tau_b, p.eps_b);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("Eq. 5"), std::string::npos);

  bad = s;
  bad.t4 = s.t3 + 0.5 * p.eps_b;  // Bob claims before the secret is visible
  v = check_schedule(bad, p.tau_a, p.tau_b, p.eps_b);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("Eq. 7"), std::string::npos);

  bad = s;
  bad.t_b = s.t5 - 0.5;  // Alice's claim cannot confirm before expiry
  v = check_schedule(bad, p.tau_a, p.tau_b, p.eps_b);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("Eq. 8"), std::string::npos);

  // Eq. (3) violation surfaces first.
  v = check_schedule(s, p.tau_a, p.tau_b, /*eps_b=*/p.tau_b + 1.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("Eq. 3"), std::string::npos);
}

TEST(Timeline, StageDelaysMatchScheduleDifferences) {
  // The hard-coded utility exponents must equal the schedule differences --
  // this pins Eqs. (14)-(17) receipt times to Eq. (13).
  const SwapParams p = SwapParams::table3_defaults();
  const Schedule s = idealized_schedule(p, 0.0);
  const StageDelays d = stage_delays(p);
  EXPECT_DOUBLE_EQ(d.alice_cont_from_t3, s.t5 - s.t3);
  EXPECT_DOUBLE_EQ(d.bob_cont_from_t3, s.t6 - s.t3);
  EXPECT_DOUBLE_EQ(d.alice_stop_from_t3, s.t8 - s.t3);
  EXPECT_DOUBLE_EQ(d.bob_stop_from_t3, s.t7 - s.t3);
  EXPECT_DOUBLE_EQ(d.alice_stop_from_t2, s.t8 - s.t2);
}

}  // namespace
}  // namespace swapgame::model
