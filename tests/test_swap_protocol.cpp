// End-to-end tests of the HTLC protocol state machine (src/proto):
// every outcome path, Table I balance changes, receipt timing, collateral
// settlement and ledger conservation.
#include "proto/swap_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "agents/naive.hpp"
#include "agents/rational.hpp"

namespace swapgame::proto {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

SwapSetup basic_setup(double p_star = 2.0) {
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = p_star;
  return setup;
}

TEST(SwapProtocol, SuccessPathMatchesTableI) {
  // Table I: Alice -P* token-a / +1 token-b; Bob +P* token-a / -1 token-b.
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kSuccess);
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 0.0);
  EXPECT_DOUBLE_EQ(r.alice.final_token_b, 1.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 0.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(SwapProtocol, SuccessReceiptTimesMatchEq13) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  // Table III: t5 = 11h (Alice), t6 = 11h (Bob).
  EXPECT_DOUBLE_EQ(r.alice.receipt_time, r.schedule.t5);
  EXPECT_DOUBLE_EQ(r.bob.receipt_time, r.schedule.t6);
  EXPECT_DOUBLE_EQ(r.schedule.t5, 11.0);
  EXPECT_DOUBLE_EQ(r.schedule.t6, 11.0);
}

TEST(SwapProtocol, SuccessRealizedUtilitiesMatchStageFormulas) {
  // On a constant path the realized discounted utilities must equal the
  // model's t3-stage cont utilities evaluated along the same receipts.
  agents::HonestStrategy alice, bob;
  const double price = 2.0;
  const ConstantPricePath path(price);
  const SwapSetup setup = basic_setup();
  const SwapResult r = run_swap(setup, alice, bob, path);
  const auto& p = setup.params;
  const double expect_alice =
      (1.0 + p.alice.alpha) * price * std::exp(-p.alice.r * r.schedule.t5);
  const double expect_bob =
      (1.0 + p.bob.alpha) * setup.p_star * std::exp(-p.bob.r * r.schedule.t6);
  EXPECT_NEAR(r.alice.realized_utility, expect_alice, 1e-12);
  EXPECT_NEAR(r.bob.realized_utility, expect_bob, 1e-12);
}

TEST(SwapProtocol, NotInitiatedLeavesChainsUntouched) {
  agents::DefectorStrategy alice(agents::Stage::kT1Initiate);
  agents::HonestStrategy bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kNotInitiated);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(SwapProtocol, BobDeclinesAtT2RefundsAliceAtT8) {
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT2Lock);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobDeclinedT2);
  // Alice's principal comes back (auto-refund at t_a, receipt t8 = 14h).
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.alice.final_token_b, 0.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
  EXPECT_DOUBLE_EQ(r.alice.receipt_time, r.schedule.t8);
  EXPECT_DOUBLE_EQ(r.bob.receipt_time, r.schedule.t2);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(SwapProtocol, AliceDeclinesAtT3BothRefunded) {
  agents::HonestStrategy bob_strategy;
  agents::DefectorStrategy alice(agents::Stage::kT3Reveal);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob_strategy, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kAliceDeclinedT3);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
  // Bob's token-b is stuck until t7 = 15h (the lockup-griefing cost).
  EXPECT_DOUBLE_EQ(r.bob.receipt_time, r.schedule.t7);
  EXPECT_DOUBLE_EQ(r.schedule.t7, 15.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(SwapProtocol, BobMissingT4LosesPrincipal) {
  // The paper's Section II-B warning: if Bob fails to execute after the
  // secret is revealed, "he transferred his assets without receiving
  // Alice's assets".
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT4Claim);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobMissedT4);
  EXPECT_FALSE(r.success);
  // Alice holds BOTH her refunded token-a and the claimed token-b.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.alice.final_token_b, 1.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 0.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 0.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(SwapProtocol, RationalAgentsCompleteAtStablePrice) {
  agents::RationalStrategy alice(agents::Role::kAlice, defaults(), 2.0);
  agents::RationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kSuccess);
}

TEST(SwapProtocol, RationalAliceWalksAwayOnPriceDrop) {
  // Price drops below the Eq. (18) cutoff (1.481 at defaults) before t3.
  agents::RationalStrategy alice(agents::Role::kAlice, defaults(), 2.0);
  agents::RationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  const SteppedPricePath path({{0.0, 2.0}, {6.5, 1.2}});
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kAliceDeclinedT3);
}

TEST(SwapProtocol, RationalBobWalksAwayOnPriceSpike) {
  // Price rises above Bob's t2 band (hi ~ 2.389 at defaults) before t2 --
  // the paper's key claim that the *non-initiator* also defects.
  agents::RationalStrategy alice(agents::Role::kAlice, defaults(), 2.0);
  agents::RationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  const SteppedPricePath path({{0.0, 2.0}, {2.5, 3.0}});
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobDeclinedT2);
}

TEST(SwapProtocol, AuditLogRecordsEveryStep) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(basic_setup(), alice, bob, path);
  ASSERT_EQ(r.audit.size(), 4u);
  EXPECT_NE(r.audit[0].find("t1"), std::string::npos);
  EXPECT_NE(r.audit[1].find("t2"), std::string::npos);
  EXPECT_NE(r.audit[2].find("t3"), std::string::npos);
  EXPECT_NE(r.audit[3].find("t4"), std::string::npos);
}

TEST(SwapProtocol, ValidatesSetup) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup = basic_setup();
  setup.p_star = 0.0;
  EXPECT_THROW((void)run_swap(setup, alice, bob, path), std::invalid_argument);
  setup = basic_setup();
  setup.collateral = -1.0;
  EXPECT_THROW((void)run_swap(setup, alice, bob, path), std::invalid_argument);
  setup = basic_setup();
  setup.params.eps_b = setup.params.tau_b;  // Eq. (3)
  EXPECT_THROW((void)run_swap(setup, alice, bob, path), std::invalid_argument);
}

// ---- Collateralized protocol (Section IV). -------------------------------

SwapSetup collateral_setup(double q) {
  SwapSetup setup = basic_setup();
  setup.collateral = q;
  return setup;
}

TEST(CollateralProtocol, SuccessReturnsBothCollaterals) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(collateral_setup(0.5), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kSuccess);
  EXPECT_DOUBLE_EQ(r.alice_collateral_back, 0.5);
  EXPECT_DOUBLE_EQ(r.bob_collateral_back, 0.5);
  // Balances: alice had P* + Q, spent P*, got Q back -> Q on chain A.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 0.5);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 2.5);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(CollateralProtocol, BobStoppingForfeitsToAlice) {
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT2Lock);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(collateral_setup(0.5), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobDeclinedT2);
  EXPECT_DOUBLE_EQ(r.alice_collateral_back, 1.0);  // 2Q
  EXPECT_DOUBLE_EQ(r.bob_collateral_back, 0.0);
  // Alice ends with P* (refund) + 2Q on chain A.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 3.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 0.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(CollateralProtocol, AliceStoppingForfeitsToBob) {
  agents::DefectorStrategy alice(agents::Stage::kT3Reveal);
  agents::HonestStrategy bob;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(collateral_setup(0.5), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kAliceDeclinedT3);
  EXPECT_DOUBLE_EQ(r.alice_collateral_back, 0.0);
  EXPECT_DOUBLE_EQ(r.bob_collateral_back, 1.0);  // own Q + Alice's Q
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);  // principal refunded only
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 1.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(CollateralProtocol, EitherAgentCanDeclineEngagementAtT1) {
  agents::DefectorStrategy bob(agents::Stage::kT1Initiate);
  agents::HonestStrategy alice;
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(collateral_setup(0.5), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kNotInitiated);
  // Nothing charged: both keep principal and would-be collateral.
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.5);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 0.5);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(CollateralProtocol, BobMissedT4StillRecoversOwnCollateral) {
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT4Claim);
  const ConstantPricePath path(2.0);
  const SwapResult r = run_swap(collateral_setup(0.5), alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kBobMissedT4);
  // Bob locked (fulfilled t2) and Alice revealed (fulfilled t3): the Oracle
  // returns both collaterals even though Bob then lost his principal.
  EXPECT_DOUBLE_EQ(r.alice_collateral_back, 0.5);
  EXPECT_DOUBLE_EQ(r.bob_collateral_back, 0.5);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(CollateralProtocol, RealizedUtilityDoesNotPremiumScaleCollateral) {
  // Eq. (32): the collateral term enters without the (1 + alpha S) factor.
  agents::HonestStrategy alice, bob;
  const double q = 0.5;
  const ConstantPricePath path(2.0);
  const SwapSetup setup = collateral_setup(q);
  const SwapResult r = run_swap(setup, alice, bob, path);
  const auto& p = setup.params;
  const double swap_part =
      (1.0 + p.alice.alpha) * 2.0 * std::exp(-p.alice.r * r.schedule.t5);
  const double coll_part =
      q * std::exp(-p.alice.r * (r.schedule.t4 + p.tau_a));
  EXPECT_NEAR(r.alice.realized_utility, swap_part + coll_part, 1e-12);
}

}  // namespace
}  // namespace swapgame::proto
