// Tests for the bench output-path helper (bench/bench_util.hpp):
// SWAPGAME_BENCH_DIR redirection must create nested directories on
// demand, tolerate trailing slashes and absolute paths, and fall back to
// the current directory -- never crash or scatter files -- when the
// requested directory cannot be used.
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>
#include <sys/stat.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace swapgame::bench {
namespace {

/// Scoped SWAPGAME_BENCH_DIR override; restores the prior value (or the
/// unset state) so tests cannot leak environment into each other.
class ScopedBenchDir {
 public:
  explicit ScopedBenchDir(const char* value) {
    const char* prev = ::getenv("SWAPGAME_BENCH_DIR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value == nullptr) {
      ::unsetenv("SWAPGAME_BENCH_DIR");
    } else {
      ::setenv("SWAPGAME_BENCH_DIR", value, 1);
    }
  }
  ~ScopedBenchDir() {
    if (had_prev_) {
      ::setenv("SWAPGAME_BENCH_DIR", prev_.c_str(), 1);
    } else {
      ::unsetenv("SWAPGAME_BENCH_DIR");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

class BenchOutPath : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/swapgame_bench_util_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static bool is_directory(const std::string& path) {
    struct ::stat st {};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
  }

  std::string dir_;
};

TEST_F(BenchOutPath, UnsetOrEmptyMeansCurrentDirectory) {
  {
    const ScopedBenchDir env(nullptr);
    EXPECT_EQ(out_path("BENCH_x.json"), "BENCH_x.json");
  }
  {
    const ScopedBenchDir env("");
    EXPECT_EQ(out_path("BENCH_x.json"), "BENCH_x.json");
  }
}

TEST_F(BenchOutPath, CreatesNestedAbsoluteDirectoriesOnDemand) {
  const std::string nested = dir_ + "/a/b/c";
  const ScopedBenchDir env(nested.c_str());
  const std::string path = out_path("BENCH_x.json");
  EXPECT_EQ(path, nested + "/BENCH_x.json");
  EXPECT_TRUE(is_directory(nested));
  // The returned path is really writable.
  std::ofstream f(path);
  EXPECT_TRUE(f.is_open());
}

TEST_F(BenchOutPath, ToleratesTrailingAndDuplicateSeparators) {
  const std::string messy = dir_ + "//deep///dir/";
  const ScopedBenchDir env(messy.c_str());
  const std::string path = out_path("TRACE_x.jsonl");
  EXPECT_TRUE(is_directory(dir_ + "/deep/dir"));
  // No doubled separator in the joined result (the prefix already ends in
  // '/', so the join must not add another).
  EXPECT_EQ(path, messy + "TRACE_x.jsonl");
  EXPECT_EQ(path.find("//TRACE"), std::string::npos);
}

TEST_F(BenchOutPath, FallsBackToCwdWhenTheDirectoryCannotExist) {
  // A path component that is a regular FILE cannot be mkdir'd through;
  // out_path must warn and fall back instead of returning an unusable
  // path (the historical behavior silently wrote to a mkdir-failed path).
  const std::string blocker = dir_ + "/occupied";
  std::ofstream(blocker) << "not a directory";
  const std::string impossible = blocker + "/sub";
  const ScopedBenchDir env(impossible.c_str());
  EXPECT_EQ(out_path("BENCH_x.json"), "BENCH_x.json");
}

TEST_F(BenchOutPath, FallsBackToCwdWhenTheTargetIsAFile) {
  // SWAPGAME_BENCH_DIR pointing AT an existing file (not into it) hits
  // the ENOTDIR branch after the mkdir loop.
  const std::string blocker = dir_ + "/plainfile";
  std::ofstream(blocker) << "x";
  const ScopedBenchDir env(blocker.c_str());
  EXPECT_EQ(out_path("BENCH_x.json"), "BENCH_x.json");
}

TEST(BenchScaling, ScaledFloorsAndDivides) {
  // Without SWAPGAME_MC_SCALE in the environment the budget is untouched.
  if (::getenv("SWAPGAME_MC_SCALE") == nullptr) {
    EXPECT_EQ(mc_scale(), 1u);
    EXPECT_EQ(scaled(4096), 4096u);
  }
  ::setenv("SWAPGAME_MC_SCALE", "8", 1);
  EXPECT_EQ(mc_scale(), 8u);
  EXPECT_EQ(scaled(4096), 512u);
  EXPECT_EQ(scaled(4096, 1024), 1024u);  // floored
  ::setenv("SWAPGAME_MC_SCALE", "0", 1);
  EXPECT_EQ(mc_scale(), 1u);  // nonsense values degrade to full scale
  ::unsetenv("SWAPGAME_MC_SCALE");
}

}  // namespace
}  // namespace swapgame::bench
