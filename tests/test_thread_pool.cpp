// Tests for the sweep-engine thread pool (src/sweep/thread_pool).
#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

namespace swapgame::sweep {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool def(0);  // hardware concurrency, at least 1
  EXPECT_GE(def.size(), 1u);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, WaitIdleCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: a subsequent clean batch succeeds.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, TasksMayRunConcurrently) {
  // Two tasks that must overlap: each waits for the other's flag.
  ThreadPool pool(2);
  std::atomic<bool> a_started{false}, b_started{false};
  std::atomic<bool> overlapped{false};
  pool.submit([&] {
    a_started = true;
    for (int i = 0; i < 100000 && !b_started; ++i) {
    }
    if (b_started) overlapped = true;
  });
  pool.submit([&] {
    b_started = true;
    for (int i = 0; i < 100000 && !a_started; ++i) {
    }
  });
  pool.wait_idle();
  // On a single-core machine this can legitimately fail to overlap, so only
  // assert that both tasks completed.
  EXPECT_TRUE(a_started);
  EXPECT_TRUE(b_started);
}

TEST(ThreadPool, SubmitBulkExecutesAllTasksUnderOneLock) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.submit_bulk(std::move(tasks));
  pool.submit_bulk({});  // empty batch is a no-op
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, IsWorkerThreadDistinguishesInsideFromOutside) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.is_worker_thread());
  std::atomic<bool> inside{false};
  pool.submit([&] { inside = pool.is_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(inside);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.emplace_back([&counter] { counter.fetch_add(1); });
    }
    pool.submit_bulk(std::move(tasks));
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 160);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace swapgame::sweep
