// Tests for the optionality decomposition (src/model/option_value).
#include "model/option_value.hpp"

#include <gtest/gtest.h>

#include "model/premium_game.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(OptionalityDecomposition, OwnOptionsAreNonNegative) {
  // By optimality, playing the rational threshold cannot be worse than
  // committing, against the same (re-optimizing) opponent.
  const OptionalityDecomposition d = decompose_optionality(defaults(), 2.0);
  EXPECT_GE(d.alice_option_value(), -1e-9);
  EXPECT_GE(d.bob_option_value(), -1e-9);
  EXPECT_GT(d.alice_option_value(), 0.001);  // strictly valuable at defaults
  EXPECT_GT(d.bob_option_value(), 0.001);
}

TEST(OptionalityDecomposition, OptionsImposeLargerCostsOnCounterparty) {
  // The paper-relevant asymmetry: each side's option is worth little to its
  // holder but costs the counterparty several times more -- optionality is
  // a negative-sum feature of the protocol.
  const OptionalityDecomposition d = decompose_optionality(defaults(), 2.0);
  EXPECT_GT(d.alice_option_cost_to_bob(), d.alice_option_value());
  EXPECT_GT(d.bob_option_cost_to_alice(), d.bob_option_value());
}

TEST(OptionalityDecomposition, CommittedProtocolAlwaysCompletes) {
  const OptionalityDecomposition d = decompose_optionality(defaults(), 2.0);
  EXPECT_NEAR(d.success_rate_cc, 1.0, 1e-6);
  EXPECT_LT(d.success_rate_rr, 1.0);
  EXPECT_NEAR(d.success_rate_rr, 0.7143, 2e-3);
}

TEST(OptionalityDecomposition, PrisonersDilemmaStructure) {
  const OptionalityDecomposition d = decompose_optionality(defaults(), 2.0);
  // (C,C) Pareto-dominates (R,R)...
  EXPECT_GT(d.alice_cc, d.alice_rr);
  EXPECT_GT(d.bob_cc, d.bob_rr);
  // ...but each side gains by unilateral deviation from (C,C).
  EXPECT_GT(d.alice_rc, d.alice_cc);  // Alice defects vs committed Bob
  EXPECT_GT(d.bob_cr, d.bob_cc);      // Bob defects vs committed Alice
}

TEST(OptionalityDecomposition, RegressionValuesAtDefaults) {
  const OptionalityDecomposition d = decompose_optionality(defaults(), 2.0);
  EXPECT_NEAR(d.alice_rr, 2.2206, 2e-3);
  EXPECT_NEAR(d.bob_rr, 2.1861, 2e-3);
  EXPECT_NEAR(d.alice_option_value(), 0.0241, 2e-3);
  EXPECT_NEAR(d.bob_option_value(), 0.0303, 2e-3);
  EXPECT_NEAR(d.alice_option_cost_to_bob(), 0.1727, 2e-3);
  EXPECT_NEAR(d.bob_option_cost_to_alice(), 0.1911, 2e-3);
}

TEST(OptionalityDecomposition, HigherVolatilityInflatesOptionValues) {
  // Options are worth more in volatile markets (standard option theory;
  // the channel behind the paper's SR-vs-sigma result).
  SwapParams calm = defaults();
  calm.gbm.sigma = 0.05;
  SwapParams wild = defaults();
  wild.gbm.sigma = 0.15;
  const OptionalityDecomposition dc = decompose_optionality(calm, 2.0);
  const OptionalityDecomposition dw = decompose_optionality(wild, 2.0);
  EXPECT_GT(dw.alice_option_value(), dc.alice_option_value());
  EXPECT_GT(dw.bob_option_value(), dc.bob_option_value());
}

TEST(CompensatingPremium, ExistsAndCompensatesBob) {
  const auto pr = compensating_premium(defaults(), 2.0);
  ASSERT_TRUE(pr.has_value());
  EXPECT_GT(*pr, 0.0);
  // At the compensating premium Bob's equilibrium value matches (to search
  // tolerance) his value against a committed Alice.
  const StrategyEvaluator evaluator(defaults(), 2.0);
  ThresholdProfile alice_committed;
  alice_committed.alice_cutoff = 0.0;
  alice_committed.bob_region = evaluator.bob_best_response(0.0);
  const double target = evaluator.bob_value(alice_committed);
  const PremiumGame game(defaults(), 2.0, *pr);
  EXPECT_NEAR(game.bob_t1_cont(), target, 5e-3);
}

TEST(CompensatingPremium, ShrinksWhenAliceIsIntrinsicallyHonest) {
  // A huge alpha^A collapses Alice's walk-away region, so less premium is
  // needed to make Bob whole than at the default premium (~1.61).
  SwapParams honest_alice = defaults();
  honest_alice.alice.alpha = 5.0;
  const auto pr_honest = compensating_premium(honest_alice, 2.0);
  const auto pr_default = compensating_premium(defaults(), 2.0);
  ASSERT_TRUE(pr_honest.has_value());
  ASSERT_TRUE(pr_default.has_value());
  EXPECT_LT(*pr_honest, *pr_default);
}

TEST(CompensatingPremium, ValidatesArguments) {
  EXPECT_THROW((void)compensating_premium(defaults(), 2.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)compensating_premium(defaults(), 2.0, 4.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::model
