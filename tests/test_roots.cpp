// Unit tests for root finding (src/math/roots).
#include "math/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::math {
namespace {

TEST(Brent, FindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  EXPECT_NEAR(brent(f, {0.0, 2.0}), std::sqrt(2.0), 1e-12);
}

TEST(Brent, FindsTranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  EXPECT_NEAR(brent(f, {0.0, 1.0}), 0.7390851332151607, 1e-12);
}

TEST(Brent, AcceptsRootAtEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_EQ(brent(f, {1.0, 2.0}), 1.0);
  EXPECT_EQ(brent(f, {0.0, 1.0}), 1.0);
}

TEST(Brent, ThrowsOnInvalidBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)brent(f, {-1.0, 1.0}), std::invalid_argument);
}

TEST(Brent, HandlesSteepFunctions) {
  const auto f = [](double x) { return std::exp(50.0 * x) - 1.0; };
  EXPECT_NEAR(brent(f, {-1.0, 1.0}), 0.0, 1e-10);
}

TEST(Bisect, AgreesWithBrent) {
  const auto f = [](double x) { return x * x * x - x - 2.0; };
  const double rb = brent(f, {1.0, 2.0});
  const double rbis = bisect(f, {1.0, 2.0});
  EXPECT_NEAR(rb, rbis, 1e-9);
  EXPECT_NEAR(f(rb), 0.0, 1e-10);
}

TEST(Bisect, ThrowsOnInvalidBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)bisect(f, {-1.0, 1.0}), std::invalid_argument);
}

TEST(ScanSignChanges, FindsAllBracketsOfSine) {
  // sin has zeros at pi, 2pi, 3pi within (0.5, 10).
  const auto brackets =
      scan_sign_changes([](double x) { return std::sin(x); }, 0.5, 10.0, 500);
  ASSERT_EQ(brackets.size(), 3u);
  EXPECT_LT(brackets[0].lo, M_PI);
  EXPECT_GT(brackets[0].hi, M_PI);
  EXPECT_LT(brackets[1].lo, 2.0 * M_PI);
  EXPECT_GT(brackets[1].hi, 2.0 * M_PI);
}

TEST(ScanSignChanges, ValidatesArguments) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW((void)scan_sign_changes(f, 1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW((void)scan_sign_changes(f, 0.0, 1.0, 1), std::invalid_argument);
}

TEST(FindAllRoots, PolishedSineRoots) {
  const auto roots =
      find_all_roots([](double x) { return std::sin(x); }, 0.5, 10.0, 500);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], M_PI, 1e-10);
  EXPECT_NEAR(roots[1], 2.0 * M_PI, 1e-10);
  EXPECT_NEAR(roots[2], 3.0 * M_PI, 1e-10);
}

TEST(FindAllRoots, CubicWithThreeRoots) {
  // (x+2)(x)(x-3) = x^3 - x^2 - 6x
  const auto f = [](double x) { return x * x * x - x * x - 6.0 * x; };
  const auto roots = find_all_roots(f, -5.0, 5.0, 1000);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], -2.0, 1e-10);
  EXPECT_NEAR(roots[1], 0.0, 1e-10);
  EXPECT_NEAR(roots[2], 3.0, 1e-10);
}

TEST(FindAllRoots, NoRoots) {
  const auto roots =
      find_all_roots([](double x) { return x * x + 1.0; }, -5.0, 5.0, 100);
  EXPECT_TRUE(roots.empty());
}

TEST(FindAllRoots, RootOnGridNodeNotDuplicated) {
  // Root at exactly 0, which lands on a grid node for even sample counts
  // spanning symmetric ranges.
  const auto roots =
      find_all_roots([](double x) { return x; }, -1.0, 1.0, 201);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.0, 1e-10);
}

TEST(ExpandBracketUpward, FindsDistantSignChange) {
  const auto f = [](double x) { return x - 100.0; };
  const auto bracket = expand_bracket_upward(f, 0.0, 1.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->lo, 100.0);
  EXPECT_GE(bracket->hi, 100.0);
  EXPECT_NEAR(brent(f, *bracket), 100.0, 1e-9);
}

TEST(ExpandBracketUpward, ReturnsNulloptWhenNoSignChange) {
  const auto f = [](double) { return 1.0; };
  EXPECT_FALSE(expand_bracket_upward(f, 0.0, 1.0, 10).has_value());
}

TEST(ExpandBracketUpward, RejectsNonPositiveStep) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW((void)expand_bracket_upward(f, 0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::math
