// Unit tests for the observability layer (src/obs): TraceRecorder JSONL
// serialization, TraceCollector aggregation and the MetricsRegistry
// counter/histogram/snapshot contract, including the to_json/parse_snapshot
// round-trip the determinism tooling relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace swapgame;

// ---- JSON primitives -------------------------------------------------------

TEST(TraceJson, NumberFormattingRoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(obs::format_json_number(0.0), "0");
  EXPECT_EQ(obs::format_json_number(2.5), "2.5");
  EXPECT_EQ(obs::format_json_number(-1.0), "-1");
  // %.17g round-trips doubles exactly.
  const double third = 1.0 / 3.0;
  EXPECT_EQ(std::stod(obs::format_json_number(third)), third);
  // Non-finite values must still be valid JSON tokens.
  EXPECT_EQ(obs::format_json_number(std::numeric_limits<double>::quiet_NaN()),
            "\"nan\"");
  EXPECT_EQ(obs::format_json_number(std::numeric_limits<double>::infinity()),
            "\"inf\"");
  EXPECT_EQ(obs::format_json_number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
}

TEST(TraceJson, EscapingCoversQuotesBackslashesAndControls) {
  std::string out;
  obs::append_json_escaped(out, "a\"b\\c\nd\te");
  EXPECT_EQ(out, "a\\\"b\\\\c\\u000ad\\u0009e");
}

// ---- TraceRecorder ---------------------------------------------------------

TEST(TraceRecorder, SerializesEventsInOrderWithFixedKeyLayout) {
  obs::TraceRecorder trace;
  trace.record(0.0, obs::TraceKind::kRunStart, {{"p_star", 2.0}});
  trace.record(1.5, obs::TraceKind::kBroadcast,
               {{"chain", "Chain_a"}, {"tx", std::uint64_t{7}}});
  trace.record(3.0, obs::TraceKind::kDecision,
               {{"party", "alice"}, {"cont", true}, {"delta", -2}});

  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.to_jsonl(),
            "{\"t\":0,\"kind\":\"run-start\",\"p_star\":2}\n"
            "{\"t\":1.5,\"kind\":\"broadcast\",\"chain\":\"Chain_a\","
            "\"tx\":7}\n"
            "{\"t\":3,\"kind\":\"decision\",\"party\":\"alice\","
            "\"cont\":true,\"delta\":-2}\n");
}

TEST(TraceRecorder, PrefixIsInjectedAfterEveryOpeningBrace) {
  obs::TraceRecorder trace;
  trace.record(1.0, obs::TraceKind::kConfirm, {{"tx", std::uint64_t{1}}});
  trace.record(2.0, obs::TraceKind::kConfirm, {{"tx", std::uint64_t{2}}});
  EXPECT_EQ(trace.to_jsonl("\"sample\":42,"),
            "{\"sample\":42,\"t\":1,\"kind\":\"confirm\",\"tx\":1}\n"
            "{\"sample\":42,\"t\":2,\"kind\":\"confirm\",\"tx\":2}\n");
}

TEST(TraceRecorder, ClearEmptiesTheStream) {
  obs::TraceRecorder trace;
  trace.record(0.0, obs::TraceKind::kOutcome, {{"success", true}});
  EXPECT_FALSE(trace.empty());
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.to_jsonl(), "");
}

TEST(TraceKindNames, EveryEnumeratorHasAUniqueName) {
  std::vector<std::string> names;
  for (int k = 0; k <= static_cast<int>(obs::TraceKind::kOutcome); ++k) {
    names.emplace_back(obs::to_string(static_cast<obs::TraceKind>(k)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << "duplicate kind name " << names[i];
    }
  }
}

// ---- TraceCollector --------------------------------------------------------

TEST(TraceCollector, EmitsSamplesInAscendingIndexOrder) {
  obs::TraceCollector collector;
  obs::TraceRecorder t9;
  t9.record(0.0, obs::TraceKind::kOutcome, {{"success", false}});
  obs::TraceRecorder t2;
  t2.record(0.0, obs::TraceKind::kOutcome, {{"success", true}});
  collector.add(9, t9);  // insertion order is 9 then 2 ...
  collector.add(2, t2);
  EXPECT_EQ(collector.size(), 2u);
  EXPECT_EQ(collector.jsonl(),  // ... output order is 2 then 9
            "{\"sample\":2,\"t\":0,\"kind\":\"outcome\",\"success\":true}\n"
            "{\"sample\":9,\"t\":0,\"kind\":\"outcome\",\"success\":false}\n");
}

TEST(TraceCollector, ReAddingAnIndexOverwrites) {
  obs::TraceCollector collector;
  obs::TraceRecorder first;
  first.record(0.0, obs::TraceKind::kOutcome, {{"success", false}});
  obs::TraceRecorder second;
  second.record(0.0, obs::TraceKind::kOutcome, {{"success", true}});
  collector.add(5, first);
  collector.add(5, second);
  EXPECT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.jsonl(),
            "{\"sample\":5,\"t\":0,\"kind\":\"outcome\",\"success\":true}\n");
}

// ---- Counters and histograms -----------------------------------------------

TEST(Metrics, CounterIncrementsAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.hits");
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < 10'000; ++i) counter.inc();
    });
  }
  for (std::thread& t : workers) t.join();
  counter.inc(5);
  EXPECT_EQ(counter.value(), 40'005u);
  // Same name resolves to the same counter.
  EXPECT_EQ(registry.counter("test.hits").value(), 40'005u);
}

TEST(Metrics, HistogramBucketsUnderflowAndOverflow) {
  obs::HistogramMetric h(0.0, 10.0, 5);  // width-2 bins
  h.observe(-0.1);                       // underflow
  h.observe(0.0);                        // bin 0 (lo is inclusive)
  h.observe(1.999);                      // bin 0
  h.observe(2.0);                        // bin 1
  h.observe(9.999);                      // bin 4
  h.observe(10.0);                       // overflow (hi is exclusive)
  h.observe(std::numeric_limits<double>::quiet_NaN());  // underflow by policy
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 0u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Metrics, HistogramRejectsBadShapes) {
  EXPECT_THROW(obs::HistogramMetric(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::HistogramMetric(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::HistogramMetric(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Metrics, RegistryRejectsShapeMismatchOnReRegistration) {
  obs::MetricsRegistry registry;
  obs::HistogramMetric& h = registry.histogram("test.util", 0.0, 1.0, 10);
  h.observe(0.5);
  // Same shape: same histogram back.
  EXPECT_EQ(registry.histogram("test.util", 0.0, 1.0, 10).total(), 1u);
  EXPECT_THROW((void)registry.histogram("test.util", 0.0, 2.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("test.util", 0.0, 1.0, 20),
               std::invalid_argument);
}

// ---- Snapshots and the JSON round-trip -------------------------------------

TEST(Metrics, SnapshotIsDeterministicAndNameSorted) {
  obs::MetricsRegistry registry;
  registry.counter("z.last").inc(3);
  registry.counter("a.first").inc(1);
  registry.histogram("m.hist", -1.0, 1.0, 2).observe(0.5);

  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");
  EXPECT_EQ(snap.counters.at("z.last"), 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hist = snap.histograms.at("m.hist");
  EXPECT_EQ(hist.lo, -1.0);
  EXPECT_EQ(hist.hi, 1.0);
  ASSERT_EQ(hist.counts.size(), 2u);
  EXPECT_EQ(hist.counts[1], 1u);
  EXPECT_EQ(registry.snapshot(), snap);  // stable without new observations
}

TEST(Metrics, JsonRoundTripReproducesTheSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("swap.runs").inc(42);
  registry.counter("swap.outcome.success").inc(17);
  obs::HistogramMetric& h = registry.histogram("swap.utility", -4.0, 12.0, 8);
  h.observe(-10.0);
  h.observe(0.0);
  h.observe(3.75);
  h.observe(99.0);

  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  const std::string json = obs::MetricsRegistry::to_json(snap);
  const obs::MetricsRegistry::Snapshot parsed =
      obs::MetricsRegistry::parse_snapshot(json);
  EXPECT_EQ(parsed, snap);
  // Canonical rendering: serializing the parse gives identical bytes.
  EXPECT_EQ(obs::MetricsRegistry::to_json(parsed), json);
}

TEST(Metrics, EmptyRegistryRoundTrips) {
  const obs::MetricsRegistry registry;
  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(obs::MetricsRegistry::parse_snapshot(
                obs::MetricsRegistry::to_json(snap)),
            snap);
}

TEST(Metrics, ParseRejectsMalformedJson) {
  EXPECT_THROW((void)obs::MetricsRegistry::parse_snapshot(""),
               std::invalid_argument);
  EXPECT_THROW((void)obs::MetricsRegistry::parse_snapshot("{\"counters\":"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::MetricsRegistry::parse_snapshot("[]"),
               std::invalid_argument);
}

}  // namespace
