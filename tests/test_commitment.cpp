// Tests for the witness-commitment game/protocol (AC^3TW comparison
// family): src/model/commitment_game + src/proto/witness_protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/naive.hpp"
#include "agents/rational.hpp"
#include "model/basic_game.hpp"
#include "model/commitment_game.hpp"
#include "proto/witness_protocol.hpp"

namespace swapgame {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

TEST(CommitmentGame, ValidatesInput) {
  EXPECT_THROW(model::CommitmentGame(defaults(), 0.0), std::invalid_argument);
  EXPECT_NO_THROW(model::CommitmentGame(defaults(), 2.0));
}

TEST(CommitmentGame, BobThresholdIsClosedForm) {
  const model::CommitmentGame game(defaults(), 2.0);
  const double expected =
      1.3 * 2.0 * std::exp(-0.01 * (4.0 + 3.0));  // (1+aB) P* e^{-rB(tb+ta)}
  EXPECT_NEAR(game.bob_t2_threshold(), expected, 1e-12);
  EXPECT_NEAR(game.bob_t2_cont(), expected, 1e-12);
}

TEST(CommitmentGame, BobLocksAtAllLowPrices) {
  // The defining difference from the HTLC game: no lower band edge.
  const model::CommitmentGame game(defaults(), 2.0);
  EXPECT_EQ(game.bob_decision_t2(1e-9), model::Action::kCont);
  EXPECT_EQ(game.bob_decision_t2(game.bob_t2_threshold()), model::Action::kCont);
  EXPECT_EQ(game.bob_decision_t2(game.bob_t2_threshold() * 1.01),
            model::Action::kStop);
  // The HTLC game declines at the same low price.
  const model::BasicGame htlc(defaults(), 2.0);
  EXPECT_EQ(htlc.bob_decision_t2(0.5), model::Action::kStop);
}

TEST(CommitmentGame, SuccessRateBeatsHtlc) {
  const model::CommitmentGame witness(defaults(), 2.0);
  const model::BasicGame htlc(defaults(), 2.0);
  EXPECT_GT(witness.success_rate(), htlc.success_rate());
  EXPECT_NEAR(witness.success_rate(), 0.8775, 2e-3);  // regression pin
}

TEST(CommitmentGame, AliceUtilityLowerThanHtlc) {
  // Alice trades her American option away: completion up, utility down.
  const model::CommitmentGame witness(defaults(), 2.0);
  const model::BasicGame htlc(defaults(), 2.0);
  EXPECT_LT(witness.alice_t1_cont(), htlc.alice_t1_cont());
  // She still initiates (cont beats stop at the default rate).
  EXPECT_EQ(witness.alice_decision_t1(), model::Action::kCont);
}

TEST(CommitmentGame, BobUtilityHigherThanHtlc) {
  // Bob benefits twice: no Alice-defection risk and faster receipt.
  const model::CommitmentGame witness(defaults(), 2.0);
  const model::BasicGame htlc(defaults(), 2.0);
  EXPECT_GT(witness.bob_t1_cont(), htlc.bob_t1_cont());
}

TEST(CommitmentGame, SuccessRateEqualsThresholdProbability) {
  const model::CommitmentGame game(defaults(), 2.0);
  const math::GbmLaw law(defaults().gbm, defaults().p_t0, defaults().tau_a);
  EXPECT_NEAR(game.success_rate(), law.cdf(game.bob_t2_threshold()), 1e-12);
}

TEST(CommitmentGame, FeasibleBandExists) {
  const model::FeasibleBand band = model::commitment_feasible_band(defaults());
  ASSERT_TRUE(band.viable);
  EXPECT_LT(band.lo, 2.0);
  EXPECT_GT(band.hi, 2.0);
  // Regression pins.
  EXPECT_NEAR(band.lo, 1.4898, 2e-3);
  EXPECT_NEAR(band.hi, 2.3538, 2e-3);
}

// ---- Protocol execution. ---------------------------------------------------

TEST(WitnessProtocol, CommitPathMatchesTableI) {
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_witness_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 0.0);
  EXPECT_DOUBLE_EQ(r.alice.final_token_b, 1.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 0.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(WitnessProtocol, ReceiptsAreFasterThanHtlc) {
  // Commit receipts: Alice at t3 + tau_b = 11h (same as HTLC's t5), Bob at
  // t3 + tau_a = 10h (vs the HTLC's 11h -- no eps_b wait).
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_witness_swap(setup, alice, bob, path);
  EXPECT_DOUBLE_EQ(r.alice.receipt_time, 11.0);
  EXPECT_DOUBLE_EQ(r.bob.receipt_time, 10.0);
}

TEST(WitnessProtocol, AbortRefundsBoth) {
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  agents::HonestStrategy alice;
  agents::DefectorStrategy bob(agents::Stage::kT2Lock);
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_witness_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kBobDeclinedT2);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(WitnessProtocol, NoPostLockDefectionPossible) {
  // Even a strategy that would defect at t3/t4 cannot: those stages do not
  // exist -- the witness completes the swap.
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  agents::DefectorStrategy alice(agents::Stage::kT3Reveal);
  agents::DefectorStrategy bob(agents::Stage::kT4Claim);
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_witness_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(WitnessProtocol, RationalAgentsCompleteThroughCrash) {
  // Price crash before t2: rational HTLC-Bob walks away (low band edge);
  // rational commitment-Bob locks (no Alice risk) and the swap completes.
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  agents::CommitmentRationalStrategy alice(agents::Role::kAlice, defaults(),
                                           2.0);
  agents::CommitmentRationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  const proto::SteppedPricePath crash({{0.0, 2.0}, {2.5, 0.5}});
  const proto::SwapResult r = proto::run_witness_swap(setup, alice, bob, crash);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
}

TEST(WitnessProtocol, RationalBobStillWalksOnSpike) {
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  agents::CommitmentRationalStrategy alice(agents::Role::kAlice, defaults(),
                                           2.0);
  agents::CommitmentRationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  const proto::SteppedPricePath spike({{0.0, 2.0}, {2.5, 3.2}});
  const proto::SwapResult r = proto::run_witness_swap(setup, alice, bob, spike);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kBobDeclinedT2);
}

TEST(WitnessProtocol, ProtocolOutcomesMatchModelAcrossPriceGrid) {
  const model::CommitmentGame game(defaults(), 2.0);
  agents::CommitmentRationalStrategy alice(agents::Role::kAlice, defaults(),
                                           2.0);
  agents::CommitmentRationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  for (double p_t2 : {0.3, 1.0, 2.0, 2.4, 2.45, 3.0}) {
    const proto::SteppedPricePath path({{0.0, 2.0}, {3.0, p_t2}});
    const proto::SwapResult r =
        proto::run_witness_swap(setup, alice, bob, path);
    const proto::SwapOutcome expected =
        game.bob_decision_t2(p_t2) == model::Action::kCont
            ? proto::SwapOutcome::kSuccess
            : proto::SwapOutcome::kBobDeclinedT2;
    EXPECT_EQ(r.outcome, expected) << "p_t2=" << p_t2;
  }
}

}  // namespace
}  // namespace swapgame
