// Tests for the strategy implementations (src/agents).
#include <gtest/gtest.h>

#include <memory>

#include "agents/naive.hpp"
#include "agents/rational.hpp"
#include "model/basic_game.hpp"

namespace swapgame::agents {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

DecisionContext ctx(double price, double p_star = 2.0, double now = 0.0) {
  return {price, p_star, now};
}

TEST(StageNames, AllStagesNamed) {
  EXPECT_STREQ(to_string(Stage::kT1Initiate), "t1:initiate");
  EXPECT_STREQ(to_string(Stage::kT2Lock), "t2:lock");
  EXPECT_STREQ(to_string(Stage::kT3Reveal), "t3:reveal");
  EXPECT_STREQ(to_string(Stage::kT4Claim), "t4:claim");
}

TEST(RationalStrategy, AliceMatchesBackwardInduction) {
  const model::BasicGame game(defaults(), 2.0);
  RationalStrategy alice(Role::kAlice, defaults(), 2.0);
  // t1: the default rate is viable, so Alice initiates.
  EXPECT_EQ(alice.decide(Stage::kT1Initiate, ctx(2.0)), model::Action::kCont);
  // t3: threshold rule around the Eq. (18) cutoff.
  const double cut = game.alice_t3_cutoff();
  EXPECT_EQ(alice.decide(Stage::kT3Reveal, ctx(cut * 1.05)),
            model::Action::kCont);
  EXPECT_EQ(alice.decide(Stage::kT3Reveal, ctx(cut * 0.95)),
            model::Action::kStop);
  // Stages Alice does not own default to cont.
  EXPECT_EQ(alice.decide(Stage::kT2Lock, ctx(100.0)), model::Action::kCont);
}

TEST(RationalStrategy, BobMatchesBackwardInduction) {
  const model::BasicGame game(defaults(), 2.0);
  RationalStrategy bob(Role::kBob, defaults(), 2.0);
  const auto band = game.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_EQ(bob.decide(Stage::kT2Lock, ctx(0.5 * (band->lo + band->hi))),
            model::Action::kCont);
  EXPECT_EQ(bob.decide(Stage::kT2Lock, ctx(band->hi * 1.2)),
            model::Action::kStop);
  EXPECT_EQ(bob.decide(Stage::kT2Lock, ctx(band->lo * 0.8)),
            model::Action::kStop);
  // t4 is dominant-cont regardless of price.
  EXPECT_EQ(bob.decide(Stage::kT4Claim, ctx(0.001)), model::Action::kCont);
  EXPECT_EQ(bob.decide(Stage::kT4Claim, ctx(1000.0)), model::Action::kCont);
}

TEST(RationalStrategy, AliceDeclinesOutOfBandRate) {
  RationalStrategy alice(Role::kAlice, defaults(), 5.0);  // absurd rate
  EXPECT_EQ(alice.decide(Stage::kT1Initiate, ctx(2.0, 5.0)),
            model::Action::kStop);
}

TEST(CollateralRationalStrategy, UsesCollateralThresholds) {
  const double q = 0.5;
  const model::CollateralGame game(defaults(), 2.0, q);
  CollateralRationalStrategy alice(Role::kAlice, defaults(), 2.0, q);
  CollateralRationalStrategy bob(Role::kBob, defaults(), 2.0, q);
  // Bob's region includes near-zero prices (collateral recovery motive).
  EXPECT_EQ(bob.decide(Stage::kT2Lock, ctx(1e-6)), model::Action::kCont);
  // Alice's t3 cutoff is lower than in the basic game.
  const double basic_cut = game.basic().alice_t3_cutoff();
  const double coll_cut = game.alice_t3_cutoff();
  ASSERT_LT(coll_cut, basic_cut);
  const double between = 0.5 * (coll_cut + basic_cut);
  EXPECT_EQ(alice.decide(Stage::kT3Reveal, ctx(between)), model::Action::kCont);
  // Both engage at t1 at the default rate.
  EXPECT_EQ(alice.decide(Stage::kT1Initiate, ctx(2.0)), model::Action::kCont);
  EXPECT_EQ(bob.decide(Stage::kT1Initiate, ctx(2.0)), model::Action::kCont);
}

TEST(HonestStrategy, AlwaysContinues) {
  HonestStrategy honest;
  for (Stage s : {Stage::kT1Initiate, Stage::kT2Lock, Stage::kT3Reveal,
                  Stage::kT4Claim}) {
    EXPECT_EQ(honest.decide(s, ctx(0.0001)), model::Action::kCont);
    EXPECT_EQ(honest.decide(s, ctx(1000.0)), model::Action::kCont);
  }
  EXPECT_EQ(honest.name(), "honest");
}

TEST(DefectorStrategy, StopsExactlyAtConfiguredStage) {
  DefectorStrategy defector(Stage::kT3Reveal);
  EXPECT_EQ(defector.decide(Stage::kT1Initiate, ctx(2.0)),
            model::Action::kCont);
  EXPECT_EQ(defector.decide(Stage::kT2Lock, ctx(2.0)), model::Action::kCont);
  EXPECT_EQ(defector.decide(Stage::kT3Reveal, ctx(2.0)), model::Action::kStop);
  EXPECT_EQ(defector.decide(Stage::kT4Claim, ctx(2.0)), model::Action::kCont);
}

TEST(TriggerStrategy, BandAroundAgreedRate) {
  TriggerStrategy trigger(0.1);  // +/-10% band
  EXPECT_EQ(trigger.decide(Stage::kT2Lock, ctx(2.0, 2.0)),
            model::Action::kCont);
  EXPECT_EQ(trigger.decide(Stage::kT2Lock, ctx(2.19, 2.0)),
            model::Action::kCont);
  EXPECT_EQ(trigger.decide(Stage::kT2Lock, ctx(2.21, 2.0)),
            model::Action::kStop);
  EXPECT_EQ(trigger.decide(Stage::kT2Lock, ctx(1.79, 2.0)),
            model::Action::kStop);
  // t4 stays dominant-cont.
  EXPECT_EQ(trigger.decide(Stage::kT4Claim, ctx(100.0, 2.0)),
            model::Action::kCont);
  EXPECT_THROW(TriggerStrategy(-0.1), std::invalid_argument);
}

TEST(NoisyStrategy, ZeroEpsilonIsTransparent) {
  NoisyStrategy noisy(std::make_unique<HonestStrategy>(), 0.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(noisy.decide(Stage::kT2Lock, ctx(2.0)), model::Action::kCont);
  }
}

TEST(NoisyStrategy, FullEpsilonAlwaysFlips) {
  NoisyStrategy noisy(std::make_unique<HonestStrategy>(), 1.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(noisy.decide(Stage::kT2Lock, ctx(2.0)), model::Action::kStop);
  }
}

TEST(NoisyStrategy, FlipRateApproximatesEpsilon) {
  NoisyStrategy noisy(std::make_unique<HonestStrategy>(), 0.25, 99);
  int flips = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (noisy.decide(Stage::kT2Lock, ctx(2.0)) == model::Action::kStop) {
      ++flips;
    }
  }
  EXPECT_NEAR(static_cast<double>(flips) / n, 0.25, 0.02);
}

TEST(NoisyStrategy, ValidatesArguments) {
  EXPECT_THROW(NoisyStrategy(nullptr, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(NoisyStrategy(std::make_unique<HonestStrategy>(), 1.5, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::agents
