// Robustness tests: stochastic confirmation delays (relaxing the paper's
// constant-tau assumption 1) and the atomicity failures they enable --
// the Zakhary et al. critique (paper Section II-C) made concrete.
#include <gtest/gtest.h>

#include "agents/naive.hpp"
#include "chain/ledger.hpp"
#include "proto/swap_protocol.hpp"

namespace swapgame::proto {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

TEST(LedgerJitter, RequiresRngWhenEnabled) {
  chain::EventQueue queue;
  chain::ChainParams params{chain::ChainId::kChainA, 3.0, 1.0, 0.5};
  EXPECT_THROW(chain::Ledger(params, queue, nullptr), std::invalid_argument);
  math::Xoshiro256 rng(1);
  EXPECT_NO_THROW(chain::Ledger(params, queue, &rng));
  chain::ChainParams bad{chain::ChainId::kChainA, 3.0, 1.0, -0.1};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(LedgerJitter, ConfirmationDelaysWithinBounds) {
  chain::EventQueue queue;
  math::Xoshiro256 rng(7);
  chain::Ledger ledger({chain::ChainId::kChainA, 3.0, 1.0, 2.0}, queue, &rng);
  ledger.create_account({"a"}, chain::Amount::from_tokens(100.0));
  ledger.create_account({"b"}, chain::Amount{});
  bool saw_extra = false;
  for (int i = 0; i < 50; ++i) {
    const chain::TxId id = ledger.submit(chain::TransferPayload{
        {"a"}, {"b"}, chain::Amount::from_tokens(0.1)});
    const double delay =
        ledger.transaction(id).confirmed_at - ledger.transaction(id).submitted_at;
    EXPECT_GE(delay, 3.0);
    EXPECT_LT(delay, 5.0);
    if (delay > 3.1) saw_extra = true;
  }
  EXPECT_TRUE(saw_extra);
}

TEST(ProtocolJitter, ZeroJitterIsUnchanged) {
  // The reconciliation pass must be a no-op on deterministic runs.
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  const SwapResult r = run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(ProtocolJitter, ZeroMarginAnyJitterBreaksClaims) {
  // With the idealized schedule, claims confirm EXACTLY at expiry; any
  // positive jitter pushes them past the lock.  Without a margin the swap
  // cannot complete -- but conservation and (here) atomicity still hold:
  // both legs refund.
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  setup.confirmation_jitter_a = 0.5;
  setup.confirmation_jitter_b = 0.5;
  setup.expiry_margin = 0.0;
  setup.latency_seed = 99;
  const SwapResult r = run_swap(setup, alice, bob, path);
  EXPECT_NE(r.outcome, SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(ProtocolJitter, AmpleMarginRestoresSuccess) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  setup.confirmation_jitter_a = 0.5;
  setup.confirmation_jitter_b = 0.5;
  setup.expiry_margin = 2.0;  // >> max total jitter along either leg
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    setup.latency_seed = seed;
    const SwapResult r = run_swap(setup, alice, bob, path);
    EXPECT_EQ(r.outcome, SwapOutcome::kSuccess) << "seed=" << seed;
    EXPECT_TRUE(r.conservation_ok);
  }
}

TEST(ProtocolJitter, OneSidedLossIsReachable) {
  // Asymmetric jitter: Chain_b is very jittery (Alice's claim often late)
  // while Chain_a is punctual with a generous margin so Bob's claim always
  // lands.  Some seed must produce Alice's one-sided loss -- the exact
  // failure Zakhary et al. warn about with honest participants.
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  setup.confirmation_jitter_a = 0.0;
  setup.confirmation_jitter_b = 3.0;
  setup.expiry_margin = 1.0;  // absorbs Chain_a's needs; < jitter_b though
  int alice_losses = 0;
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    setup.latency_seed = seed;
    const SwapResult r = run_swap(setup, alice, bob, path);
    ASSERT_TRUE(r.conservation_ok);
    if (r.outcome == SwapOutcome::kAliceLostAtomicity) {
      ++alice_losses;
      // She lost her principal: no token-a, no token-b.
      EXPECT_DOUBLE_EQ(r.alice.final_token_a, 0.0);
      EXPECT_DOUBLE_EQ(r.alice.final_token_b, 0.0);
      EXPECT_DOUBLE_EQ(r.bob.final_token_a, 2.0);
      EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
    } else if (r.outcome == SwapOutcome::kSuccess) {
      ++successes;
    }
  }
  EXPECT_GT(alice_losses, 0) << "expected at least one atomicity violation";
  EXPECT_GT(successes, 0) << "expected some successes too";
}

TEST(ProtocolJitter, DeterministicPerLatencySeed) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  setup.confirmation_jitter_a = 1.0;
  setup.confirmation_jitter_b = 1.0;
  setup.expiry_margin = 1.0;
  setup.latency_seed = 42;
  const SwapResult r1 = run_swap(setup, alice, bob, path);
  const SwapResult r2 = run_swap(setup, alice, bob, path);
  EXPECT_EQ(r1.outcome, r2.outcome);
  EXPECT_EQ(r1.alice.final_token_a, r2.alice.final_token_a);
}

TEST(ProtocolJitter, MarginShiftsFailureReceipts) {
  // The refund receipts move out with the margin: t8 = t_a + tau_a where
  // t_a = idealized + margin.
  agents::DefectorStrategy alice(agents::Stage::kT3Reveal);
  agents::HonestStrategy bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  setup.expiry_margin = 2.0;
  const SwapResult r = run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, SwapOutcome::kAliceDeclinedT3);
  EXPECT_DOUBLE_EQ(r.schedule.t_a, 13.0);  // 11 + 2
  EXPECT_DOUBLE_EQ(r.alice.receipt_time, 16.0);  // t_a + tau_a
  EXPECT_DOUBLE_EQ(r.bob.receipt_time, 17.0);    // t_b + tau_b
  EXPECT_TRUE(r.conservation_ok);
}

TEST(ProtocolJitter, ValidatesMargin) {
  agents::HonestStrategy alice, bob;
  const ConstantPricePath path(2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.expiry_margin = -1.0;
  EXPECT_THROW((void)run_swap(setup, alice, bob, path), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::proto
