// FIPS 180-4 conformance and API tests for the from-scratch SHA-256
// (src/crypto/sha256) and the digest/secret types.
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/secret.hpp"

namespace swapgame::crypto {
namespace {

TEST(Sha256, FipsVectorEmptyString) {
  EXPECT_EQ(Sha256::hash("").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, FipsVectorAbc) {
  EXPECT_EQ(Sha256::hash("abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, FipsVectorTwoBlockMessage) {
  EXPECT_EQ(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FipsVectorMillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, PaddingBoundaryLengths) {
  // Lengths around the 55/56 byte padding boundary and the 64-byte block
  // boundary must all round-trip through the incremental interface.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    for (char c : msg) {
      a.update(std::string_view(&c, 1));
    }
    EXPECT_EQ(a.finalize(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("first");
  (void)h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finalize(), Sha256::hash("abc"));
}

TEST(Sha256, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash("abc"), Sha256::hash("abd"));
  EXPECT_NE(Sha256::hash(""), Sha256::hash(std::string(1, '\0')));
}

TEST(Digest256, HexRoundTrip) {
  const Digest256 d = Sha256::hash("roundtrip");
  EXPECT_EQ(Digest256::from_hex(d.to_hex()), d);
}

TEST(Digest256, FromHexRejectsBadInput) {
  EXPECT_THROW((void)Digest256::from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)Digest256::from_hex(std::string(64, 'g')),
               std::invalid_argument);
  EXPECT_NO_THROW((void)Digest256::from_hex(std::string(64, 'A')));  // upper ok
}

TEST(Digest256, ConstantTimeEquals) {
  const Digest256 a = Sha256::hash("x");
  const Digest256 b = Sha256::hash("x");
  const Digest256 c = Sha256::hash("y");
  EXPECT_TRUE(a.constant_time_equals(b));
  EXPECT_FALSE(a.constant_time_equals(c));
}

TEST(Digest256, OrderingIsLexicographic) {
  const Digest256 zero;
  const Digest256 some = Sha256::hash("z");
  EXPECT_TRUE(zero < some || some < zero);
  EXPECT_FALSE(zero < zero);
}

TEST(Secret, CommitmentMatchesSha256OfBytes) {
  math::Xoshiro256 rng(99);
  const Secret s = Secret::generate(rng);
  const Digest256 direct = Sha256::hash(
      std::span<const std::uint8_t>(s.bytes().data(), s.bytes().size()));
  EXPECT_EQ(s.commitment(), direct);
}

TEST(Secret, OpensOnlyItsOwnCommitment) {
  math::Xoshiro256 rng(7);
  const Secret s1 = Secret::generate(rng);
  const Secret s2 = Secret::generate(rng);
  EXPECT_NE(s1, s2);
  EXPECT_TRUE(s1.opens(s1.commitment()));
  EXPECT_FALSE(s1.opens(s2.commitment()));
  EXPECT_FALSE(s2.opens(s1.commitment()));
}

TEST(Secret, GenerationIsDeterministicPerSeed) {
  math::Xoshiro256 a(1234), b(1234);
  EXPECT_EQ(Secret::generate(a), Secret::generate(b));
}

TEST(ToHex, EncodesBytes) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(to_hex(bytes), "000fa5ff");
}

}  // namespace
}  // namespace swapgame::crypto
