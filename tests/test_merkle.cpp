// Unit tests for the Merkle tree (src/crypto/merkle).
#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace swapgame::crypto {
namespace {

std::vector<Digest256> make_leaves(int n) {
  std::vector<Digest256> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTree, EmptyTreeHasZeroRoot) {
  const MerkleTree tree({});
  EXPECT_EQ(tree.root(), Digest256{});
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_THROW((void)tree.prove(0), std::out_of_range);
}

TEST(MerkleTree, SingleLeafRootIsTheLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  const MerkleProof proof = tree.prove(0);
  EXPECT_TRUE(proof.steps.empty());
  EXPECT_TRUE(MerkleTree::verify(leaves[0], proof, tree.root()));
}

TEST(MerkleTree, TwoLeavesRootIsParent) {
  const auto leaves = make_leaves(2);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::parent(leaves[0], leaves[1]));
}

TEST(MerkleTree, OddLeafCountDuplicatesLast) {
  const auto leaves = make_leaves(3);
  const MerkleTree tree(leaves);
  const Digest256 left = MerkleTree::parent(leaves[0], leaves[1]);
  const Digest256 right = MerkleTree::parent(leaves[2], leaves[2]);
  EXPECT_EQ(tree.root(), MerkleTree::parent(left, right));
}

TEST(MerkleTree, AllProofsVerifyAcrossSizes) {
  for (int n : {1, 2, 3, 4, 5, 7, 8, 13, 16, 33}) {
    const auto leaves = make_leaves(n);
    const MerkleTree tree(leaves);
    for (int i = 0; i < n; ++i) {
      const MerkleProof proof = tree.prove(i);
      EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTree, WrongLeafFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(leaves[4], proof, tree.root()));
  EXPECT_FALSE(MerkleTree::verify(Sha256::hash("evil"), proof, tree.root()));
}

TEST(MerkleTree, WrongRootFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, Sha256::hash("other")));
}

TEST(MerkleTree, TamperedProofStepFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(3);
  proof.steps[1].sibling = Sha256::hash("tampered");
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
  // Flipping a side bit also breaks it.
  MerkleProof flipped = tree.prove(3);
  flipped.steps[0].sibling_on_left = !flipped.steps[0].sibling_on_left;
  EXPECT_FALSE(MerkleTree::verify(leaves[3], flipped, tree.root()));
}

// Regression: verify() used to ignore proof.leaf_index entirely and walk
// whatever direction bits the steps carried, so a valid proof could be
// presented as proving ANY position.  Direction bits are now recomputed
// from the claimed index and must agree with the steps.
TEST(MerkleTree, ProofIsBoundToItsClaimedPosition) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(3);
  ASSERT_TRUE(MerkleTree::verify(leaves[3], proof, tree.root()));

  // Claiming a different position with the same steps must fail, even
  // though the hash walk itself would still reach the root.
  proof.leaf_index = 2;
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
  proof.leaf_index = 5;
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
}

// Regression: an index beyond the tree (claimed index + 2^steps) leaves
// residual position bits after consuming every step; such proofs must be
// rejected rather than treated as position 3's.
TEST(MerkleTree, OverlargeLeafIndexAliasFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(3);
  proof.leaf_index = 3 + 8;  // same low bits, out of range
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
}

TEST(MerkleTree, ProofsAtEveryPositionRejectEveryOtherClaimedIndex) {
  const auto leaves = make_leaves(5);
  const MerkleTree tree(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    MerkleProof proof = tree.prove(i);
    for (std::size_t claimed = 0; claimed < leaves.size(); ++claimed) {
      proof.leaf_index = claimed;
      EXPECT_EQ(MerkleTree::verify(leaves[i], proof, tree.root()),
                claimed == i)
          << "i=" << i << " claimed=" << claimed;
    }
  }
}

// Regression (CVE-2012-2459 pattern): [A,B,C] and [A,B,C,C] used to hash
// to the SAME root, because the odd-count duplication of C is
// indistinguishable from an explicit duplicate leaf.  A mutated block
// could then carry a bogus duplicated transaction under a valid root.
// The constructor now rejects any level whose even node count ends in two
// equal digests.
TEST(MerkleTree, DuplicateFinalLeafMutationIsRejected) {
  auto leaves = make_leaves(3);
  const MerkleTree honest(leaves);
  leaves.push_back(leaves.back());  // the mutation image [A,B,C,C]
  EXPECT_THROW((void)MerkleTree(leaves), std::invalid_argument);
  EXPECT_EQ(honest.leaf_count(), 3u);
}

TEST(MerkleTree, DuplicateFinalPairAtInnerLevelIsRejected) {
  // The mutation can also live one level up: duplicating the last PAIR of
  // leaves ([A,B,C,D,E,F] -> [A,B,C,D,E,F,E,F]) leaves level 0 free of
  // adjacent duplicates but makes level 1 end in two equal parents --
  // exactly the image the 6-leaf tree's odd level 1 self-pairs to.
  auto leaves = make_leaves(6);
  leaves.push_back(leaves[4]);
  leaves.push_back(leaves[5]);
  EXPECT_THROW((void)MerkleTree(leaves), std::invalid_argument);
}

TEST(MerkleTree, OddCountSelfPairingStillWorks) {
  // The guard must not reject the LEGITIMATE odd-count duplication that
  // Bitcoin-style trees perform internally ([A,B,C] pairs C with itself).
  for (int n : {3, 5, 7, 9, 33}) {
    const auto leaves = make_leaves(n);
    const MerkleTree tree(leaves);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(MerkleTree::verify(leaves[i], tree.prove(i), tree.root()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTree, RootDependsOnLeafOrder) {
  auto leaves = make_leaves(4);
  const MerkleTree tree1(leaves);
  std::swap(leaves[0], leaves[1]);
  const MerkleTree tree2(leaves);
  EXPECT_NE(tree1.root(), tree2.root());
}

TEST(MerkleTree, ProofSizeIsLogarithmic) {
  const auto leaves = make_leaves(1024);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.prove(0).steps.size(), 10u);  // log2(1024)
}

}  // namespace
}  // namespace swapgame::crypto
