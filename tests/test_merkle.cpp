// Unit tests for the Merkle tree (src/crypto/merkle).
#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace swapgame::crypto {
namespace {

std::vector<Digest256> make_leaves(int n) {
  std::vector<Digest256> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTree, EmptyTreeHasZeroRoot) {
  const MerkleTree tree({});
  EXPECT_EQ(tree.root(), Digest256{});
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_THROW((void)tree.prove(0), std::out_of_range);
}

TEST(MerkleTree, SingleLeafRootIsTheLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  const MerkleProof proof = tree.prove(0);
  EXPECT_TRUE(proof.steps.empty());
  EXPECT_TRUE(MerkleTree::verify(leaves[0], proof, tree.root()));
}

TEST(MerkleTree, TwoLeavesRootIsParent) {
  const auto leaves = make_leaves(2);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::parent(leaves[0], leaves[1]));
}

TEST(MerkleTree, OddLeafCountDuplicatesLast) {
  const auto leaves = make_leaves(3);
  const MerkleTree tree(leaves);
  const Digest256 left = MerkleTree::parent(leaves[0], leaves[1]);
  const Digest256 right = MerkleTree::parent(leaves[2], leaves[2]);
  EXPECT_EQ(tree.root(), MerkleTree::parent(left, right));
}

TEST(MerkleTree, AllProofsVerifyAcrossSizes) {
  for (int n : {1, 2, 3, 4, 5, 7, 8, 13, 16, 33}) {
    const auto leaves = make_leaves(n);
    const MerkleTree tree(leaves);
    for (int i = 0; i < n; ++i) {
      const MerkleProof proof = tree.prove(i);
      EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTree, WrongLeafFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(leaves[4], proof, tree.root()));
  EXPECT_FALSE(MerkleTree::verify(Sha256::hash("evil"), proof, tree.root()));
}

TEST(MerkleTree, WrongRootFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, Sha256::hash("other")));
}

TEST(MerkleTree, TamperedProofStepFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(3);
  proof.steps[1].sibling = Sha256::hash("tampered");
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
  // Flipping a side bit also breaks it.
  MerkleProof flipped = tree.prove(3);
  flipped.steps[0].sibling_on_left = !flipped.steps[0].sibling_on_left;
  EXPECT_FALSE(MerkleTree::verify(leaves[3], flipped, tree.root()));
}

TEST(MerkleTree, RootDependsOnLeafOrder) {
  auto leaves = make_leaves(4);
  const MerkleTree tree1(leaves);
  std::swap(leaves[0], leaves[1]);
  const MerkleTree tree2(leaves);
  EXPECT_NE(tree1.root(), tree2.root());
}

TEST(MerkleTree, ProofSizeIsLogarithmic) {
  const auto leaves = make_leaves(1024);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.prove(0).steps.size(), 10u);  // log2(1024)
}

}  // namespace
}  // namespace swapgame::crypto
