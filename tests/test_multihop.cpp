// Tests for N-party cyclic atomic swaps (src/proto/multihop_protocol):
// Herlihy-style lock staircases, backward claim propagation, atomicity
// under per-position defection.
#include "proto/multihop_protocol.hpp"

#include <gtest/gtest.h>

#include "agents/naive.hpp"

namespace swapgame::proto {
namespace {

MultihopSetup make_cycle(std::size_t n) {
  MultihopSetup setup;
  for (std::size_t i = 0; i < n; ++i) {
    setup.parties.push_back(
        {"p" + std::to_string(i), 1.0 + 0.5 * static_cast<double>(i), nullptr});
  }
  return setup;
}

TEST(Multihop, ValidatesSetup) {
  const ConstantPricePath path(1.0);
  MultihopSetup one;
  one.parties.push_back({"solo", 1.0, nullptr});
  EXPECT_THROW((void)run_multihop_swap(one, path), std::invalid_argument);
  MultihopSetup bad_eps = make_cycle(3);
  bad_eps.eps = bad_eps.tau;
  EXPECT_THROW((void)run_multihop_swap(bad_eps, path), std::invalid_argument);
  MultihopSetup bad_amount = make_cycle(3);
  bad_amount.parties[1].amount = 0.0;
  EXPECT_THROW((void)run_multihop_swap(bad_amount, path),
               std::invalid_argument);
}

TEST(Multihop, TwoPartyCycleCommits) {
  const ConstantPricePath path(1.0);
  const MultihopResult r = run_multihop_swap(make_cycle(2), path);
  EXPECT_EQ(r.outcome, MultihopOutcome::kAllCommitted);
  EXPECT_EQ(r.legs_claimed, 2);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(Multihop, HonestCyclesCommitForManySizes) {
  const ConstantPricePath path(1.0);
  for (std::size_t n : {2u, 3u, 4u, 5u, 8u}) {
    const MultihopResult r = run_multihop_swap(make_cycle(n), path);
    EXPECT_EQ(r.outcome, MultihopOutcome::kAllCommitted) << "n=" << n;
    EXPECT_EQ(r.legs_claimed, static_cast<int>(n)) << "n=" << n;
    EXPECT_TRUE(r.conservation_ok) << "n=" << n;
    // Everyone paid their own amount and received their predecessor's.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(r.paid[i], 1.0 + 0.5 * static_cast<double>(i));
      const std::size_t prev = (i + n - 1) % n;
      EXPECT_DOUBLE_EQ(r.received[i], 1.0 + 0.5 * static_cast<double>(prev));
    }
  }
}

TEST(Multihop, LockDeclineAbortsAtomically) {
  const ConstantPricePath path(1.0);
  for (std::size_t defector = 0; defector < 4; ++defector) {
    MultihopSetup setup = make_cycle(4);
    agents::DefectorStrategy defect(defector == 0
                                        ? agents::Stage::kT1Initiate
                                        : agents::Stage::kT2Lock);
    setup.parties[defector].strategy = &defect;
    const MultihopResult r = run_multihop_swap(setup, path);
    EXPECT_EQ(r.outcome, MultihopOutcome::kAbortedAtLock)
        << "defector=" << defector;
    EXPECT_EQ(r.locks_deployed, static_cast<int>(defector));
    EXPECT_EQ(r.legs_claimed, 0);
    EXPECT_TRUE(r.conservation_ok);
    // Nobody lost anything: paid == 0 and received == 0 for everyone.
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(r.paid[i], 0.0) << "party " << i;
      EXPECT_DOUBLE_EQ(r.received[i], 0.0) << "party " << i;
    }
  }
}

TEST(Multihop, LeaderWithholdingRefundsEveryone) {
  const ConstantPricePath path(1.0);
  MultihopSetup setup = make_cycle(4);
  agents::DefectorStrategy withhold(agents::Stage::kT3Reveal);
  setup.parties[0].strategy = &withhold;
  const MultihopResult r = run_multihop_swap(setup, path);
  EXPECT_EQ(r.outcome, MultihopOutcome::kLeaderAborted);
  EXPECT_EQ(r.locks_deployed, 4);
  EXPECT_EQ(r.legs_claimed, 0);
  EXPECT_TRUE(r.conservation_ok);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.paid[i], 0.0) << "party " << i;  // refunded
  }
}

TEST(Multihop, ClaimSkipperLosesOnlyItsOwnLeg) {
  // Party 2 (of 4) sees the secret but skips its claim: it already paid
  // (its lock gets claimed by party 3... no: party 2's OUTGOING lock on
  // chain 2 is claimed by party 3 earlier in the backward wave) but never
  // collects its incoming leg on chain 1 -- the 2-party t4-miss pattern.
  const ConstantPricePath path(1.0);
  MultihopSetup setup = make_cycle(4);
  agents::DefectorStrategy skip(agents::Stage::kT4Claim);
  setup.parties[2].strategy = &skip;
  const MultihopResult r = run_multihop_swap(setup, path);
  EXPECT_EQ(r.outcome, MultihopOutcome::kPartialClaims);
  EXPECT_TRUE(r.conservation_ok);
  // The wave stops at party 2: claims on chains 3 and 2 happened (by P0 and
  // P3); chains 1 and 0 expired.
  EXPECT_EQ(r.legs_claimed, 2);
  // P2 paid (chain-2 lock claimed by P3) but received nothing.
  EXPECT_DOUBLE_EQ(r.paid[2], 2.0);
  EXPECT_DOUBLE_EQ(r.received[2], 0.0);
  // P1 did NOT pay (its chain-1 lock expired) and received nothing.
  EXPECT_DOUBLE_EQ(r.paid[1], 0.0);
  EXPECT_DOUBLE_EQ(r.received[1], 0.0);
  // P0 and P3 completed their swaps.
  EXPECT_GT(r.received[0], 0.0);
  EXPECT_GT(r.received[3], 0.0);
}

TEST(Multihop, ExpiryStaircaseDecreasesAlongDeploymentOrder) {
  // Verifiable through the audit log: expiries are printed per lock.  Here
  // we assert the structural property through outcome timing instead: the
  // completion time for n parties is n*tau + (n-1)*eps + tau.
  const ConstantPricePath path(1.0);
  MultihopSetup setup = make_cycle(5);
  const MultihopResult r = run_multihop_swap(setup, path);
  ASSERT_EQ(r.outcome, MultihopOutcome::kAllCommitted);
  const double expected =
      5.0 * setup.tau + 4.0 * setup.eps + setup.tau;  // last claim confirm
  EXPECT_DOUBLE_EQ(r.completion_time, expected);
}

TEST(Multihop, AuditTrailNamesEveryStep) {
  const ConstantPricePath path(1.0);
  const MultihopResult r = run_multihop_swap(make_cycle(3), path);
  // 3 locks + 3 claims logged.
  int locks = 0, claims = 0;
  for (const std::string& line : r.audit) {
    if (line.find("locked") != std::string::npos) ++locks;
    if (line.find("claimed") != std::string::npos) ++claims;
  }
  EXPECT_EQ(locks, 3);
  EXPECT_EQ(claims, 3);
}

}  // namespace
}  // namespace swapgame::proto
