// Tests for the t0 rate negotiation (src/model/negotiation).
#include "model/negotiation.hpp"

#include <gtest/gtest.h>

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(Negotiation, RuleNames) {
  EXPECT_STREQ(to_string(BargainingRule::kNashBargaining), "nash-bargaining");
  EXPECT_STREQ(to_string(BargainingRule::kMaxSuccessRate), "max-success-rate");
  EXPECT_STREQ(to_string(BargainingRule::kMidpoint), "midpoint");
}

TEST(Negotiation, AgreesAtDefaultsUnderEveryRule) {
  for (BargainingRule rule :
       {BargainingRule::kNashBargaining, BargainingRule::kMaxSuccessRate,
        BargainingRule::kMidpoint}) {
    const NegotiationResult r = negotiate_rate(defaults(), rule);
    EXPECT_TRUE(r.agreed) << to_string(rule);
    EXPECT_GT(r.p_star, 1.0) << to_string(rule);
    EXPECT_LT(r.p_star, 3.0) << to_string(rule);
    EXPECT_GT(r.alice_surplus, 0.0) << to_string(rule);
    EXPECT_GT(r.bob_surplus, 0.0) << to_string(rule);
    EXPECT_GT(r.success_rate, 0.5) << to_string(rule);
  }
}

TEST(Negotiation, ChosenRateLiesInMutualSet) {
  const NegotiationResult r =
      negotiate_rate(defaults(), BargainingRule::kNashBargaining);
  ASSERT_TRUE(r.agreed);
  EXPECT_TRUE(r.mutual.contains(r.p_star));
  EXPECT_TRUE(r.alice_acceptable.contains(r.p_star));
  EXPECT_TRUE(r.bob_acceptable.contains(r.p_star));
}

TEST(Negotiation, MutualSetIsIntersection) {
  const NegotiationResult r =
      negotiate_rate(defaults(), BargainingRule::kMidpoint);
  EXPECT_TRUE(
      r.mutual.equals(r.alice_acceptable.intersect(r.bob_acceptable), 1e-12));
}

TEST(Negotiation, NashBeatsOthersOnNashProduct) {
  const NegotiationResult nash =
      negotiate_rate(defaults(), BargainingRule::kNashBargaining);
  const NegotiationResult mid =
      negotiate_rate(defaults(), BargainingRule::kMidpoint);
  const NegotiationResult sr =
      negotiate_rate(defaults(), BargainingRule::kMaxSuccessRate);
  const double nash_product = nash.alice_surplus * nash.bob_surplus;
  EXPECT_GE(nash_product, mid.alice_surplus * mid.bob_surplus - 1e-9);
  EXPECT_GE(nash_product, sr.alice_surplus * sr.bob_surplus - 1e-9);
}

TEST(Negotiation, MaxSrRuleBeatsOthersOnSuccessRate) {
  const NegotiationResult sr =
      negotiate_rate(defaults(), BargainingRule::kMaxSuccessRate);
  const NegotiationResult nash =
      negotiate_rate(defaults(), BargainingRule::kNashBargaining);
  EXPECT_GE(sr.success_rate, nash.success_rate - 1e-9);
}

TEST(Negotiation, ImpatientAgentsCannotAgree) {
  SwapParams p = defaults();
  p.alice.r = 0.05;
  p.bob.r = 0.05;
  const NegotiationResult r =
      negotiate_rate(p, BargainingRule::kNashBargaining);
  EXPECT_FALSE(r.agreed);
  EXPECT_TRUE(r.mutual.empty());
}

TEST(Negotiation, AsymmetricPremiumsTiltTheRate) {
  // A more eager Alice (higher alpha) concedes a lower rate under Nash
  // bargaining than a more eager Bob setup concedes a higher one.
  SwapParams eager_alice = defaults();
  eager_alice.alice.alpha = 0.5;
  eager_alice.bob.alpha = 0.2;
  SwapParams eager_bob = defaults();
  eager_bob.alice.alpha = 0.2;
  eager_bob.bob.alpha = 0.5;
  const NegotiationResult ra =
      negotiate_rate(eager_alice, BargainingRule::kNashBargaining);
  const NegotiationResult rb =
      negotiate_rate(eager_bob, BargainingRule::kNashBargaining);
  ASSERT_TRUE(ra.agreed);
  ASSERT_TRUE(rb.agreed);
  // Alice pays P*; when she is the eager side the agreed rate is higher
  // (she accepts worse terms), and vice versa.
  EXPECT_GT(ra.p_star, rb.p_star);
}

TEST(Negotiation, ValidatesGrid) {
  EXPECT_THROW(
      (void)negotiate_rate(defaults(), BargainingRule::kMidpoint, 0.05, 10.0,
                           400, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::model
