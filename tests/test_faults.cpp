// Tests for the fault-injection layer (src/chain/faults) and its protocol
// integration: drops, censorship, halts, extra delays, party outages,
// re-broadcast recovery, and the bit-identity guarantees (zero-fault runs
// unchanged; faulted Monte Carlo identical across thread counts).
#include "chain/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include "agents/naive.hpp"
#include "chain/ledger.hpp"
#include "crypto/secret.hpp"
#include "sim/mc_runner.hpp"

namespace swapgame {
namespace {

constexpr double kTau = 3.0;
constexpr double kEps = 1.0;

chain::ChainParams fault_test_params() {
  return {chain::ChainId::kChainA, kTau, kEps};
}

// --- FaultWindow / FaultModel validation. ----------------------------------

TEST(FaultWindow, ValidationRejectsDegenerateWindows) {
  EXPECT_NO_THROW((chain::FaultWindow{0.0, 5.0}.validate()));
  EXPECT_NO_THROW((chain::FaultWindow{2.0, 2.0}.validate()));  // empty is fine
  EXPECT_THROW((chain::FaultWindow{-1.0, 5.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((chain::FaultWindow{5.0, 2.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW(
      (chain::FaultWindow{0.0, std::numeric_limits<double>::infinity()}
           .validate()),
      std::invalid_argument);
  EXPECT_THROW(
      (chain::FaultWindow{std::numeric_limits<double>::quiet_NaN(), 1.0}
           .validate()),
      std::invalid_argument);
}

TEST(FaultWindow, ContainsIsHalfOpen) {
  const chain::FaultWindow w{1.0, 4.0};
  EXPECT_FALSE(w.contains(0.999));
  EXPECT_TRUE(w.contains(1.0));
  EXPECT_TRUE(w.contains(3.999));
  EXPECT_FALSE(w.contains(4.0));
}

TEST(FaultWindow, FirstTimeOutsideChainsOverlappingWindows) {
  // [0,5) and [4,8) overlap: escaping the first lands inside the second, so
  // the earliest free time from t=1 is 8, not 5.
  const std::vector<chain::FaultWindow> windows = {{0.0, 5.0}, {4.0, 8.0}};
  EXPECT_DOUBLE_EQ(chain::first_time_outside(windows, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(chain::first_time_outside(windows, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(chain::first_time_outside(windows, 9.0), 9.0);
  EXPECT_DOUBLE_EQ(chain::first_time_outside({}, 3.0), 3.0);
}

TEST(FaultModel, ValidationRejectsBadKnobs) {
  chain::FaultModel m;
  EXPECT_NO_THROW(m.validate());
  m.drop_prob = 1.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.drop_prob = -0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.drop_prob = 0.0;
  m.extra_delay_prob = 2.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.extra_delay_prob = 0.5;
  m.extra_delay_max = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.extra_delay_max = 2.0;
  EXPECT_NO_THROW(m.validate());
  m.censorship.push_back({5.0, 2.0});
  EXPECT_THROW(m.validate(), std::invalid_argument);
  // The injector constructor validates too.
  EXPECT_THROW(chain::FaultInjector(m, 1), std::invalid_argument);
}

TEST(FaultModel, AnyReflectsActiveKnobs) {
  chain::FaultModel m;
  EXPECT_FALSE(m.any());
  m.drop_prob = 0.1;
  EXPECT_TRUE(m.any());
  m = {};
  // A delay probability without a max delay (or vice versa) is inert.
  m.extra_delay_prob = 0.5;
  EXPECT_FALSE(m.any());
  m.extra_delay_max = 2.0;
  EXPECT_TRUE(m.any());
  m = {};
  m.censorship.push_back({0.0, 1.0});
  EXPECT_TRUE(m.any());
  m = {};
  m.halts.push_back({0.0, 1.0});
  EXPECT_TRUE(m.any());
}

// --- Ledger-level fault semantics. -----------------------------------------

TEST(FaultInjection, DroppedTransactionNeverConfirms) {
  chain::EventQueue queue;
  chain::Ledger ledger(fault_test_params(), queue);
  ledger.create_account(chain::Address{"alice"}, chain::Amount::from_tokens(10.0));
  ledger.create_account(chain::Address{"bob"}, chain::Amount::from_tokens(5.0));
  chain::FaultModel model;
  model.drop_prob = 1.0;
  chain::FaultInjector injector(model, 7);
  ledger.set_fault_injector(&injector);

  const chain::TxId id = ledger.submit(chain::TransferPayload{
      chain::Address{"alice"}, chain::Address{"bob"},
      chain::Amount::from_tokens(2.0)});
  // The loss is synchronous: the tx is marked dropped at submission and no
  // confirmation event is ever scheduled.
  EXPECT_EQ(ledger.transaction(id).status, chain::TxStatus::kDropped);
  EXPECT_TRUE(std::isinf(ledger.transaction(id).visible_at));
  EXPECT_TRUE(std::isinf(ledger.transaction(id).confirmed_at));
  queue.run();
  EXPECT_EQ(ledger.transaction(id).status, chain::TxStatus::kDropped);
  EXPECT_EQ(ledger.balance(chain::Address{"alice"}),
            chain::Amount::from_tokens(10.0));
  EXPECT_EQ(ledger.balance(chain::Address{"bob"}),
            chain::Amount::from_tokens(5.0));
  EXPECT_EQ(injector.dropped(), 1u);
  EXPECT_TRUE(ledger.confirmation_log().empty());
}

TEST(FaultInjection, DroppedClaimLeaksNoSecret) {
  // A claim that never reaches the mempool must not reveal the preimage --
  // the visibility leak of Section II-B Step 3 requires actual propagation.
  chain::EventQueue queue;
  chain::Ledger ledger(fault_test_params(), queue);
  const chain::Address alice{"alice"}, bob{"bob"};
  ledger.create_account(alice, chain::Amount::from_tokens(10.0));
  ledger.create_account(bob, chain::Amount::from_tokens(5.0));
  math::Xoshiro256 rng(1);
  const crypto::Secret secret = crypto::Secret::generate(rng);
  const chain::TxId deploy = ledger.submit(chain::DeployHtlcPayload{
      alice, bob, chain::Amount::from_tokens(2.0), secret.commitment(), 20.0});
  const chain::HtlcId contract = ledger.pending_contract_of(deploy);
  queue.run_until(kTau);
  ASSERT_TRUE(ledger.has_htlc(contract));

  // Faults switch on only after the deploy landed: every claim (and every
  // auto-refund retry) from here on is swallowed.
  chain::FaultModel model;
  model.drop_prob = 1.0;
  chain::FaultInjector injector(model, 7);
  ledger.set_fault_injector(&injector);
  ledger.submit(chain::ClaimHtlcPayload{contract, secret, bob});
  const chain::Amount supply = ledger.total_supply();
  queue.run();
  EXPECT_TRUE(ledger.visible_secrets().empty());
  // The claim was lost and the auto-refund retries all dropped too (capped,
  // so the run terminates): the contract stays locked, supply conserved.
  EXPECT_EQ(ledger.htlc(contract).state, chain::HtlcState::kLocked);
  EXPECT_EQ(ledger.total_supply(), supply);
  EXPECT_GE(injector.dropped(), 2u);
}

TEST(FaultInjection, CensorshipDefersMempoolEntry) {
  chain::EventQueue queue;
  chain::Ledger ledger(fault_test_params(), queue);
  const chain::Address alice{"alice"}, bob{"bob"};
  ledger.create_account(alice, chain::Amount::from_tokens(10.0));
  ledger.create_account(bob, chain::Amount::from_tokens(5.0));
  chain::FaultModel model;
  model.censorship.push_back({0.0, 5.0});
  chain::FaultInjector injector(model, 7);
  ledger.set_fault_injector(&injector);

  queue.run_until(1.0);
  const chain::TxId id = ledger.submit(chain::TransferPayload{
      alice, bob, chain::Amount::from_tokens(2.0)});
  // Mempool entry slips to the window end (t=5): visible 5+eps, confirmed
  // 5+tau, as if broadcast at the window's end.
  EXPECT_DOUBLE_EQ(ledger.transaction(id).visible_at, 5.0 + kEps);
  EXPECT_DOUBLE_EQ(ledger.transaction(id).confirmed_at, 5.0 + kTau);
  queue.run_until(5.0 + kTau - 0.001);
  EXPECT_EQ(ledger.balance(bob), chain::Amount::from_tokens(5.0));
  queue.run();
  EXPECT_EQ(ledger.transaction(id).status, chain::TxStatus::kConfirmed);
  EXPECT_EQ(ledger.balance(bob), chain::Amount::from_tokens(7.0));
  EXPECT_EQ(injector.censored(), 1u);
}

TEST(FaultInjection, HaltSlipsConfirmationToWindowEnd) {
  chain::EventQueue queue;
  chain::Ledger ledger(fault_test_params(), queue);
  const chain::Address alice{"alice"}, bob{"bob"};
  ledger.create_account(alice, chain::Amount::from_tokens(10.0));
  ledger.create_account(bob, chain::Amount::from_tokens(5.0));
  chain::FaultModel model;
  model.halts.push_back({2.0, 6.0});
  model.halts.push_back({5.5, 9.0});  // overlapping outage
  chain::FaultInjector injector(model, 7);
  ledger.set_fault_injector(&injector);

  // Nominal confirmation at tau=3 falls inside the first halt, whose end is
  // inside the second: the confirmation chains out to t=9.
  const chain::TxId id = ledger.submit(chain::TransferPayload{
      alice, bob, chain::Amount::from_tokens(2.0)});
  EXPECT_DOUBLE_EQ(ledger.transaction(id).confirmed_at, 9.0);
  // Visibility is a mempool property, unaffected by confirmation halts.
  EXPECT_DOUBLE_EQ(ledger.transaction(id).visible_at, kEps);
  queue.run();
  EXPECT_EQ(ledger.balance(bob), chain::Amount::from_tokens(7.0));

  // A confirmation landing after every halt is untouched.
  queue.run_until(10.0);
  const chain::TxId late = ledger.submit(chain::TransferPayload{
      alice, bob, chain::Amount::from_tokens(1.0)});
  EXPECT_DOUBLE_EQ(ledger.transaction(late).confirmed_at, 13.0);
}

TEST(FaultInjection, ExtraDelayStaysWithinBounds) {
  std::set<double> confirm_times;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    chain::EventQueue queue;
    chain::Ledger ledger(fault_test_params(), queue);
    const chain::Address alice{"alice"}, bob{"bob"};
    ledger.create_account(alice, chain::Amount::from_tokens(10.0));
    ledger.create_account(bob, chain::Amount::from_tokens(5.0));
    chain::FaultModel model;
    model.extra_delay_prob = 1.0;
    model.extra_delay_max = 2.0;
    chain::FaultInjector injector(model, seed);
    ledger.set_fault_injector(&injector);
    const chain::TxId id = ledger.submit(chain::TransferPayload{
        alice, bob, chain::Amount::from_tokens(2.0)});
    const double at = ledger.transaction(id).confirmed_at;
    EXPECT_GE(at, kTau);
    EXPECT_LE(at, kTau + model.extra_delay_max);
    EXPECT_EQ(injector.delayed(), 1u);
    confirm_times.insert(at);
  }
  // The delay draw actually varies with the seed.
  EXPECT_GT(confirm_times.size(), 1u);
}

TEST(FaultInjection, SameSeedReproducesSameFates) {
  chain::FaultModel model;
  model.drop_prob = 0.4;
  model.extra_delay_prob = 0.5;
  model.extra_delay_max = 3.0;
  chain::FaultInjector a(model, 12345);
  chain::FaultInjector b(model, 12345);
  for (int i = 0; i < 64; ++i) {
    const auto fa = a.on_submit(static_cast<double>(i));
    const auto fb = b.on_submit(static_cast<double>(i));
    EXPECT_EQ(fa.dropped, fb.dropped);
    EXPECT_DOUBLE_EQ(fa.mempool_entry, fb.mempool_entry);
    EXPECT_DOUBLE_EQ(fa.extra_delay, fb.extra_delay);
  }
}

// --- Protocol-level fault behaviour. ---------------------------------------

proto::SwapSetup faulted_setup(double drop_prob, double margin) {
  proto::SwapSetup setup;
  setup.params = model::SwapParams::table3_defaults();
  setup.p_star = 2.0;
  setup.expiry_margin = margin;
  setup.faults.chain_a.drop_prob = drop_prob;
  setup.faults.chain_b.drop_prob = drop_prob;
  return setup;
}

TEST(FaultedSwap, CertainDropAbortsTheSwapSafely) {
  // Every broadcast is lost: Alice's deploy never takes effect, and the run
  // is classified as a fault abort with all funds exactly where they began.
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r =
      proto::run_swap(faulted_setup(1.0, 0.0), alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kFaultAborted);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(r.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(r.alice.final_token_b, 0.0);
  EXPECT_DOUBLE_EQ(r.bob.final_token_b, 1.0);
  EXPECT_GE(r.dropped_txs, 1);
  EXPECT_GT(r.rebroadcasts, 0);  // the sender did try again
  EXPECT_TRUE(r.conservation_ok);
  EXPECT_TRUE(r.invariants_ok);
}

TEST(FaultedSwap, RebroadcastRecoversFromOccasionalDrops) {
  // Statistical property over many fault seeds: with a healthy expiry
  // margin, a 25% drop rate is mostly survivable because senders detect the
  // loss and re-broadcast; and no fault pattern ever breaks conservation or
  // the audited invariants.
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  proto::SwapSetup setup = faulted_setup(0.25, 8.0);
  int successes = 0;
  int recovered = 0;  // successes that needed at least one re-broadcast
  int dropped_total = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    setup.faults.seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const proto::SwapResult r = proto::run_swap(setup, alice, bob, path);
    ASSERT_TRUE(r.conservation_ok) << "fault seed " << seed;
    ASSERT_TRUE(r.invariants_ok) << "fault seed " << seed;
    dropped_total += r.dropped_txs;
    if (r.success) {
      ++successes;
      if (r.rebroadcasts > 0) ++recovered;
    }
  }
  EXPECT_GT(dropped_total, 0);
  EXPECT_GT(successes, 20);  // well above half survive a 25% drop rate
  EXPECT_GT(recovered, 0);   // and some only because of re-broadcasting
}

TEST(FaultedSwap, BobOfflineWindowDefersOrLosesHisClaim) {
  // Bob is offline across t4 = 8h.  Without expiry slack his deferred claim
  // confirms past t_a and the refund wins: Alice keeps both assets (the
  // Section II-B crash-failure warning).  With a margin covering the outage
  // the same run completes.
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  proto::SwapSetup setup = faulted_setup(0.0, 0.0);
  setup.faults.bob_offline.push_back({7.5, 9.0});

  const proto::SwapResult tight = proto::run_swap(setup, alice, bob, path);
  EXPECT_EQ(tight.outcome, proto::SwapOutcome::kBobLostAtomicity);
  EXPECT_DOUBLE_EQ(tight.alice.final_token_a, 2.0);
  EXPECT_DOUBLE_EQ(tight.alice.final_token_b, 1.0);
  EXPECT_DOUBLE_EQ(tight.bob.final_token_a, 0.0);
  EXPECT_TRUE(tight.conservation_ok);
  EXPECT_TRUE(tight.invariants_ok);

  setup.expiry_margin = 2.0;
  const proto::SwapResult slack = proto::run_swap(setup, alice, bob, path);
  EXPECT_EQ(slack.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_DOUBLE_EQ(slack.bob.final_token_a, 2.0);
  EXPECT_TRUE(slack.conservation_ok);
  EXPECT_TRUE(slack.invariants_ok);
}

TEST(FaultedSwap, ZeroIntensityFaultsAreBitIdenticalToPlainRuns) {
  // The fault plumbing only attaches when a knob is active, so a setup with
  // a fault seed but no intensities (and auditing toggled either way) must
  // reproduce the plain run exactly, jitter included.
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  proto::SwapSetup plain;
  plain.params = model::SwapParams::table3_defaults();
  plain.p_star = 2.0;
  plain.confirmation_jitter_a = 1.0;
  plain.confirmation_jitter_b = 1.0;
  plain.expiry_margin = 4.0;
  proto::SwapSetup inert = plain;
  inert.faults.seed = 0xDEADBEEF;  // unused: no knob is active
  inert.audit = false;

  const proto::SwapResult a = proto::run_swap(plain, alice, bob, path);
  const proto::SwapResult b = proto::run_swap(inert, alice, bob, path);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.alice.final_token_a, b.alice.final_token_a);
  EXPECT_EQ(a.alice.final_token_b, b.alice.final_token_b);
  EXPECT_EQ(a.bob.final_token_a, b.bob.final_token_a);
  EXPECT_EQ(a.bob.final_token_b, b.bob.final_token_b);
  EXPECT_EQ(a.alice.realized_utility, b.alice.realized_utility);
  EXPECT_EQ(a.bob.realized_utility, b.bob.realized_utility);
  EXPECT_EQ(a.dropped_txs, 0);
  EXPECT_EQ(b.dropped_txs, 0);
}

TEST(FaultedMonteCarlo, BitIdenticalAcrossThreadCounts) {
  // PR 1's fixed-chunk guarantee must survive fault injection: the per-
  // sample fault streams are keyed by the sample index, never by worker
  // identity, so threads=1 and threads=4 merge to the same estimate bit for
  // bit.
  sim::McRunSpec spec;
  spec.evaluator = sim::McEvaluator::kProtocol;
  spec.params = model::SwapParams::table3_defaults();
  spec.p_star = 2.0;
  spec.strategy = sim::McStrategy::kHonest;
  spec.expiry_margin = 6.0;
  spec.faults.chain_a.drop_prob = 0.2;
  spec.faults.chain_b.drop_prob = 0.1;
  spec.faults.chain_b.extra_delay_prob = 0.5;
  spec.faults.chain_b.extra_delay_max = 3.0;

  spec.config = sim::McConfig{384, 42, 1};
  const sim::McEstimate a = sim::McRunner::run(spec).estimate;
  spec.config = sim::McConfig{384, 42, 4};
  const sim::McEstimate b = sim::McRunner::run(spec).estimate;

  EXPECT_EQ(a.success.successes(), b.success.successes());
  EXPECT_EQ(a.success.trials(), b.success.trials());
  EXPECT_EQ(a.initiated.successes(), b.initiated.successes());
  EXPECT_EQ(a.alice_utility.mean(), b.alice_utility.mean());
  EXPECT_EQ(a.bob_utility.mean(), b.bob_utility.mean());
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.dropped_txs, b.dropped_txs);
  EXPECT_EQ(a.rebroadcasts, b.rebroadcasts);
  // Faults must degrade outcomes, never accounting.
  EXPECT_EQ(a.conservation_failures, 0u);
  EXPECT_EQ(a.invariant_failures, 0u);
  EXPECT_GT(a.dropped_txs, 0u);
}

}  // namespace
}  // namespace swapgame
