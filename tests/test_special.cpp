// Unit tests for the standard normal primitives (src/math/special).
#include "math/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::math {
namespace {

TEST(NormalPdf, PeakValueAtZero) {
  // 1/sqrt(2 pi)
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
}

TEST(NormalPdf, SymmetricInZ) {
  for (double z : {0.1, 0.5, 1.0, 2.5, 7.0}) {
    EXPECT_DOUBLE_EQ(normal_pdf(z), normal_pdf(-z));
  }
}

TEST(NormalPdf, KnownValueAtOne) {
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-14);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-14);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdf, ComplementIdentity) {
  for (double z : {-8.0, -2.0, -0.3, 0.0, 0.7, 3.0, 8.0}) {
    EXPECT_NEAR(normal_cdf(z) + normal_sf(z), 1.0, 1e-15) << "z=" << z;
  }
}

TEST(NormalSf, NoCancellationInFarTail) {
  // 1 - Phi(10) ~ 7.6e-24: the survival function must retain precision
  // where the naive 1 - cdf(z) would return exactly 0.
  const double sf = normal_sf(10.0);
  EXPECT_GT(sf, 7.0e-24);
  EXPECT_LT(sf, 8.0e-24);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-13) << "p=" << p;
  }
}

TEST(NormalQuantile, TailRoundTrips) {
  for (double p : {1e-12, 1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)) / p, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-15);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(normal_quantile(0.84134474606854293), 1.0, 1e-12);
}

TEST(NormalQuantile, BoundaryAndInvalidInputs) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(normal_quantile(-0.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(1.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(std::nan(""))));
}

TEST(NormalQuantile, AntisymmetricAroundHalf) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-12);
  }
}

}  // namespace
}  // namespace swapgame::math
