// Unit tests for the standard normal primitives (src/math/special) and
// the SIMD quantile kernel's accuracy/bitwise contracts (src/math/simd).
#include "math/special.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/simd.hpp"

namespace swapgame::math {
namespace {

TEST(NormalPdf, PeakValueAtZero) {
  // 1/sqrt(2 pi)
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
}

TEST(NormalPdf, SymmetricInZ) {
  for (double z : {0.1, 0.5, 1.0, 2.5, 7.0}) {
    EXPECT_DOUBLE_EQ(normal_pdf(z), normal_pdf(-z));
  }
}

TEST(NormalPdf, KnownValueAtOne) {
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-14);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-14);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdf, ComplementIdentity) {
  for (double z : {-8.0, -2.0, -0.3, 0.0, 0.7, 3.0, 8.0}) {
    EXPECT_NEAR(normal_cdf(z) + normal_sf(z), 1.0, 1e-15) << "z=" << z;
  }
}

TEST(NormalSf, NoCancellationInFarTail) {
  // 1 - Phi(10) ~ 7.6e-24: the survival function must retain precision
  // where the naive 1 - cdf(z) would return exactly 0.
  const double sf = normal_sf(10.0);
  EXPECT_GT(sf, 7.0e-24);
  EXPECT_LT(sf, 8.0e-24);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-13) << "p=" << p;
  }
}

TEST(NormalQuantile, TailRoundTrips) {
  for (double p : {1e-12, 1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)) / p, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-15);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(normal_quantile(0.84134474606854293), 1.0, 1e-12);
}

TEST(NormalQuantile, BoundaryAndInvalidInputs) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(normal_quantile(-0.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(1.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(std::nan(""))));
}

TEST(NormalQuantile, AntisymmetricAroundHalf) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-12);
  }
}

TEST(NormalQuantile, StrictlyMonotoneOverAFineGrid) {
  // Monotonicity is what common random numbers and antithetic pairing
  // lean on; sweep a fine grid crossing both Acklam branch boundaries.
  double prev = -std::numeric_limits<double>::infinity();
  for (int i = 1; i < 200000; ++i) {
    const double p = static_cast<double>(i) / 200000.0;
    const double z = normal_quantile(p);
    ASSERT_GT(z, prev) << "p=" << p;
    prev = z;
  }
}

TEST(NormalQuantile, TailAccuracyAgainstHighPrecisionReferences) {
  // Reference values computed with mpmath (50 digits); the refined Acklam
  // kernel must be well inside |rel err| < 1e-9 even at p = 1e-15.
  const struct {
    double p;
    double z;
  } refs[] = {
      {1e-15, -7.941345326170996781},
      {1e-12, -7.0344838253011319298},
      {1e-9, -5.9978070150076868716},
      {1e-6, -4.7534243088228989482},
      {0.02425, -1.9729610513118848503},  // Acklam p_low boundary
      {0.25, -0.6744897501960817432},
      {0.975, 1.9599639845400542355},
      // Upper-tail references are for the EXACT double inputs (1.0 - 1e-k
      // is not representable with complement exactly 1e-k; near 1 the
      // half-ulp is ~1.1e-16, a large RELATIVE perturbation of a 1e-12
      // complement, and the reference must absorb it, not the kernel).
      {1.0 - 1e-6, 4.7534243088170877657},
      {1.0 - 1e-9, 5.9978070196016374264},
      {1.0 - 1e-12, 7.0344869100478352057},
  };
  for (const auto& r : refs) {
    EXPECT_LT(std::abs(normal_quantile(r.p) / r.z - 1.0), 1e-9)
        << "p=" << r.p;
  }
}

TEST(NormalQuantile, EdgeInputsIdenticalAcrossDispatchLevels) {
  // Denormal-adjacent inputs, the Acklam p_low/p_high branch boundaries,
  // and exact 0.5 must produce the same bits at every dispatch level (the
  // branches are computed on full vectors and blended by mask, so a lane
  // sitting exactly on a boundary is the sharpest test).
  const std::vector<double> edges = {
      5e-324,           // min denormal: the Halley step must not 0/0
      1e-310,           // denormal-adjacent
      0x1.0p-1022,      // smallest normal
      0.02425,          // p_low boundary
      0.024249999999999997,
      0.02425000000000001,
      0.5,
      1.0 - 0.02425,    // p_high boundary
      0.97575000000000001,
      1.0 - 1e-15,
      0x1.fffffffffffffp-1,  // largest double < 1
      0.0, 1.0,              // +/- infinity outputs
  };
  const simd::KernelTable* scalar = simd::kernels(simd::SimdLevel::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::vector<double> ref = edges;
  scalar->normal_quantile_transform(ref.data(), ref.size());
  // The scalar kernel IS normal_quantile (same graph at W=1).
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double direct = normal_quantile(edges[i]);
    EXPECT_TRUE(ref[i] == direct || (std::isnan(ref[i]) && std::isnan(direct)))
        << "p=" << edges[i];
  }
  for (const simd::SimdLevel level :
       {simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
    const simd::KernelTable* kt = simd::kernels(level);
    if (kt == nullptr) continue;  // not supported on this host
    std::vector<double> got = edges;
    kt->normal_quantile_transform(got.data(), got.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      EXPECT_TRUE(got[i] == ref[i] ||
                  (std::isnan(got[i]) && std::isnan(ref[i])))
          << to_string(level) << " p=" << edges[i];
    }
  }
}

TEST(NormalQuantile, HalfIsExactlyZero) {
  // The +0.5-shifted central polynomial evaluates to a clean 0 at the
  // midpoint (q = 0 annihilates the numerator), not merely a tiny value.
  EXPECT_EQ(normal_quantile(0.5), 0.0);
}

}  // namespace
}  // namespace swapgame::math
