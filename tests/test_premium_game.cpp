// Tests for the Han et al. premium-mechanism baseline (src/model/premium_game).
#include "model/premium_game.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/collateral_game.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(PremiumGame, ConstructorValidates) {
  EXPECT_THROW(PremiumGame(defaults(), 2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(PremiumGame(defaults(), 0.0, 0.5), std::invalid_argument);
  EXPECT_NO_THROW(PremiumGame(defaults(), 2.0, 0.0));
}

TEST(PremiumGame, ZeroPremiumReducesToBasicGame) {
  const PremiumGame pg(defaults(), 2.0, 0.0);
  const BasicGame& bg = pg.basic();
  EXPECT_NEAR(pg.alice_t3_cutoff(), bg.alice_t3_cutoff(), 1e-12);
  EXPECT_NEAR(pg.success_rate(), bg.success_rate(), 1e-9);
  for (double p : {0.5, 1.5, 2.0, 3.0}) {
    EXPECT_NEAR(pg.alice_t3_cont(p), bg.alice_t3_cont(p), 1e-12);
    EXPECT_NEAR(pg.bob_t3_stop(p), bg.bob_t3_stop(p), 1e-12);
    EXPECT_NEAR(pg.bob_t2_cont(p), bg.bob_t2_cont(p), 1e-9);
  }
  EXPECT_NEAR(pg.alice_t1_cont(), bg.alice_t1_cont(), 1e-6);
}

TEST(PremiumGame, CutoffDecreasesWithPremium) {
  double prev = PremiumGame(defaults(), 2.0, 0.0).alice_t3_cutoff();
  for (double pr : {0.2, 0.5, 1.0}) {
    const double cut = PremiumGame(defaults(), 2.0, pr).alice_t3_cutoff();
    EXPECT_LT(cut, prev) << "pr=" << pr;
    prev = cut;
  }
}

TEST(PremiumGame, CutoffClampsToZeroForHugePremium) {
  const PremiumGame game(defaults(), 2.0, 3.0);
  EXPECT_EQ(game.alice_t3_cutoff(), 0.0);
}

TEST(PremiumGame, T3IndifferenceAtCutoff) {
  const PremiumGame game(defaults(), 2.0, 0.4);
  const double cut = game.alice_t3_cutoff();
  ASSERT_GT(cut, 0.0);
  EXPECT_NEAR(game.alice_t3_cont(cut), game.alice_t3_stop(), 1e-10);
}

TEST(PremiumGame, SuccessRateIncreasesWithPremium) {
  double prev = -1.0;
  for (double pr : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    const double sr = PremiumGame(defaults(), 2.0, pr).success_rate();
    EXPECT_GE(sr, prev - 1e-9) << "pr=" << pr;
    prev = sr;
  }
}

TEST(PremiumGame, PremiumOnlyDisciplinesAliceNotBob) {
  // The central comparative result: the premium caps out strictly below
  // collateral's ceiling because it leaves Bob's high-price t2 defection
  // intact (Bob's region stays bounded above near the basic band edge).
  const double pr = 1.0;
  const PremiumGame premium(defaults(), 2.0, pr);
  const CollateralGame collateral(defaults(), 2.0, pr);
  EXPECT_LT(premium.success_rate(), collateral.success_rate());
  // Bob's region upper edge barely moves under the premium...
  const auto premium_hi = premium.bob_t2_region().intervals().back().hi;
  const auto basic_hi = premium.basic().bob_t2_band()->hi;
  EXPECT_LT(premium_hi, basic_hi * 1.05);
  // ...but moves a lot under collateral.
  const auto coll_hi = collateral.bob_t2_region().intervals().back().hi;
  EXPECT_GT(coll_hi, basic_hi * 1.2);
}

TEST(PremiumGame, BobHarvestsPremiumAtLowPrices) {
  // With a premium at stake, Bob locks even at near-zero prices, betting
  // that Alice will abort and forfeit the premium to him.
  const PremiumGame game(defaults(), 2.0, 0.5);
  EXPECT_EQ(game.bob_decision_t2(1e-6), Action::kCont);
  EXPECT_TRUE(game.bob_t2_region().contains(1e-6));
  // Without the premium he walks away at such prices.
  EXPECT_EQ(game.basic().bob_decision_t2(1e-6), Action::kStop);
}

TEST(PremiumGame, RegionBoundariesAreIndifferencePoints) {
  const PremiumGame game(defaults(), 2.0, 0.3);
  for (const math::Interval& piece : game.bob_t2_region().intervals()) {
    if (piece.lo > 0.0) {
      EXPECT_NEAR(game.bob_t2_cont(piece.lo), game.bob_t2_stop(piece.lo), 1e-6);
    }
    if (std::isfinite(piece.hi)) {
      EXPECT_NEAR(game.bob_t2_cont(piece.hi), game.bob_t2_stop(piece.hi), 1e-6);
    }
  }
}

TEST(PremiumGame, AliceT1AccountsForPremiumAtStake) {
  const PremiumGame game(defaults(), 2.2, 0.7);
  EXPECT_DOUBLE_EQ(game.alice_t1_stop(), 2.2 + 0.7);
  EXPECT_DOUBLE_EQ(game.bob_t1_stop(), 2.0);  // Bob posts nothing
}

TEST(PremiumGame, AliceStillInitiatesAtDefaultRate) {
  for (double pr : {0.0, 0.3, 0.8}) {
    const PremiumGame game(defaults(), 2.0, pr);
    EXPECT_EQ(game.alice_decision_t1(), Action::kCont) << "pr=" << pr;
  }
}

TEST(PremiumGame, ViableRatesNonEmptyAndContainDefault) {
  const math::IntervalSet rates = premium_viable_rates(defaults(), 0.3);
  EXPECT_FALSE(rates.empty());
  EXPECT_TRUE(rates.contains(2.0));
}

TEST(PremiumGame, SuccessRateRegressionAtDefaults) {
  EXPECT_NEAR(PremiumGame(defaults(), 2.0, 0.3).success_rate(), 0.8202, 2e-3);
  EXPECT_NEAR(PremiumGame(defaults(), 2.0, 1.0).success_rate(), 0.8653, 2e-3);
}

}  // namespace
}  // namespace swapgame::model
