// Cross-validation tests: the discretized extensive-form solver
// (src/model/game_tree) must independently reproduce the analytic backward
// induction of BasicGame / CollateralGame.
#include "model/game_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/gbm.hpp"
#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(GameTree, ValidatesInputs) {
  EXPECT_THROW((void)solve_game_tree(defaults(), 0.0), std::invalid_argument);
  GameTreeConfig bad;
  bad.strata = 1;
  EXPECT_THROW((void)solve_game_tree(defaults(), 2.0, bad),
               std::invalid_argument);
  bad.strata = 100;
  bad.collateral = -1.0;
  EXPECT_THROW((void)solve_game_tree(defaults(), 2.0, bad),
               std::invalid_argument);
}

TEST(GameTree, MatchesAnalyticBasicGameAtDefaults) {
  const BasicGame analytic(defaults(), 2.0);
  GameTreeConfig cfg;
  cfg.strata = 600;
  const GameTreeSolution tree = solve_game_tree(defaults(), 2.0, cfg);
  EXPECT_NEAR(tree.alice_t1_cont, analytic.alice_t1_cont(), 2e-3);
  EXPECT_NEAR(tree.bob_t1_cont, analytic.bob_t1_cont(), 2e-3);
  EXPECT_NEAR(tree.success_rate, analytic.success_rate(), 3e-3);
  EXPECT_DOUBLE_EQ(tree.alice_t1_stop, 2.0);
  EXPECT_DOUBLE_EQ(tree.bob_t1_stop, 2.0);
}

TEST(GameTree, MatchesAnalyticAcrossExchangeRates) {
  GameTreeConfig cfg;
  cfg.strata = 500;
  for (double p_star : {1.6, 2.0, 2.4}) {
    const BasicGame analytic(defaults(), p_star);
    const GameTreeSolution tree = solve_game_tree(defaults(), p_star, cfg);
    EXPECT_NEAR(tree.success_rate, analytic.success_rate(), 5e-3)
        << "p_star=" << p_star;
    EXPECT_NEAR(tree.alice_t1_cont, analytic.alice_t1_cont(), 5e-3)
        << "p_star=" << p_star;
  }
}

TEST(GameTree, MatchesAnalyticCollateralGame) {
  GameTreeConfig cfg;
  cfg.strata = 600;
  for (double q : {0.2, 0.5, 1.0}) {
    cfg.collateral = q;
    const CollateralGame analytic(defaults(), 2.0, q);
    const GameTreeSolution tree = solve_game_tree(defaults(), 2.0, cfg);
    EXPECT_NEAR(tree.success_rate, analytic.success_rate(), 5e-3) << "q=" << q;
    EXPECT_DOUBLE_EQ(tree.alice_t1_stop, 2.0 + q);
  }
}

TEST(GameTree, ConvergesWithStrataRefinement) {
  // The *value* estimates converge monotonically with the stratification
  // (success_rate at a coarse grid can be luckily close, so the convergence
  // check uses the t1 value, whose stratification bias is one-sided).
  const BasicGame analytic(defaults(), 2.0);
  const auto value_err = [&](int strata) {
    GameTreeConfig cfg;
    cfg.strata = strata;
    const GameTreeSolution sol = solve_game_tree(defaults(), 2.0, cfg);
    return std::abs(sol.alice_t1_cont - analytic.alice_t1_cont()) +
           std::abs(sol.bob_t1_cont - analytic.bob_t1_cont());
  };
  const double coarse = value_err(25);
  const double fine = value_err(1000);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 2e-3);
  // And the SR estimate at the fine grid is accurate in absolute terms.
  GameTreeConfig cfg;
  cfg.strata = 1000;
  EXPECT_NEAR(solve_game_tree(defaults(), 2.0, cfg).success_rate,
              analytic.success_rate(), 2e-3);
}

TEST(GameTree, BobContFractionTracksBandProbability) {
  // The fraction of equal-probability t2 strata where Bob continues is an
  // estimate of P[P_t2 in band].
  const BasicGame analytic(defaults(), 2.0);
  const auto band = analytic.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  const math::GbmLaw law(defaults().gbm, defaults().p_t0, defaults().tau_a);
  const double band_prob = law.cdf(band->hi) - law.cdf(band->lo);
  GameTreeConfig cfg;
  cfg.strata = 800;
  const GameTreeSolution tree = solve_game_tree(defaults(), 2.0, cfg);
  EXPECT_NEAR(tree.bob_cont_fraction, band_prob, 5e-3);
}

TEST(GameTree, SuccessRateIncreasesWithCollateralInTree) {
  // The Fig. 9 monotonicity must also emerge from the independent solver.
  GameTreeConfig cfg;
  cfg.strata = 300;
  double prev = -1.0;
  for (double q : {0.0, 0.5, 1.0, 2.0}) {
    cfg.collateral = q;
    const double sr = solve_game_tree(defaults(), 2.0, cfg).success_rate;
    EXPECT_GE(sr, prev - 5e-3) << "q=" << q;
    prev = sr;
  }
}

}  // namespace
}  // namespace swapgame::model
