// Tests for the basic-game backward induction (src/model/basic_game):
// closed forms vs quadrature, threshold semantics, the paper's Eq. (29)
// calibration target and the Section III-F comparative statics.
#include "model/basic_game.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/gbm.hpp"
#include "math/quadrature.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(BasicGame, ConstructorValidates) {
  EXPECT_THROW(BasicGame(defaults(), 0.0), std::invalid_argument);
  EXPECT_THROW(BasicGame(defaults(), -2.0), std::invalid_argument);
  SwapParams bad = defaults();
  bad.alice.r = 0.0;
  EXPECT_THROW(BasicGame(bad, 2.0), std::invalid_argument);
}

TEST(BasicGame, T3CutoffMatchesEq18ClosedForm) {
  // Hand-evaluated Eq. (18) at Table III defaults, P* = 2:
  // exp((0.01-0.002)*4 - 0.01*(1+6)) * 2 / 1.3.
  const BasicGame game(defaults(), 2.0);
  const double expected = std::exp(0.008 * 4.0 - 0.01 * 7.0) * 2.0 / 1.3;
  EXPECT_NEAR(game.alice_t3_cutoff(), expected, 1e-12);
  EXPECT_NEAR(game.alice_t3_cutoff(), 1.4810971, 1e-6);
}

TEST(BasicGame, T3CutoffEquatesContAndStopUtilities) {
  // At the cutoff price Alice must be exactly indifferent (Eq. 18).
  for (double p_star : {1.5, 2.0, 2.5}) {
    const BasicGame game(defaults(), p_star);
    const double cut = game.alice_t3_cutoff();
    EXPECT_NEAR(game.alice_t3_cont(cut), game.alice_t3_stop(), 1e-12)
        << "p_star=" << p_star;
  }
}

TEST(BasicGame, T3CutoffIncreasesWithPStar) {
  // Fig. 3 discussion: higher P* makes stop more attractive.
  const BasicGame g1(defaults(), 1.5);
  const BasicGame g2(defaults(), 2.0);
  const BasicGame g3(defaults(), 2.5);
  EXPECT_LT(g1.alice_t3_cutoff(), g2.alice_t3_cutoff());
  EXPECT_LT(g2.alice_t3_cutoff(), g3.alice_t3_cutoff());
}

TEST(BasicGame, T3DecisionsFollowEq19) {
  const BasicGame game(defaults(), 2.0);
  const double cut = game.alice_t3_cutoff();
  EXPECT_EQ(game.alice_decision_t3(cut * 1.01), Action::kCont);
  EXPECT_EQ(game.alice_decision_t3(cut), Action::kStop);  // tie -> stop
  EXPECT_EQ(game.alice_decision_t3(cut * 0.99), Action::kStop);
}

TEST(BasicGame, BobT4AlwaysContinues) {
  const BasicGame game(defaults(), 2.0);
  EXPECT_EQ(game.bob_decision_t4(), Action::kCont);
}

TEST(BasicGame, T3StageUtilitiesMatchPaperFormulas) {
  const SwapParams p = defaults();
  const BasicGame game(p, 2.0);
  // Eq. (14): (1+0.3) * x * e^{(0.002-0.01)*4}
  EXPECT_NEAR(game.alice_t3_cont(1.7), 1.3 * 1.7 * std::exp(-0.032), 1e-12);
  // Eq. (16): 2 * e^{-0.01*7}
  EXPECT_NEAR(game.alice_t3_stop(), 2.0 * std::exp(-0.07), 1e-12);
  // Eq. (15): 1.3 * 2 * e^{-0.01*4}
  EXPECT_NEAR(game.bob_t3_cont(), 1.3 * 2.0 * std::exp(-0.04), 1e-12);
  // Eq. (17): x * e^{(0.002-0.01)*8}
  EXPECT_NEAR(game.bob_t3_stop(1.7), 1.7 * std::exp(-0.064), 1e-12);
}

TEST(BasicGame, T2ClosedFormsMatchQuadrature) {
  // Eqs. (20)/(21) via lognormal partial expectations vs direct numeric
  // integration of the stage-t3 utilities against the transition density.
  const SwapParams p = defaults();
  const BasicGame game(p, 2.0);
  const double L = game.alice_t3_cutoff();
  for (double p_t2 : {1.0, 1.5, 2.0, 2.5, 3.5}) {
    const math::GbmLaw law(p.gbm, p_t2, p.tau_b);
    const double upper = law.quantile(1.0 - 1e-12);

    const double alice_quad =
        (math::integrate(
             [&](double x) { return law.pdf(x) * game.alice_t3_cont(x); }, L,
             upper)
             .value +
         law.cdf(L) * game.alice_t3_stop()) *
        std::exp(-p.alice.r * p.tau_b);
    EXPECT_NEAR(game.alice_t2_cont(p_t2), alice_quad, 1e-7)
        << "p_t2=" << p_t2;

    const double bob_quad =
        (law.survival(L) * game.bob_t3_cont() +
         math::integrate(
             [&](double x) { return law.pdf(x) * game.bob_t3_stop(x); }, 1e-12,
             L)
             .value) *
        std::exp(-p.bob.r * p.tau_b);
    EXPECT_NEAR(game.bob_t2_cont(p_t2), bob_quad, 1e-7) << "p_t2=" << p_t2;
  }
}

TEST(BasicGame, T2BandEndpointsAreIndifferencePoints) {
  const BasicGame game(defaults(), 2.0);
  const auto band = game.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_NEAR(game.bob_t2_cont(band->lo), game.bob_t2_stop(band->lo), 1e-7);
  EXPECT_NEAR(game.bob_t2_cont(band->hi), game.bob_t2_stop(band->hi), 1e-7);
  // Interior of the band: cont strictly better.
  const double mid = 0.5 * (band->lo + band->hi);
  EXPECT_GT(game.bob_t2_cont(mid), game.bob_t2_stop(mid));
  // Outside: stop strictly better.
  EXPECT_LT(game.bob_t2_cont(band->lo * 0.5), game.bob_t2_stop(band->lo * 0.5));
  EXPECT_LT(game.bob_t2_cont(band->hi * 2.0), game.bob_t2_stop(band->hi * 2.0));
}

TEST(BasicGame, T2DecisionsFollowEq24) {
  const BasicGame game(defaults(), 2.0);
  const auto band = game.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_EQ(game.bob_decision_t2(0.5 * (band->lo + band->hi)), Action::kCont);
  EXPECT_EQ(game.bob_decision_t2(0.9 * band->lo), Action::kStop);
  EXPECT_EQ(game.bob_decision_t2(1.1 * band->hi), Action::kStop);
}

TEST(BasicGame, TinyBobAlphaKillsTheBand) {
  // Section III-E3: when alpha^B is sufficiently small the cont and stop
  // curves never cross and the swap always fails.
  SwapParams p = defaults();
  p.bob.alpha = 0.0;
  p.bob.r = 0.05;  // impatient, no premium
  const BasicGame game(p, 2.0);
  EXPECT_FALSE(game.bob_t2_band().has_value());
  EXPECT_EQ(game.bob_decision_t2(2.0), Action::kStop);
  EXPECT_EQ(game.success_rate(), 0.0);
}

TEST(BasicGame, T1StopUtilitiesMatchEq27Eq28) {
  const BasicGame game(defaults(), 2.2);
  EXPECT_DOUBLE_EQ(game.alice_t1_stop(), 2.2);  // P*
  EXPECT_DOUBLE_EQ(game.bob_t1_stop(), 2.0);    // P_t1 = P_t0
}

TEST(BasicGame, FeasibleBandMatchesEq29) {
  // The paper reports (P*_lo, P*_hi) = (1.5, 2.5) "numerically solved" at
  // Table III defaults (clearly rounded); we pin the precise values.
  const FeasibleBand band = alice_feasible_band(defaults());
  ASSERT_TRUE(band.viable);
  EXPECT_NEAR(band.lo, 1.5, 0.05);
  EXPECT_NEAR(band.hi, 2.5, 0.05);
  // Regression-pin the exact computed values.
  EXPECT_NEAR(band.lo, 1.5339, 2e-3);
  EXPECT_NEAR(band.hi, 2.5287, 2e-3);
}

TEST(BasicGame, AliceT1DecisionConsistentWithBand) {
  const FeasibleBand band = alice_feasible_band(defaults());
  ASSERT_TRUE(band.viable);
  const double inside = 0.5 * (band.lo + band.hi);
  EXPECT_EQ(BasicGame(defaults(), inside).alice_decision_t1(), Action::kCont);
  EXPECT_EQ(BasicGame(defaults(), band.lo * 0.8).alice_decision_t1(),
            Action::kStop);
  EXPECT_EQ(BasicGame(defaults(), band.hi * 1.2).alice_decision_t1(),
            Action::kStop);
}

TEST(BasicGame, SuccessRateIsAProbability) {
  for (double p_star = 0.5; p_star <= 4.0; p_star += 0.25) {
    const BasicGame game(defaults(), p_star);
    const double sr = game.success_rate();
    EXPECT_GE(sr, 0.0) << "p_star=" << p_star;
    EXPECT_LE(sr, 1.0) << "p_star=" << p_star;
  }
}

TEST(BasicGame, SuccessRateRegressionAtDefaults) {
  // Pinned from the validated implementation (cross-checked by game tree
  // and Monte Carlo); guards against silent numeric drift.
  EXPECT_NEAR(BasicGame(defaults(), 2.0).success_rate(), 0.71430, 5e-4);
}

TEST(BasicGame, SuccessRateIsConcaveShapedInPStar) {
  // Section III-F: the SR <- P* curve is concave with an interior maximum.
  const FeasibleBand band = alice_feasible_band(defaults());
  ASSERT_TRUE(band.viable);
  std::vector<double> sr;
  for (int i = 0; i <= 20; ++i) {
    const double p_star = band.lo + (band.hi - band.lo) * i / 20.0;
    sr.push_back(BasicGame(defaults(), p_star).success_rate());
  }
  // Single peak: increases then decreases.
  const auto peak = std::max_element(sr.begin(), sr.end());
  EXPECT_NE(peak, sr.begin());
  EXPECT_NE(peak, sr.end() - 1);
  for (auto it = sr.begin(); it != peak; ++it) EXPECT_LE(*it, *(it + 1) + 1e-9);
  for (auto it = peak; it + 1 != sr.end(); ++it) EXPECT_GE(*it, *(it + 1) - 1e-9);
}

TEST(BasicGame, SrMaximizingRateLiesInsideBand) {
  const auto best = sr_maximizing_rate(defaults());
  ASSERT_TRUE(best.has_value());
  const FeasibleBand band = alice_feasible_band(defaults());
  EXPECT_GT(best->p_star, band.lo);
  EXPECT_LT(best->p_star, band.hi);
  EXPECT_GT(best->success_rate, 0.7);
}

// ---- Comparative statics of Section III-F (Fig. 6), as TEST_P sweeps. ----

struct AlphaCase {
  double alpha;
};

class AlphaSweep : public ::testing::TestWithParam<AlphaCase> {};

TEST_P(AlphaSweep, HigherAlphaRaisesSuccessRate) {
  // Fig. 6 rows 1-2: ceteris paribus, higher alpha -> higher SR, for both
  // agents' premiums.
  const double alpha = GetParam().alpha;
  SwapParams lo = SwapParams::table3_defaults();
  SwapParams hi = SwapParams::table3_defaults();
  lo.alice.alpha = alpha;
  hi.alice.alpha = alpha + 0.2;
  EXPECT_LE(BasicGame(lo, 2.0).success_rate(),
            BasicGame(hi, 2.0).success_rate() + 1e-9);

  lo = SwapParams::table3_defaults();
  hi = SwapParams::table3_defaults();
  lo.bob.alpha = alpha;
  hi.bob.alpha = alpha + 0.2;
  EXPECT_LE(BasicGame(lo, 2.0).success_rate(),
            BasicGame(hi, 2.0).success_rate() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, AlphaSweep,
                         ::testing::Values(AlphaCase{0.1}, AlphaCase{0.2},
                                           AlphaCase{0.3}, AlphaCase{0.4},
                                           AlphaCase{0.6}));

TEST(BasicGameStatics, HigherImpatienceNarrowsFeasibleBand) {
  // Section III-F2: larger r -> narrower viable P* range.
  SwapParams patient = defaults();
  SwapParams impatient = defaults();
  impatient.alice.r = 0.015;
  impatient.bob.r = 0.015;
  const FeasibleBand b1 = alice_feasible_band(patient);
  const FeasibleBand b2 = alice_feasible_band(impatient);
  ASSERT_TRUE(b1.viable);
  ASSERT_TRUE(b2.viable);
  EXPECT_LT(b2.hi - b2.lo, b1.hi - b1.lo);
}

TEST(BasicGameStatics, ExtremeImpatienceKillsTheSwap) {
  // r = 0.02 /hour already makes every rate non-viable at defaults (the
  // paper's Fig. 6 marks such parameter values with squares).
  SwapParams p = defaults();
  p.alice.r = 0.02;
  p.bob.r = 0.02;
  const FeasibleBand band = alice_feasible_band(p);
  EXPECT_FALSE(band.viable);
}

TEST(BasicGameStatics, LongerConfirmationLowersOptimalSuccessRate) {
  // Section III-F3: with P* chosen optimally, lower tau increases SR.
  SwapParams fast = defaults();
  SwapParams slow = defaults();
  slow.tau_a = 3.6;
  slow.tau_b = 4.8;
  slow.eps_b = 1.0;
  const auto best_fast = sr_maximizing_rate(fast);
  const auto best_slow = sr_maximizing_rate(slow);
  ASSERT_TRUE(best_fast.has_value());
  ASSERT_TRUE(best_slow.has_value());
  EXPECT_GT(best_fast->success_rate, best_slow->success_rate);
}

TEST(BasicGameStatics, UpwardDriftRaisesSuccessRate) {
  // Section III-F4: higher mu increases SR (at the default P*).
  SwapParams down = defaults();
  SwapParams flat = defaults();
  SwapParams up = defaults();
  down.gbm.mu = -0.004;
  flat.gbm.mu = 0.0;
  up.gbm.mu = 0.006;
  const double sr_down = BasicGame(down, 2.0).success_rate();
  const double sr_flat = BasicGame(flat, 2.0).success_rate();
  const double sr_up = BasicGame(up, 2.0).success_rate();
  EXPECT_LT(sr_down, sr_flat);
  EXPECT_LT(sr_flat, sr_up);
}

TEST(BasicGameStatics, HigherVolatilityLowersMaxSuccessRate) {
  // Section III-F4: higher sigma reduces the maximum SR.
  SwapParams calm = defaults();
  SwapParams wild = defaults();
  calm.gbm.sigma = 0.05;
  wild.gbm.sigma = 0.15;
  const auto best_calm = sr_maximizing_rate(calm);
  const auto best_wild = sr_maximizing_rate(wild);
  ASSERT_TRUE(best_calm.has_value());
  ASSERT_TRUE(best_wild.has_value());
  EXPECT_GT(best_calm->success_rate, best_wild->success_rate);
}

TEST(BasicGame, BobT1UtilitiesBracketOutsideOption) {
  // At a viable rate Bob's expected value of the game exceeds holding the
  // token (he would agree at t0); far outside it does not.
  const BasicGame good(defaults(), 2.0);
  EXPECT_GT(good.bob_t1_cont(), good.bob_t1_stop());
}

}  // namespace
}  // namespace swapgame::model
