// Tests for the bounded-memory retirement layer (PR 8): sharded event
// queues (execution order bit-identical at every shard count), Ledger
// compaction (conservation across the fold, audited), the incremental
// visible_secrets index, Neumaier-compensated accumulation, and
// population-run equivalence with compaction/sharding on vs off.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "chain/auditor.hpp"
#include "chain/block.hpp"
#include "chain/event_queue.hpp"
#include "chain/ledger.hpp"
#include "crypto/secret.hpp"
#include "market/population/population_sim.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"
#include "obs/trace.hpp"

namespace swapgame {
namespace {

// ---------------------------------------------------------------------------
// Sharded event queue
// ---------------------------------------------------------------------------

TEST(ShardedEventQueue, ValidatesShardChanges) {
  chain::EventQueue q;
  EXPECT_THROW(q.set_shards(0), std::invalid_argument);
  q.schedule_at(1.0, [] {});
  EXPECT_THROW(q.set_shards(4), std::logic_error);
  q.run();
  q.set_shards(4);  // empty again: allowed
  EXPECT_EQ(q.shards(), 4u);
}

/// Runs the same workload -- staggered times, heavy ties, callbacks that
/// schedule more events -- and records the firing order.
std::vector<int> run_workload(std::size_t shards) {
  chain::EventQueue q;
  q.set_shards(shards);
  std::vector<int> order;
  for (int i = 0; i < 40; ++i) {
    const double when = static_cast<double>((i * 7) % 10);
    q.schedule_at(when, [&q, &order, i] {
      order.push_back(i);
      if (i % 3 == 0) {
        q.schedule_in(0.5, [&order, i] { order.push_back(1000 + i); });
        q.schedule_in(0.0, [&order, i] { order.push_back(2000 + i); });
      }
    });
  }
  q.run();
  return order;
}

TEST(ShardedEventQueue, ExecutionOrderIsIdenticalAtEveryShardCount) {
  const std::vector<int> reference = run_workload(1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t shards : {2u, 3u, 4u, 7u, 16u}) {
    EXPECT_EQ(run_workload(shards), reference) << "shards=" << shards;
  }
}

TEST(ShardedEventQueue, PendingCountsAcrossShards) {
  chain::EventQueue q;
  q.set_shards(3);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0 + i, [] {});
  EXPECT_EQ(q.pending(), 5u);
  EXPECT_EQ(q.run_until(3.0), 3u);
  EXPECT_EQ(q.pending(), 2u);
  q.run();
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Ledger compaction
// ---------------------------------------------------------------------------

struct LedgerFixture {
  chain::EventQueue queue;
  chain::Ledger ledger;
  math::Xoshiro256 rng{0xC0FFEE};

  LedgerFixture()
      : ledger({chain::ChainId::kChainA, /*tau=*/2.0, /*eps=*/0.5}, queue) {
    ledger.create_account(chain::Address{"alice"},
                          chain::Amount::from_tokens(50.0));
    ledger.create_account(chain::Address{"bob"},
                          chain::Amount::from_tokens(50.0));
  }

  /// Deploys an HTLC from alice to bob and claims it; returns the ids.
  std::pair<chain::TxId, chain::TxId> deploy_and_claim(double expiry) {
    const crypto::Secret secret = crypto::Secret::generate(rng);
    const chain::TxId deploy =
        ledger.submit(chain::DeployHtlcPayload{{"alice"},
                                               {"bob"},
                                               chain::Amount::from_tokens(5.0),
                                               secret.commitment(),
                                               expiry,
                                               chain::HtlcKind::kStandard});
    const chain::HtlcId id = ledger.pending_contract_of(deploy);
    queue.run_until(queue.now() + 2.0);  // deploy confirms
    const chain::TxId claim =
        ledger.submit(chain::ClaimHtlcPayload{id, secret, {"bob"}});
    queue.run_until(queue.now() + 2.0);  // claim confirms
    return {deploy, claim};
  }
};

TEST(LedgerCompaction, RetiresSettledRecordsAndConservesSupply) {
  LedgerFixture fx;
  const chain::Amount supply = fx.ledger.total_supply();
  const auto [deploy, claim] = fx.deploy_and_claim(/*expiry=*/20.0);
  fx.queue.run_until(10.0);

  EXPECT_EQ(fx.ledger.transaction_count(), 2u);
  const chain::CompactionReport report = fx.ledger.compact(9.0);
  EXPECT_EQ(report.transactions_retired, 2u);
  EXPECT_EQ(report.htlcs_retired, 1u);
  EXPECT_EQ(report.log_truncated, 2u);
  EXPECT_EQ(report.supply_before, report.supply_after);
  EXPECT_EQ(fx.ledger.total_supply(), supply);

  // Records are gone, counters remember them.
  EXPECT_EQ(fx.ledger.find_transaction(deploy), nullptr);
  EXPECT_EQ(fx.ledger.find_transaction(claim), nullptr);
  EXPECT_THROW(static_cast<void>(fx.ledger.transaction(claim)),
               std::out_of_range);
  EXPECT_EQ(fx.ledger.transaction_count(), 2u);
  EXPECT_EQ(fx.ledger.confirmation_log_offset(), 2u);
  EXPECT_TRUE(fx.ledger.confirmation_log().empty());
}

TEST(LedgerCompaction, LockedContractsAndRecentRecordsSurvive) {
  LedgerFixture fx;
  // An open lock deep in the past...
  const crypto::Secret secret = crypto::Secret::generate(fx.rng);
  const chain::TxId deploy =
      fx.ledger.submit(chain::DeployHtlcPayload{{"alice"},
                                                {"bob"},
                                                chain::Amount::from_tokens(3.0),
                                                secret.commitment(),
                                                /*expiry=*/100.0,
                                                chain::HtlcKind::kStandard});
  const chain::HtlcId id = fx.ledger.pending_contract_of(deploy);
  fx.queue.run_until(50.0);

  const chain::Amount supply = fx.ledger.total_supply();
  const chain::CompactionReport report = fx.ledger.compact(49.0);
  // The deploy tx retires (applied long ago) but the LOCKED contract must
  // survive -- its amount is live supply and its refund path must work.
  EXPECT_EQ(report.transactions_retired, 1u);
  EXPECT_EQ(report.htlcs_retired, 0u);
  ASSERT_TRUE(fx.ledger.has_htlc(id));
  EXPECT_EQ(fx.ledger.total_supply(), supply);

  // The auto-refund still fires at expiry and pays alice back.
  fx.queue.run_until(110.0);
  EXPECT_EQ(fx.ledger.htlc(id).state, chain::HtlcState::kRefunded);
  EXPECT_EQ(fx.ledger.balance({"alice"}), chain::Amount::from_tokens(50.0));
  EXPECT_EQ(fx.ledger.total_supply(), supply);
}

TEST(LedgerCompaction, WatermarkMustBeStrictlyInThePast) {
  LedgerFixture fx;
  fx.queue.run_until(5.0);
  EXPECT_THROW(fx.ledger.compact(5.0), std::invalid_argument);
  EXPECT_THROW(fx.ledger.compact(6.0), std::invalid_argument);
  EXPECT_THROW(fx.ledger.compact(std::nan("")), std::invalid_argument);
  EXPECT_NO_THROW(fx.ledger.compact(4.9));
}

TEST(LedgerCompaction, RetireAccountFoldsBalanceIntoSupply) {
  LedgerFixture fx;
  fx.queue.run_until(1.0);
  const chain::Amount supply = fx.ledger.total_supply();
  fx.ledger.retire_account({"alice"});
  EXPECT_FALSE(fx.ledger.has_account({"alice"}));
  EXPECT_EQ(fx.ledger.retired_balance(), chain::Amount::from_tokens(50.0));
  EXPECT_EQ(fx.ledger.total_supply(), supply);
  EXPECT_THROW(fx.ledger.retire_account({"alice"}), std::out_of_range);
}

TEST(LedgerCompaction, EmitsTraceEventAndNotifiesAuditor) {
  LedgerFixture fx;
  chain::InvariantAuditor auditor;
  auditor.attach(fx.ledger);
  obs::TraceRecorder trace;
  fx.ledger.set_trace(&trace);

  fx.deploy_and_claim(/*expiry=*/20.0);
  fx.queue.run_until(10.0);
  const std::uint64_t checks_before = auditor.checks_run();
  fx.ledger.compact(9.0);

  EXPECT_TRUE(auditor.ok());
  EXPECT_EQ(auditor.checks_run(), checks_before + 1);
  bool saw_compaction = false;
  for (const obs::TraceEvent& ev : trace.events()) {
    if (ev.kind == obs::TraceKind::kCompaction) saw_compaction = true;
  }
  EXPECT_TRUE(saw_compaction);
}

TEST(LedgerCompaction, AuditorCatchesSupplyDriftAcrossTheFold) {
  LedgerFixture fx;
  chain::InvariantAuditor auditor;
  auditor.attach(fx.ledger);
  fx.deploy_and_claim(/*expiry=*/20.0);
  fx.queue.run_until(10.0);
  // Minting mid-run breaks the attach-time baseline; the next sweep's
  // conservation check must flag it.
  fx.ledger.create_account({"minter"}, chain::Amount::from_tokens(1.0));
  fx.ledger.compact(9.0);
  ASSERT_FALSE(auditor.ok());
  EXPECT_NE(auditor.violations()[0].what.find("conservation"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Incremental secret index
// ---------------------------------------------------------------------------

/// The pre-index algorithm: rescan every transaction for mempool-visible
/// claims, ascending by tx id.  The incremental index must match exactly.
std::vector<chain::ObservedSecret> rescan_secrets(
    const chain::Ledger& ledger, const std::vector<chain::TxId>& txs,
    double now) {
  std::vector<chain::ObservedSecret> result;
  for (const chain::TxId id : txs) {
    const chain::Transaction* tx = ledger.find_transaction(id);
    if (tx == nullptr || tx->visible_at > now) continue;
    if (const auto* claim =
            std::get_if<chain::ClaimHtlcPayload>(&tx->payload)) {
      result.push_back({claim->secret, claim->contract, tx->visible_at});
    }
  }
  return result;
}

TEST(SecretIndex, MatchesTheFullRescanAtEveryClockStep) {
  LedgerFixture fx;
  std::vector<chain::TxId> all_txs;
  std::vector<chain::HtlcId> contracts;
  std::vector<crypto::Secret> secrets;
  // Three overlapping deploy+claim pairs, so visibility times interleave.
  for (int i = 0; i < 3; ++i) {
    secrets.push_back(crypto::Secret::generate(fx.rng));
    all_txs.push_back(fx.ledger.submit(
        chain::DeployHtlcPayload{{"alice"},
                                 {"bob"},
                                 chain::Amount::from_tokens(2.0),
                                 secrets.back().commitment(),
                                 /*expiry=*/40.0,
                                 chain::HtlcKind::kStandard}));
    contracts.push_back(fx.ledger.pending_contract_of(all_txs.back()));
    fx.queue.run_until(fx.queue.now() + 2.5);
  }
  for (int i = 0; i < 3; ++i) {
    all_txs.push_back(fx.ledger.submit(
        chain::ClaimHtlcPayload{contracts[i], secrets[i], {"bob"}}));
    fx.queue.run_until(fx.queue.now() + 0.3);  // claims not yet visible
    // Index and rescan must agree BETWEEN submissions too (pending heap
    // half-matured).
    const auto expected =
        rescan_secrets(fx.ledger, all_txs, fx.queue.now());
    const auto got = fx.ledger.visible_secrets();
    ASSERT_EQ(got.size(), expected.size()) << "i=" << i;
  }
  fx.queue.run_until(fx.queue.now() + 10.0);

  const auto expected = rescan_secrets(fx.ledger, all_txs, fx.queue.now());
  const auto got = fx.ledger.visible_secrets();
  ASSERT_EQ(got.size(), 3u);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].secret.bytes(), expected[i].secret.bytes());
    EXPECT_EQ(got[i].contract.value, expected[i].contract.value);
    EXPECT_EQ(got[i].visible_since, expected[i].visible_since);
  }
}

TEST(SecretIndex, CompactionDropsRetiredClaims) {
  LedgerFixture fx;
  fx.deploy_and_claim(/*expiry=*/20.0);
  fx.queue.run_until(8.0);
  ASSERT_EQ(fx.ledger.visible_secrets().size(), 1u);
  fx.ledger.compact(7.5);
  // The claim's record is gone, so the index (like the old rescan of the
  // remaining transactions) no longer reports its secret.
  EXPECT_TRUE(fx.ledger.visible_secrets().empty());
}

// ---------------------------------------------------------------------------
// Block production over a compacting ledger
// ---------------------------------------------------------------------------

TEST(BlockProducer, SealsAcrossLogTruncation) {
  LedgerFixture fx;
  chain::BlockProducer producer(fx.ledger, fx.queue, /*block_interval=*/5.0);
  producer.start();
  fx.deploy_and_claim(/*expiry=*/30.0);
  fx.queue.run_until(5.0);  // first seal at t=5, both txs confirmed by t=4
  ASSERT_EQ(producer.blocks().size(), 1u);
  EXPECT_EQ(producer.blocks()[0].transactions.size(), 2u);

  fx.ledger.compact(4.5);  // truncates both sealed log entries
  const auto [deploy2, claim2] = fx.deploy_and_claim(/*expiry=*/30.0);
  fx.queue.run_until(10.0);  // second seal at t=10
  ASSERT_EQ(producer.blocks().size(), 2u);
  // The producer's global log cursor survives the truncation: the second
  // block holds exactly the two new confirmations, no duplicates, no skips.
  const std::vector<chain::TxId> expected{deploy2, claim2};
  EXPECT_EQ(producer.blocks()[1].transactions, expected);
  // Proofs over the live block still work (verification needs the records,
  // so it is only available for transactions that survived compaction).
  const auto proof = producer.prove_inclusion(claim2);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(
      producer.verify_inclusion(fx.ledger.transaction(claim2), *proof));
}

// ---------------------------------------------------------------------------
// Compensated accumulation
// ---------------------------------------------------------------------------

TEST(NeumaierSum, MatchesLongDoubleReferenceAtAMillionSamples) {
  // Pathological mix: alternating +-1e12 terms (which cancel EXACTLY in
  // pairs, so the true total is just the sum of the small terms) plus a
  // small positive drift.  Naive double addition absorbs every small term
  // into the 1e12-magnitude running sum (1e-6 < ulp(1e12)/2) and loses the
  // drift entirely; Neumaier compensation recovers it.
  math::Xoshiro256 rng(0x5EED);
  math::NeumaierSum compensated;
  double naive = 0.0;
  long double reference = 0.0L;  // smalls only; the bigs cancel exactly
  for (int i = 0; i < 1'000'000; ++i) {
    const double big = (i % 2 == 0 ? 1.0 : -1.0) * 1e12;
    const double small = 1e-6 * math::uniform01(rng);
    compensated.add(big);
    compensated.add(small);
    naive += big;
    naive += small;
    reference += static_cast<long double>(small);
  }
  const double exact = static_cast<double>(reference);
  ASSERT_GT(exact, 0.1);  // the drift is macroscopic
  const double comp_err = std::abs(compensated.value() - exact);
  const double naive_err = std::abs(naive - exact);
  // Compensation recovers the reference to ~1 ulp of the total...
  EXPECT_LE(comp_err, 1e-9 * exact)
      << "compensated=" << compensated.value() << " exact=" << exact;
  EXPECT_LE(comp_err, naive_err);
  // ...while the naive sum loses essentially ALL of the drift.
  EXPECT_GT(naive_err, 0.5 * exact);
}

// ---------------------------------------------------------------------------
// Population equivalence: compaction on/off, shards 1/K
// ---------------------------------------------------------------------------

market::PopulationConfig equivalence_config(std::uint64_t sessions = 400) {
  market::PopulationConfig config;
  config.sessions = sessions;
  // Slow arrivals spread the sessions over many simulated hours, so early
  // sessions finish (and become retirable) while later ones are still
  // arriving -- the regime where compaction actually bounds live state.
  config.arrival_rate = 15.0;
  config.seed = 0xE9A1;
  return config;
}

struct TracedRun {
  market::PopulationResult result;
  std::string trace;
};

TracedRun run_traced(market::PopulationConfig config) {
  market::PopulationSim sim(std::move(config));
  obs::TraceRecorder recorder;
  sim.set_trace(&recorder, /*stride=*/7);
  TracedRun out;
  out.result = sim.run();
  out.trace = recorder.to_jsonl();
  return out;
}

/// Asserts every behavioral field matches; retirement telemetry is memory
/// bookkeeping and intentionally excluded.
void expect_equivalent(const market::PopulationResult& a,
                       const market::PopulationResult& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.orders_cancelled, b.orders_cancelled);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.never_initiated, b.never_initiated);
  EXPECT_EQ(a.aborted_t2, b.aborted_t2);
  EXPECT_EQ(a.aborted_t3, b.aborted_t3);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.starved, b.starved);
  EXPECT_EQ(a.atomicity_lost, b.atomicity_lost);
  EXPECT_EQ(a.stats.initiated, b.stats.initiated);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.expired, b.stats.expired);
  // Bit-identical doubles, not just close.
  EXPECT_EQ(a.stats.mean_predicted_sr, b.stats.mean_predicted_sr);
  EXPECT_EQ(a.stats.latency_p50, b.stats.latency_p50);
  EXPECT_EQ(a.stats.latency_p90, b.stats.latency_p90);
  EXPECT_EQ(a.stats.latency_p99, b.stats.latency_p99);
  EXPECT_EQ(a.stats.lockup_token_a_hours, b.stats.lockup_token_a_hours);
  EXPECT_EQ(a.stats.lockup_token_b_hours, b.stats.lockup_token_b_hours);
  EXPECT_EQ(a.final_price, b.final_price);
  EXPECT_EQ(a.min_price, b.min_price);
  EXPECT_EQ(a.max_price, b.max_price);
  EXPECT_EQ(a.blocks_sealed, b.blocks_sealed);
  EXPECT_EQ(a.txs_included, b.txs_included);
  EXPECT_EQ(a.txs_evicted, b.txs_evicted);
  EXPECT_EQ(a.txs_expired, b.txs_expired);
  EXPECT_EQ(a.rebids, b.rebids);
  EXPECT_EQ(a.fees_paid, b.fees_paid);
  EXPECT_EQ(a.threshold_games, b.threshold_games);
  EXPECT_EQ(a.t1_evaluations, b.t1_evaluations);
  EXPECT_TRUE(a.conserved);
  EXPECT_TRUE(b.conserved);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(PopulationEquivalence, CompactionWorkersAndShardsAreBitIdentical) {
  // Full equivalence panel over {compaction off/on} x {workers 1/K} x
  // {event-queue shards 1/K}: every cell must produce bit-identical
  // results AND a byte-identical trace.  This is the determinism contract
  // of the parallel intra-run engine (docs/MARKET.md) -- the worker count
  // and both storage knobs are wall-clock/memory levers only.
  const TracedRun baseline = run_traced(equivalence_config());
  EXPECT_EQ(baseline.result.compactions, 0u);
  EXPECT_EQ(baseline.result.peak_live_sessions, baseline.result.sessions);

  bool saw_compaction = false;
  for (const bool compaction : {false, true}) {
    for (const std::uint64_t workers : {1u, 4u}) {
      for (const std::uint64_t shards : {1u, 5u}) {
        if (!compaction && workers == 1 && shards == 1) continue;
        market::PopulationConfig config = equivalence_config();
        config.compaction.enabled = compaction;
        config.compaction.horizon = 2.0;
        config.compaction.interval = 16;
        config.workers = workers;
        config.shards = shards;
        const TracedRun cell = run_traced(std::move(config));
        SCOPED_TRACE(::testing::Message()
                     << "compaction=" << compaction << " workers=" << workers
                     << " shards=" << shards);
        expect_equivalent(baseline.result, cell.result);
        // TRACE byte-identity, not just equal aggregates.
        EXPECT_EQ(baseline.trace, cell.trace);
        if (compaction) {
          // And the compaction actually happened.
          EXPECT_GT(cell.result.compactions, 0u);
          EXPECT_GT(cell.result.sessions_retired, 0u);
          EXPECT_GT(cell.result.txs_retired, 0u);
          EXPECT_LT(cell.result.peak_live_sessions, cell.result.sessions);
          saw_compaction = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_compaction);
}

TEST(PopulationEquivalence, AggressiveRetirementUnderFeePressure) {
  // Satellite regression: congested fee markets produce eviction/expiry
  // notifications that can fire for sessions already retired; each must be
  // a checked no-op, and the run must stay equivalent to the uncompacted
  // one in every behavioral field.
  market::PopulationConfig congested = equivalence_config(500);
  congested.arrival_rate = 2500.0;
  congested.fee_a.block_capacity = 6;
  congested.fee_b.block_capacity = 6;
  congested.fee_a.mempool_capacity = 24;
  congested.fee_b.mempool_capacity = 24;

  const TracedRun baseline = run_traced(congested);
  ASSERT_GT(baseline.result.txs_evicted, 0u);
  ASSERT_GT(baseline.result.starved, 0u);

  market::PopulationConfig churning = congested;
  churning.compaction.enabled = true;
  churning.compaction.horizon = 1.0;  // as aggressive as the gate allows
  churning.compaction.interval = 1;   // sweep on every finalization
  const TracedRun churned = run_traced(churning);

  expect_equivalent(baseline.result, churned.result);
  EXPECT_EQ(baseline.trace, churned.trace);
  EXPECT_GT(churned.result.sessions_retired, 0u);
  EXPECT_GT(churned.result.accounts_retired, 0u);
  EXPECT_GT(churned.result.log_truncated, 0u);

  // Same churn under parallel workers: eviction drops, merge-expired
  // intents and retirement sweeps must still replay bit-identically.
  market::PopulationConfig parallel = churning;
  parallel.workers = 3;
  const TracedRun parallel_run = run_traced(std::move(parallel));
  expect_equivalent(baseline.result, parallel_run.result);
  EXPECT_EQ(baseline.trace, parallel_run.trace);
}

TEST(PopulationEquivalence, ValidatesRetirementKnobs) {
  market::PopulationConfig config = equivalence_config();
  config.shards = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = equivalence_config();
  config.workers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = equivalence_config();
  config.workers = 257;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = equivalence_config();
  config.compaction.enabled = true;
  config.compaction.horizon = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = equivalence_config();
  config.compaction.enabled = true;
  config.compaction.interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame
