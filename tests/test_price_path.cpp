// Tests for price paths (src/proto/price_path) and the GBM epoch sampler
// (src/sim/path_simulator).
#include "proto/price_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "math/stats.hpp"
#include "sim/path_simulator.hpp"

namespace swapgame::proto {
namespace {

TEST(ConstantPricePath, AlwaysSamePrice) {
  const ConstantPricePath path(2.5);
  EXPECT_EQ(path.price_at(0.0), 2.5);
  EXPECT_EQ(path.price_at(100.0), 2.5);
  EXPECT_THROW(ConstantPricePath(0.0), std::invalid_argument);
  EXPECT_THROW(ConstantPricePath(-1.0), std::invalid_argument);
}

TEST(SteppedPricePath, HoldsLatestKnot) {
  const SteppedPricePath path({{0.0, 2.0}, {3.0, 2.5}, {7.0, 1.8}});
  EXPECT_EQ(path.price_at(0.0), 2.0);
  EXPECT_EQ(path.price_at(2.999), 2.0);
  EXPECT_EQ(path.price_at(3.0), 2.5);
  EXPECT_EQ(path.price_at(6.5), 2.5);
  EXPECT_EQ(path.price_at(7.0), 1.8);
  EXPECT_EQ(path.price_at(1000.0), 1.8);
}

TEST(SteppedPricePath, ValidatesInput) {
  EXPECT_THROW(SteppedPricePath((std::map<chain::Hours, double>{})),
               std::invalid_argument);
  EXPECT_THROW(SteppedPricePath((std::map<chain::Hours, double>{{0.0, -1.0}})),
               std::invalid_argument);
  const SteppedPricePath path(std::map<chain::Hours, double>{{1.0, 2.0}});
  EXPECT_THROW((void)path.price_at(0.5), std::out_of_range);
}

TEST(PathSimulator, EpochsAreSortedAndUnique) {
  const auto params = model::SwapParams::table3_defaults();
  const auto schedule = model::idealized_schedule(params, 0.0);
  const auto epochs = sim::schedule_epochs(schedule);
  // Table III: {0, 3, 7, 8, 11, 14, 15} (t5 = t6 = 11 collapse).
  ASSERT_EQ(epochs.size(), 7u);
  EXPECT_DOUBLE_EQ(epochs.front(), 0.0);
  EXPECT_DOUBLE_EQ(epochs.back(), 15.0);
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_LT(epochs[i - 1], epochs[i]);
  }
}

TEST(PathSimulator, PathStartsAtInitialPrice) {
  const auto params = model::SwapParams::table3_defaults();
  const auto schedule = model::idealized_schedule(params, 0.0);
  math::Xoshiro256 rng(1);
  const auto path = sim::sample_epoch_path(params, schedule, rng);
  EXPECT_DOUBLE_EQ(path.price_at(0.0), params.p_t0);
  EXPECT_DOUBLE_EQ(path.price_at(2.9), params.p_t0);  // held until t2
}

TEST(PathSimulator, DeterministicPerSeed) {
  const auto params = model::SwapParams::table3_defaults();
  const auto schedule = model::idealized_schedule(params, 0.0);
  math::Xoshiro256 rng1(42), rng2(42);
  const auto p1 = sim::sample_epoch_path(params, schedule, rng1);
  const auto p2 = sim::sample_epoch_path(params, schedule, rng2);
  for (double t : {0.0, 3.0, 7.0, 8.0, 11.0, 14.0, 15.0}) {
    EXPECT_DOUBLE_EQ(p1.price_at(t), p2.price_at(t)) << "t=" << t;
  }
}

TEST(PathSimulator, TerminalDistributionMatchesGbm) {
  // The sampled price at t2 = 3h must be lognormal with the GBM moments:
  // E[P_t2] = p0 e^{mu tau_a}; log-variance sigma^2 tau_a.
  const auto params = model::SwapParams::table3_defaults();
  const auto schedule = model::idealized_schedule(params, 0.0);
  math::Xoshiro256 rng(7);
  math::RunningStats level, logret;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto path = sim::sample_epoch_path(params, schedule, rng);
    const double p_t2 = path.price_at(3.0);
    level.add(p_t2);
    logret.add(std::log(p_t2 / params.p_t0));
  }
  EXPECT_NEAR(level.mean(), params.p_t0 * std::exp(params.gbm.mu * 3.0), 0.01);
  EXPECT_NEAR(logret.variance(), params.gbm.sigma * params.gbm.sigma * 3.0,
              0.002);
}

TEST(PathSimulator, IncrementsAreIndependentAcrossEpochs) {
  // Correlation between disjoint log-increments should vanish.
  const auto params = model::SwapParams::table3_defaults();
  const auto schedule = model::idealized_schedule(params, 0.0);
  math::Xoshiro256 rng(17);
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto path = sim::sample_epoch_path(params, schedule, rng);
    const double x = std::log(path.price_at(3.0) / path.price_at(0.0));
    const double y = std::log(path.price_at(7.0) / path.price_at(3.0));
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  EXPECT_NEAR(cov, 0.0, 0.001);
}

}  // namespace
}  // namespace swapgame::proto
