// Unit and property tests for the GBM transition law (src/math/gbm),
// including cross-checks of every closed form against adaptive quadrature.
#include "math/gbm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "math/quadrature.hpp"

namespace swapgame::math {
namespace {

GbmParams paper_params() { return {0.002, 0.1}; }  // Table III

TEST(GbmParams, ValidationRejectsBadValues) {
  EXPECT_NO_THROW(paper_params().validate());
  EXPECT_THROW((GbmParams{0.0, 0.0}.validate()), std::invalid_argument);
  EXPECT_THROW((GbmParams{0.0, -0.1}.validate()), std::invalid_argument);
  EXPECT_THROW((GbmParams{std::nan(""), 0.1}.validate()), std::invalid_argument);
  EXPECT_THROW((GbmParams{0.0, std::nan("")}.validate()), std::invalid_argument);
}

TEST(GbmLaw, ConstructorRejectsBadInputs) {
  EXPECT_THROW(GbmLaw(paper_params(), 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GbmLaw(paper_params(), -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GbmLaw(paper_params(), 2.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GbmLaw(paper_params(), 2.0, -4.0), std::invalid_argument);
}

TEST(GbmLaw, ExpectationIsExponentialGrowth) {
  // Paper: E(P_t, tau) = P_t e^{mu tau}.
  const GbmLaw law(paper_params(), 2.0, 4.0);
  EXPECT_NEAR(law.expectation(), 2.0 * std::exp(0.002 * 4.0), 1e-14);
}

TEST(GbmLaw, PdfIntegratesToOne) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  const auto result = integrate_to_infinity(
      [&law](double x) { return law.pdf(x); }, 1e-12);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 1.0, 1e-8);
}

TEST(GbmLaw, CdfMatchesIntegratedPdf) {
  const GbmLaw law(paper_params(), 2.0, 3.0);
  for (double x : {0.5, 1.0, 1.5, 2.0, 2.5, 4.0}) {
    const auto result =
        integrate([&law](double t) { return law.pdf(t); }, 1e-12, x);
    EXPECT_NEAR(result.value, law.cdf(x), 1e-9) << "x=" << x;
  }
}

TEST(GbmLaw, CdfLimitsAndMonotonicity) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  EXPECT_EQ(law.cdf(0.0), 0.0);
  EXPECT_EQ(law.cdf(-1.0), 0.0);
  EXPECT_NEAR(law.cdf(1e9), 1.0, 1e-12);
  double prev = -1.0;
  for (double x = 0.1; x < 10.0; x += 0.1) {
    const double c = law.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(GbmLaw, SurvivalComplementsCdf) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  for (double x : {0.3, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(law.cdf(x) + law.survival(x), 1.0, 1e-14);
  }
}

TEST(GbmLaw, QuantileRoundTrips) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(law.cdf(law.quantile(p)), p, 1e-12) << "p=" << p;
  }
  EXPECT_EQ(law.quantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(law.quantile(1.0)));
  EXPECT_THROW(law.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(law.quantile(1.0001), std::invalid_argument);
}

TEST(GbmLaw, MedianIsLogMeanExp) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  EXPECT_NEAR(law.quantile(0.5), std::exp(law.log_mean()), 1e-12);
}

TEST(GbmLaw, PartialExpectationsSumToExpectation) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  for (double L : {0.2, 1.0, 1.5, 2.0, 3.0, 8.0}) {
    EXPECT_NEAR(law.partial_expectation_below(L) +
                    law.partial_expectation_above(L),
                law.expectation(), 1e-12)
        << "L=" << L;
  }
}

TEST(GbmLaw, PartialExpectationBelowMatchesQuadrature) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  for (double L : {0.8, 1.481, 2.0, 3.5}) {
    const auto result =
        integrate([&law](double x) { return x * law.pdf(x); }, 1e-12, L);
    EXPECT_NEAR(result.value, law.partial_expectation_below(L), 1e-8)
        << "L=" << L;
  }
}

TEST(GbmLaw, PartialExpectationEdgeCases) {
  const GbmLaw law(paper_params(), 2.0, 4.0);
  EXPECT_EQ(law.partial_expectation_below(0.0), 0.0);
  EXPECT_EQ(law.partial_expectation_below(-1.0), 0.0);
  EXPECT_NEAR(law.partial_expectation_below(
                  std::numeric_limits<double>::infinity()),
              law.expectation(), 1e-14);
  EXPECT_NEAR(law.partial_expectation_above(0.0), law.expectation(), 1e-14);
  EXPECT_EQ(law.partial_expectation_above(
                std::numeric_limits<double>::infinity()),
            0.0);
}

TEST(GbmLaw, SampleFromNormalHitsQuantiles) {
  // The exact-sampling map must agree with the quantile function:
  // sample(z) = quantile(Phi(z)).
  const GbmLaw law(paper_params(), 2.0, 4.0);
  for (double z : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    const double p = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(law.sample_from_normal(z), law.quantile(p), 1e-9);
  }
}

// Property sweep: the lognormal mean identity E[X] = P e^{mu tau} must hold
// across a parameter grid (integral evaluated by quadrature).
struct GbmCase {
  double mu;
  double sigma;
  double price;
  double tau;
};

class GbmPropertyTest : public ::testing::TestWithParam<GbmCase> {};

TEST_P(GbmPropertyTest, QuadratureMeanMatchesClosedForm) {
  const GbmCase c = GetParam();
  const GbmLaw law(GbmParams{c.mu, c.sigma}, c.price, c.tau);
  const auto result = integrate_to_infinity(
      [&law](double x) { return x * law.pdf(x); }, 1e-12);
  EXPECT_NEAR(result.value / law.expectation(), 1.0, 1e-6);
}

TEST_P(GbmPropertyTest, PartialExpectationConsistency) {
  const GbmCase c = GetParam();
  const GbmLaw law(GbmParams{c.mu, c.sigma}, c.price, c.tau);
  const double L = law.quantile(0.37);
  EXPECT_NEAR(law.partial_expectation_below(L) +
                  law.partial_expectation_above(L),
              law.expectation(), 1e-10 * law.expectation());
  // Below-part must be below the full mean, above-part positive.
  EXPECT_LT(law.partial_expectation_below(L), law.expectation());
  EXPECT_GT(law.partial_expectation_above(L), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, GbmPropertyTest,
    ::testing::Values(GbmCase{0.002, 0.1, 2.0, 4.0},   // Table III
                      GbmCase{0.0, 0.1, 2.0, 3.0},     // zero drift
                      GbmCase{-0.004, 0.1, 2.0, 4.0},  // inflationary token
                      GbmCase{0.002, 0.05, 2.0, 4.0},  // low vol
                      GbmCase{0.002, 0.2, 2.0, 4.0},   // high vol
                      GbmCase{0.01, 0.3, 0.5, 1.0},    // small price
                      GbmCase{0.002, 0.1, 100.0, 24.0}));

}  // namespace
}  // namespace swapgame::math
