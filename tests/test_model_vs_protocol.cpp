// Per-path agreement between the analytic model and the executed protocol:
// for any deterministic price path, the outcome of running rational agents
// through the full two-ledger protocol must equal the outcome predicted by
// evaluating the model thresholds along that path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "agents/rational.hpp"
#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"
#include "proto/swap_protocol.hpp"

namespace swapgame::proto {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

SwapOutcome predict_basic(const model::BasicGame& game, double p_t2,
                          double p_t3) {
  if (game.alice_decision_t1() != model::Action::kCont) {
    return SwapOutcome::kNotInitiated;
  }
  if (game.bob_decision_t2(p_t2) != model::Action::kCont) {
    return SwapOutcome::kBobDeclinedT2;
  }
  if (game.alice_decision_t3(p_t3) != model::Action::kCont) {
    return SwapOutcome::kAliceDeclinedT3;
  }
  return SwapOutcome::kSuccess;
}

struct PathPoint {
  double p_t2;
  double p_t3;
};

class ModelVsProtocol : public ::testing::TestWithParam<PathPoint> {};

TEST_P(ModelVsProtocol, OutcomesAgreeOnEveryPath) {
  const PathPoint pp = GetParam();
  const model::BasicGame game(defaults(), 2.0);
  const model::Schedule s = model::idealized_schedule(defaults(), 0.0);
  const SteppedPricePath path(
      {{0.0, 2.0}, {s.t2, pp.p_t2}, {s.t3, pp.p_t3}});

  agents::RationalStrategy alice(agents::Role::kAlice, defaults(), 2.0);
  agents::RationalStrategy bob(agents::Role::kBob, defaults(), 2.0);
  SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 2.0;
  const SwapResult r = run_swap(setup, alice, bob, path);

  EXPECT_EQ(r.outcome, predict_basic(game, pp.p_t2, pp.p_t3))
      << "p_t2=" << pp.p_t2 << " p_t3=" << pp.p_t3;
}

// The grid brackets Bob's band (1.1818, 2.3887) and Alice's cutoff 1.4811.
INSTANTIATE_TEST_SUITE_P(
    PriceGrid, ModelVsProtocol,
    ::testing::Values(PathPoint{2.0, 2.0},    // success
                      PathPoint{2.0, 1.4},    // alice declines at t3
                      PathPoint{2.0, 1.49},   // just above cutoff: success
                      PathPoint{2.0, 1.47},   // just below cutoff: decline
                      PathPoint{3.0, 2.0},    // bob declines (high)
                      PathPoint{1.0, 2.0},    // bob declines (low)
                      PathPoint{1.19, 1.5},   // just inside band low edge
                      PathPoint{2.38, 2.5},   // inside band, alice cont
                      PathPoint{2.40, 2.0},   // just outside band high edge
                      PathPoint{0.5, 0.5}));  // deep crash at both epochs

TEST(ModelVsProtocolCollateral, OutcomesAgreeWithCollateralThresholds) {
  const double q = 0.5;
  const model::CollateralGame game(defaults(), 2.0, q);
  const model::Schedule s = model::idealized_schedule(defaults(), 0.0);
  // Price points around the collateral thresholds: cutoff ~1.10 at t3;
  // Bob's region [0, ~2.87) at t2.
  const std::vector<PathPoint> points = {
      {2.0, 2.0}, {2.0, 1.05}, {2.0, 1.15}, {3.0, 2.0}, {0.3, 0.5}, {2.8, 1.2}};
  for (const PathPoint& pp : points) {
    const SteppedPricePath path(
        {{0.0, 2.0}, {s.t2, pp.p_t2}, {s.t3, pp.p_t3}});
    agents::CollateralRationalStrategy alice(agents::Role::kAlice, defaults(),
                                             2.0, q);
    agents::CollateralRationalStrategy bob(agents::Role::kBob, defaults(), 2.0,
                                           q);
    SwapSetup setup;
    setup.params = defaults();
    setup.p_star = 2.0;
    setup.collateral = q;
    const SwapResult r = run_swap(setup, alice, bob, path);

    SwapOutcome expected;
    if (!game.engaged()) {
      expected = SwapOutcome::kNotInitiated;
    } else if (game.bob_decision_t2(pp.p_t2) != model::Action::kCont) {
      expected = SwapOutcome::kBobDeclinedT2;
    } else if (game.alice_decision_t3(pp.p_t3) != model::Action::kCont) {
      expected = SwapOutcome::kAliceDeclinedT3;
    } else {
      expected = SwapOutcome::kSuccess;
    }
    EXPECT_EQ(r.outcome, expected)
        << "p_t2=" << pp.p_t2 << " p_t3=" << pp.p_t3;
  }
}

TEST(ModelVsProtocol, RealizedUtilityMatchesStageUtilityOnSuccess) {
  // For a success path with price x at t3, the protocol's realized
  // discounted utility for Alice equals the model's U^A_t3(cont)(x)
  // discounted back to t1 -- on a stepped path the t5 price equals the t3
  // price, and E(x, tau_b) has the e^{mu tau_b} growth the realized path
  // lacks, so compare against the *realized-price* expression directly.
  const model::SwapParams p = defaults();
  const model::Schedule s = model::idealized_schedule(p, 0.0);
  const double x = 2.1;
  const SteppedPricePath path({{0.0, 2.0}, {s.t2, 2.0}, {s.t3, x}});
  agents::RationalStrategy alice(agents::Role::kAlice, p, 2.0);
  agents::RationalStrategy bob(agents::Role::kBob, p, 2.0);
  SwapSetup setup;
  setup.params = p;
  setup.p_star = 2.0;
  const SwapResult r = run_swap(setup, alice, bob, path);
  ASSERT_EQ(r.outcome, SwapOutcome::kSuccess);
  const double expected_alice =
      (1.0 + p.alice.alpha) * x * std::exp(-p.alice.r * s.t5);
  const double expected_bob =
      (1.0 + p.bob.alpha) * 2.0 * std::exp(-p.bob.r * s.t6);
  EXPECT_NEAR(r.alice.realized_utility, expected_alice, 1e-12);
  EXPECT_NEAR(r.bob.realized_utility, expected_bob, 1e-12);
}

}  // namespace
}  // namespace swapgame::proto
