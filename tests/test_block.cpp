// Tests for the block layer (src/chain/block): sealing, hash-linking,
// Merkle commitments and inclusion proofs over a live ledger.
#include "chain/block.hpp"

#include <gtest/gtest.h>

#include "crypto/secret.hpp"
#include "math/rng.hpp"

namespace swapgame::chain {
namespace {

class BlockTest : public ::testing::Test {
 protected:
  BlockTest() : ledger_({ChainId::kChainA, 3.0, 1.0}, queue_),
                producer_(ledger_, queue_, /*block_interval=*/1.0) {
    ledger_.create_account(alice_, Amount::from_tokens(100.0));
    ledger_.create_account(bob_, Amount::from_tokens(100.0));
  }

  EventQueue queue_;
  Ledger ledger_;
  BlockProducer producer_;
  const Address alice_{"alice"};
  const Address bob_{"bob"};
};

TEST_F(BlockTest, ProducesEmptyBlocksOnSchedule) {
  producer_.start();
  queue_.run_until(5.5);
  ASSERT_EQ(producer_.blocks().size(), 5u);
  for (std::size_t i = 0; i < producer_.blocks().size(); ++i) {
    EXPECT_EQ(producer_.blocks()[i].height, i);
    EXPECT_DOUBLE_EQ(producer_.blocks()[i].sealed_at, 1.0 * (i + 1));
  }
  EXPECT_TRUE(producer_.verify_chain());
}

TEST_F(BlockTest, SealsConfirmedTransactions) {
  producer_.start();
  const TxId tx =
      ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  queue_.run_until(4.0);  // confirms at 3.0, sealed by the block at 3.0/4.0
  bool found = false;
  for (const Block& block : producer_.blocks()) {
    for (TxId id : block.transactions) {
      if (id == tx) found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(producer_.verify_chain());
}

TEST_F(BlockTest, EachTransactionSealedExactlyOnce) {
  producer_.start();
  std::vector<TxId> txs;
  for (int i = 0; i < 10; ++i) {
    txs.push_back(ledger_.submit(
        TransferPayload{alice_, bob_, Amount::from_tokens(0.1)}));
    queue_.run_until(queue_.now() + 0.4);
  }
  queue_.run_until(12.0);
  for (TxId tx : txs) {
    int count = 0;
    for (const Block& block : producer_.blocks()) {
      for (TxId id : block.transactions) {
        if (id == tx) ++count;
      }
    }
    EXPECT_EQ(count, 1) << "tx " << tx.value;
  }
}

TEST_F(BlockTest, HashChainLinksBlocks) {
  producer_.start();
  ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  queue_.run_until(6.0);
  const auto& blocks = producer_.blocks();
  ASSERT_GE(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].previous_hash, crypto::Digest256{});
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].previous_hash, blocks[i - 1].hash());
  }
}

TEST_F(BlockTest, InclusionProofRoundTrip) {
  producer_.start();
  std::vector<TxId> txs;
  for (int i = 0; i < 5; ++i) {
    txs.push_back(ledger_.submit(
        TransferPayload{alice_, bob_, Amount::from_tokens(0.5)}));
  }
  queue_.run_until(5.0);
  for (TxId tx : txs) {
    const auto proof = producer_.prove_inclusion(tx);
    ASSERT_TRUE(proof.has_value()) << "tx " << tx.value;
    EXPECT_TRUE(producer_.verify_inclusion(ledger_.transaction(tx), *proof));
  }
}

TEST_F(BlockTest, ProofForUnsealedTransactionIsNull) {
  producer_.start();
  const TxId tx =
      ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  queue_.run_until(0.5);  // neither confirmed nor sealed
  EXPECT_FALSE(producer_.prove_inclusion(tx).has_value());
}

TEST_F(BlockTest, ProofDoesNotVerifyAgainstDifferentTransaction) {
  producer_.start();
  const TxId tx1 =
      ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(1.0)});
  const TxId tx2 =
      ledger_.submit(TransferPayload{alice_, bob_, Amount::from_tokens(2.0)});
  queue_.run_until(5.0);
  const auto proof = producer_.prove_inclusion(tx1);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(producer_.verify_inclusion(ledger_.transaction(tx2), *proof));
}

TEST_F(BlockTest, TransactionDigestCoversPayloadFields) {
  // Different amounts must produce different digests (the Merkle leaf
  // commits to payload content, not just the id).
  Transaction a;
  a.id = TxId{1};
  a.payload = TransferPayload{alice_, bob_, Amount::from_tokens(1.0)};
  Transaction b = a;
  b.payload = TransferPayload{alice_, bob_, Amount::from_tokens(2.0)};
  EXPECT_NE(transaction_digest(a), transaction_digest(b));

  // HTLC kinds are also committed.
  math::Xoshiro256 rng(3);
  const crypto::Secret secret = crypto::Secret::generate(rng);
  Transaction c;
  c.id = TxId{2};
  c.payload = DeployHtlcPayload{alice_, bob_, Amount::from_tokens(1.0),
                                secret.commitment(), 10.0, HtlcKind::kStandard};
  Transaction d = c;
  d.payload = DeployHtlcPayload{alice_, bob_, Amount::from_tokens(1.0),
                                secret.commitment(), 10.0, HtlcKind::kInverse};
  EXPECT_NE(transaction_digest(c), transaction_digest(d));
}

TEST_F(BlockTest, StartTwiceThrows) {
  producer_.start();
  EXPECT_THROW(producer_.start(), std::logic_error);
}

TEST_F(BlockTest, RejectsNonPositiveInterval) {
  EXPECT_THROW(BlockProducer(ledger_, queue_, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::chain
