// Integration property tests: atomicity of the HTLC swap under EVERY
// strategy pairing and a battery of price paths.
//
// The protocol's safety claim (paper Section I): either both parties
// receive each other's assets, or each keeps/regains their own -- the only
// way to lose principal is Bob irrationally failing to claim after the
// secret is public (Section II-B's explicit warning), which requires a
// DefectorStrategy(kT4Claim).  Conservation of ledger supply must hold in
// every single run.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "agents/naive.hpp"
#include "agents/rational.hpp"
#include "proto/swap_protocol.hpp"

namespace swapgame::proto {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

enum class Kind {
  kRational,
  kHonest,
  kDefectT1,
  kDefectT2,
  kDefectT3,
  kDefectT4,
  kTrigger,
  kNoisy,
};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kRational: return "rational";
    case Kind::kHonest: return "honest";
    case Kind::kDefectT1: return "defect-t1";
    case Kind::kDefectT2: return "defect-t2";
    case Kind::kDefectT3: return "defect-t3";
    case Kind::kDefectT4: return "defect-t4";
    case Kind::kTrigger: return "trigger";
    case Kind::kNoisy: return "noisy";
  }
  return "?";
}

std::unique_ptr<agents::Strategy> make_strategy(Kind kind, agents::Role role,
                                                double q,
                                                std::uint64_t seed) {
  switch (kind) {
    case Kind::kRational:
      if (q > 0.0) {
        return std::make_unique<agents::CollateralRationalStrategy>(
            role, defaults(), 2.0, q);
      }
      return std::make_unique<agents::RationalStrategy>(role, defaults(), 2.0);
    case Kind::kHonest:
      return std::make_unique<agents::HonestStrategy>();
    case Kind::kDefectT1:
      return std::make_unique<agents::DefectorStrategy>(
          agents::Stage::kT1Initiate);
    case Kind::kDefectT2:
      return std::make_unique<agents::DefectorStrategy>(agents::Stage::kT2Lock);
    case Kind::kDefectT3:
      return std::make_unique<agents::DefectorStrategy>(
          agents::Stage::kT3Reveal);
    case Kind::kDefectT4:
      return std::make_unique<agents::DefectorStrategy>(
          agents::Stage::kT4Claim);
    case Kind::kTrigger:
      return std::make_unique<agents::TriggerStrategy>(0.15);
    case Kind::kNoisy:
      return std::make_unique<agents::NoisyStrategy>(
          std::make_unique<agents::HonestStrategy>(), 0.3, seed);
  }
  return nullptr;
}

struct PathCase {
  const char* name;
  std::map<chain::Hours, double> knots;
};

std::vector<PathCase> price_paths() {
  return {
      {"flat", {{0.0, 2.0}}},
      {"rally", {{0.0, 2.0}, {2.5, 2.6}, {6.5, 3.4}}},
      {"crash", {{0.0, 2.0}, {2.5, 1.4}, {6.5, 0.9}}},
      {"spike-then-revert", {{0.0, 2.0}, {2.5, 3.2}, {6.5, 2.0}}},
      {"dip-then-revert", {{0.0, 2.0}, {2.5, 1.1}, {6.5, 2.1}}},
      {"late-crash", {{0.0, 2.0}, {10.0, 0.5}}},
  };
}

struct GridCase {
  Kind alice;
  Kind bob;
  double collateral;
};

class AtomicityGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(AtomicityGrid, NoPrincipalLossExceptDocumentedT4Miss) {
  const GridCase grid = GetParam();
  for (const PathCase& pc : price_paths()) {
    SwapSetup setup;
    setup.params = defaults();
    setup.p_star = 2.0;
    setup.collateral = grid.collateral;
    const auto alice =
        make_strategy(grid.alice, agents::Role::kAlice, grid.collateral, 77);
    const auto bob =
        make_strategy(grid.bob, agents::Role::kBob, grid.collateral, 78);
    const SteppedPricePath path(pc.knots);
    const SwapResult r = run_swap(setup, *alice, *bob, path);

    const std::string label = std::string(kind_name(grid.alice)) + " vs " +
                              kind_name(grid.bob) + " on " + pc.name;

    // Invariant 1: ledger conservation, always.
    EXPECT_TRUE(r.conservation_ok) << label;

    // Invariant 2: principal safety.  Alice's principal: P* token-a came
    // back OR she holds the token-b.  (Collateral forfeiture is a separate,
    // intended penalty.)
    const bool alice_has_principal =
        r.alice.final_token_a >= setup.p_star - 1e-9 ||
        r.alice.final_token_b >= 1.0 - 1e-9;
    EXPECT_TRUE(alice_has_principal) << label;

    // Bob's principal: the token-b (his own or refunded) OR the token-a
    // proceeds -- except the documented irrational t4 miss.
    const bool bob_has_principal =
        r.bob.final_token_b >= 1.0 - 1e-9 ||
        r.bob.final_token_a >= setup.p_star - 1e-9 + grid.collateral * 0.0;
    if (r.outcome == SwapOutcome::kBobMissedT4) {
      EXPECT_FALSE(bob_has_principal) << label << " (documented loss path)";
      EXPECT_TRUE(grid.bob == Kind::kDefectT4 || grid.bob == Kind::kNoisy)
          << label << ": only an irrational Bob may reach kBobMissedT4";
    } else {
      EXPECT_TRUE(bob_has_principal) << label;
    }

    // Invariant 3: success <=> Table I balance change.
    if (r.outcome == SwapOutcome::kSuccess) {
      EXPECT_NEAR(r.alice.final_token_b, 1.0, 1e-9) << label;
      EXPECT_NEAR(r.bob.final_token_a, setup.p_star + r.bob_collateral_back,
                  1e-9)
          << label;
    }

    // Invariant 4: collateral accounting -- what left the vault equals what
    // was charged (2Q total) whenever the swap was engaged with Q > 0.
    if (grid.collateral > 0.0 && r.outcome != SwapOutcome::kNotInitiated) {
      EXPECT_NEAR(r.alice_collateral_back + r.bob_collateral_back,
                  2.0 * grid.collateral, 1e-9)
          << label;
    }
  }
}

std::vector<GridCase> all_pairings() {
  const std::vector<Kind> kinds = {Kind::kRational, Kind::kHonest,
                                   Kind::kDefectT1, Kind::kDefectT2,
                                   Kind::kDefectT3, Kind::kDefectT4,
                                   Kind::kTrigger,  Kind::kNoisy};
  std::vector<GridCase> cases;
  for (Kind a : kinds) {
    for (Kind b : kinds) {
      cases.push_back({a, b, 0.0});
    }
  }
  // A collateralized subset (full cross is covered at Q = 0).
  for (Kind a : {Kind::kRational, Kind::kHonest, Kind::kDefectT3}) {
    for (Kind b : {Kind::kRational, Kind::kDefectT2, Kind::kDefectT4}) {
      cases.push_back({a, b, 0.5});
    }
  }
  return cases;
}

std::string grid_name(const ::testing::TestParamInfo<GridCase>& info) {
  std::string name = std::string(kind_name(info.param.alice)) + "_vs_" +
                     kind_name(info.param.bob);
  if (info.param.collateral > 0.0) name += "_Q";
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPairings, AtomicityGrid,
                         ::testing::ValuesIn(all_pairings()), grid_name);

}  // namespace
}  // namespace swapgame::proto
