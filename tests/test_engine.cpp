// Tests for the batch run-plan engine (src/engine): canonical hashing,
// the cache-entry round trip, both cache tiers, DAG scheduling, and the
// two contracts the migrated benches rely on -- bit-identical results at
// any thread count (warm or cold cache) and kill-and-resume via the
// checkpoint manifest (docs/ENGINE.md).
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/batch_engine.hpp"
#include "engine/checkpoint.hpp"
#include "engine/result_cache.hpp"
#include "engine/run_spec.hpp"
#include "model/params.hpp"

namespace swapgame::engine {
namespace {

/// A cheap but non-trivial protocol MC cell; varying (p_star, seed) makes
/// distinct cells, keeping everything else canonical-equal.
RunSpec mc_spec(double p_star, std::uint64_t seed,
                std::size_t samples = 48) {
  RunSpec spec;
  spec.kind = CellKind::kMc;
  spec.label = "test-cell";
  spec.mc.evaluator = sim::McEvaluator::kProtocol;
  spec.mc.params = model::SwapParams::table3_defaults();
  spec.mc.p_star = p_star;
  spec.mc.config.samples = samples;
  spec.mc.config.seed = seed;
  return spec;
}

/// Serialized view of a whole batch -- the bit-exact comparison key (NaN
/// and signed zero compare by their canonical rendering, not by ==).
std::string serialize(const std::vector<RunResult>& results) {
  std::string out;
  for (const RunResult& r : results) out += r.to_entry("x") + "\n";
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f << content;
}

/// Fixture owning a throwaway directory for the disk-cache / checkpoint
/// tests.
class EngineFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/swapgame_engine_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST(RunSpecCanonical, VersionLineLeadsTheCanonicalString) {
  const std::string canon = mc_spec(2.0, 1).canonical_string();
  const std::string expected =
      "swapgame.runspec.v" + std::to_string(kRunSpecSchemaVersion) + "\n";
  EXPECT_EQ(canon.substr(0, expected.size()), expected);
}

TEST(RunSpecCanonical, PresentationAndExecutionFieldsDoNotSplitCells) {
  const RunSpec base = mc_spec(2.0, 7);
  RunSpec labeled = base;
  labeled.label = "completely different label";
  RunSpec threaded = base;
  threaded.mc.config.threads = 8;
  EXPECT_EQ(base.hash(), labeled.hash());
  EXPECT_EQ(base.hash(), threaded.hash());
}

TEST(RunSpecCanonical, EverySemanticFieldChangesTheHash) {
  const RunSpec base = mc_spec(2.0, 7);
  std::vector<RunSpec> variants;
  variants.push_back(base);
  variants.back().mc.p_star = 2.5;
  variants.push_back(base);
  variants.back().mc.config.seed = 8;
  variants.push_back(base);
  variants.back().mc.config.samples = 49;
  variants.push_back(base);
  variants.back().kind = CellKind::kAnalyticSr;
  variants.push_back(base);
  variants.back().mc.strategy = sim::McStrategy::kHonest;
  variants.push_back(base);
  variants.back().mc.config.trace_stride = 7;  // selects the stored trace
  variants.push_back(base);
  variants.back().mc.faults.chain_a.drop_prob = 0.1;
  variants.push_back(base);
  variants.back().mc.faults.bob_offline.push_back({1.0, 2.0});
  variants.push_back(base);
  variants.back().mechanism = sim::Mechanism::kPremium;
  variants.push_back(base);
  variants.back().grid_count = 40;
  for (const RunSpec& v : variants) EXPECT_NE(base.hash(), v.hash());
}

TEST(RunResultEntry, RoundTripsDoublesBitExactly) {
  RunResult result;
  result.samples = 12345;
  result.rounds = 7;
  result.set("third", 1.0 / 3.0);
  result.set("tenth", 0.1);
  result.set("tiny", std::numeric_limits<double>::denorm_min());
  result.set("huge", std::numeric_limits<double>::max());
  result.set("nan", std::numeric_limits<double>::quiet_NaN());
  result.set("inf", std::numeric_limits<double>::infinity());
  result.set("ninf", -std::numeric_limits<double>::infinity());
  result.trace = "{\"a\":1}\n{\"quote\":\"\\\"}\nline3";

  const std::string line = result.to_entry("deadbeef");
  const auto parsed = RunResult::parse_entry(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, "deadbeef");
  const RunResult& back = parsed->second;
  EXPECT_EQ(back.samples, result.samples);
  EXPECT_EQ(back.rounds, result.rounds);
  EXPECT_EQ(back.trace, result.trace);
  EXPECT_TRUE(std::isnan(back.at("nan")));
  EXPECT_EQ(back.at("inf"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(back.at("ninf"), -std::numeric_limits<double>::infinity());
  // Re-serializing reproduces the original line byte for byte -- the
  // property the %.17g / non-finite-marker rendering exists to provide.
  EXPECT_EQ(back.to_entry("deadbeef"), line);
}

TEST(RunResultEntry, RejectsMalformedAndStaleLines) {
  EXPECT_FALSE(RunResult::parse_entry("").has_value());
  EXPECT_FALSE(RunResult::parse_entry("not json at all").has_value());

  RunResult result;
  result.set("sr", 0.5);
  const std::string line = result.to_entry("abc");
  // Truncation anywhere inside the line must fail cleanly, not misparse.
  EXPECT_FALSE(
      RunResult::parse_entry(line.substr(0, line.size() - 1)).has_value());
  // A different schema version is rejected even when otherwise well
  // formed: stale entries become misses, never wrong results.
  const std::string current = "{\"v\":" + std::to_string(kRunSpecSchemaVersion);
  const std::string stale =
      "{\"v\":" + std::to_string(kRunSpecSchemaVersion + 1) +
      line.substr(current.size());
  EXPECT_FALSE(RunResult::parse_entry(stale).has_value());
}

TEST(ResultCacheLru, EvictsLeastRecentlyUsed) {
  ResultCache cache(2, "");
  RunResult r;
  r.set("sr", 1.0);
  cache.put("a", r);
  cache.put("b", r);
  ASSERT_TRUE(cache.get("a").has_value());  // a is now most recent
  cache.put("c", r);                        // capacity 2: evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.memory_hits(), 3u);
}

TEST(ResultCacheLru, ZeroCapacityDisablesTheMemoryTier) {
  ResultCache cache(0, "");
  RunResult r;
  r.set("sr", 1.0);
  cache.put("a", r);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.memory_hits(), 0u);
}

TEST_F(EngineFiles, DiskTierPersistsAcrossInstances) {
  RunResult r;
  r.samples = 99;
  r.set("sr", 0.25);
  r.trace = "{\"kind\":\"outcome\"}";
  {
    ResultCache writer(4, dir_);
    writer.put("cafe01", r);
  }
  ResultCache reader(4, dir_);
  const auto hit = reader.get("cafe01");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->to_entry("cafe01"), r.to_entry("cafe01"));
  EXPECT_EQ(reader.disk_hits(), 1u);
  // The disk hit was promoted into the LRU: the second lookup is a
  // memory hit.
  ASSERT_TRUE(reader.get("cafe01").has_value());
  EXPECT_EQ(reader.memory_hits(), 1u);
  EXPECT_EQ(reader.disk_hits(), 1u);
}

TEST_F(EngineFiles, DiskTierRejectsStaleMismatchedAndCorruptEntries) {
  RunResult r;
  r.set("sr", 0.5);
  // (a) schema-version mismatch, (b) entry whose embedded hash does not
  // match its filename (a moved/renamed file), (c) plain corruption.
  const std::string good = r.to_entry("aaaa");
  const std::string current = "{\"v\":" + std::to_string(kRunSpecSchemaVersion);
  write_file(dir_ + "/stale.json",
             "{\"v\":" + std::to_string(kRunSpecSchemaVersion + 1) +
                 good.substr(current.size()));
  write_file(dir_ + "/moved.json", good);
  write_file(dir_ + "/corrupt.json", "{\"v\":");
  ResultCache cache(4, dir_);
  EXPECT_FALSE(cache.get("stale").has_value());
  EXPECT_FALSE(cache.get("moved").has_value());
  EXPECT_FALSE(cache.get("corrupt").has_value());
  EXPECT_EQ(cache.disk_rejected(), 3u);
  EXPECT_EQ(cache.disk_hits(), 0u);
}

TEST_F(EngineFiles, CheckpointWriteLoadRoundTrip) {
  const std::string path = dir_ + "/manifest.jsonl";
  CheckpointFile checkpoint(path);
  ASSERT_TRUE(checkpoint.enabled());
  RunResult r1;
  r1.samples = 10;
  r1.set("sr", 0.5);
  RunResult r2;
  r2.set("sr", std::numeric_limits<double>::quiet_NaN());
  std::map<std::string, RunResult> entries{{"h1", r1}, {"h2", r2}};
  ASSERT_TRUE(checkpoint.write(entries));

  std::uint64_t rejected = 0;
  const auto loaded = checkpoint.load(&rejected);
  EXPECT_EQ(rejected, 0u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.at("h1").to_entry("h1"), r1.to_entry("h1"));
  EXPECT_TRUE(std::isnan(loaded.at("h2").at("sr")));

  // A torn/garbage line (which the atomic rewrite makes impossible, but a
  // stale manifest from another build could contain) is skipped, counted,
  // and does not poison the parseable entries around it.
  std::ofstream(path, std::ios::app | std::ios::binary) << "garbage line\n";
  const auto reloaded = checkpoint.load(&rejected);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(reloaded.size(), 2u);

  checkpoint.remove();
  EXPECT_TRUE(checkpoint.load().empty());
}

TEST(CheckpointFile, EmptyPathDisablesCheckpointing) {
  const CheckpointFile disabled{""};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_TRUE(disabled.load().empty());
}

TEST(BatchEngineDag, RejectsCyclesAndOutOfRangeDeps) {
  EngineConfig config;
  config.threads = 1;
  BatchEngine engine(config);
  std::vector<BatchNode> cycle(2);
  cycle[0].spec = mc_spec(2.0, 1);
  cycle[1].spec = mc_spec(2.5, 2);
  cycle[0].deps = {1};
  cycle[1].deps = {0};
  EXPECT_THROW((void)engine.run_batch(cycle), std::invalid_argument);

  std::vector<BatchNode> dangling(1);
  dangling[0].spec = mc_spec(2.0, 1);
  dangling[0].deps = {5};
  EXPECT_THROW((void)engine.run_batch(dangling), std::invalid_argument);
}

TEST(BatchEngineDag, DedupesIdenticalSpecsWithinABatch) {
  EngineConfig config;
  config.threads = 1;
  BatchEngine engine(config);
  RunSpec duplicate = mc_spec(2.0, 3);
  duplicate.label = "same cell, different label";  // not a semantic split
  const std::vector<RunSpec> specs{mc_spec(2.0, 3), duplicate,
                                   mc_spec(2.5, 4)};
  const std::vector<RunResult> results = engine.run_batch(specs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].to_entry("x"), results[1].to_entry("x"));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cells_total, 3u);
  EXPECT_EQ(stats.cells_run, 2u);  // the duplicate was served, not re-run
  EXPECT_EQ(stats.memory_hits, 1u);
}

TEST(BatchEngineDeterminism, SerialAndPooledBatchesBitIdentical) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(mc_spec(1.8 + 0.1 * i, 100 + i));
  }
  specs[2].mc.config.trace_stride = 7;  // exercise the stored-trace path

  EngineConfig serial;
  serial.threads = 1;
  BatchEngine one(serial);
  EngineConfig pooled;
  pooled.threads = 8;
  BatchEngine eight(pooled);
  const auto a = one.run_batch(specs);
  const auto b = eight.run_batch(specs);
  EXPECT_EQ(serialize(a), serialize(b));
  EXPECT_FALSE(a[2].trace.empty());
}

TEST_F(EngineFiles, KillAndResumeIsBitIdentical) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 5; ++i) {
    specs.push_back(mc_spec(1.9 + 0.1 * i, 500 + i));
  }

  EngineConfig plain;
  plain.threads = 1;
  BatchEngine baseline(plain);
  const auto expected = baseline.run_batch(specs);

  // "Kill" after two evaluated cells: the budgeted run checkpoints what it
  // finished and returns incomplete placeholders for the rest.
  const std::string manifest = dir_ + "/manifest.jsonl";
  EngineConfig interrupted_config;
  interrupted_config.threads = 1;
  interrupted_config.checkpoint_path = manifest;
  interrupted_config.checkpoint_every = 1;
  interrupted_config.max_cells = 2;
  BatchEngine interrupted(interrupted_config);
  const auto partial = interrupted.run_batch(specs);
  EXPECT_EQ(interrupted.stats().cells_run, 2u);
  EXPECT_EQ(interrupted.stats().cells_skipped, 3u);
  EXPECT_TRUE(partial[0].complete);
  EXPECT_TRUE(partial[1].complete);
  EXPECT_FALSE(partial[4].complete);

  // Restarting from the manifest re-runs only the remainder, at either
  // thread count, and the assembled batch is bit-identical to the
  // uninterrupted baseline.  (Each resume's final flush completes the
  // manifest, so restore the interrupted 2-cell snapshot between runs.)
  std::ifstream snapshot_in(manifest, std::ios::binary);
  const std::string snapshot((std::istreambuf_iterator<char>(snapshot_in)),
                             std::istreambuf_iterator<char>());
  snapshot_in.close();
  for (const unsigned threads : {1u, 8u}) {
    write_file(manifest, snapshot);
    EngineConfig resumed_config;
    resumed_config.threads = threads;
    resumed_config.checkpoint_path = manifest;
    BatchEngine resumed(resumed_config);
    const auto results = resumed.run_batch(specs);
    EXPECT_EQ(serialize(results), serialize(expected)) << threads;
    EXPECT_EQ(resumed.stats().cells_resumed, 2u) << threads;
    EXPECT_EQ(resumed.stats().cells_run, 3u) << threads;
  }
}

TEST_F(EngineFiles, WarmCacheServesTheWholeBatchWithoutSampling) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(mc_spec(1.9 + 0.1 * i, 900 + i));
  }
  specs[1].mc.config.trace_stride = 5;  // traces must replay from cache

  EngineConfig config;
  config.threads = 1;
  config.cache_dir = dir_;
  BatchEngine cold(config);
  const auto first = cold.run_batch(specs);
  EXPECT_EQ(cold.stats().cells_run, 4u);
  EXPECT_GT(cold.stats().mc_samples_run, 0u);

  // A fresh engine on the same cache directory (fresh process, empty LRU)
  // answers entirely from disk: zero cells evaluated, zero MC samples
  // drawn, byte-identical results including the stored trace.
  BatchEngine warm(config);
  const auto second = warm.run_batch(specs);
  EXPECT_EQ(serialize(second), serialize(first));
  const EngineStats stats = warm.stats();
  EXPECT_EQ(stats.cells_run, 0u);
  EXPECT_EQ(stats.mc_samples_run, 0u);
  EXPECT_EQ(stats.disk_hits, 4u);
  EXPECT_EQ(stats.mc_samples_cached, cold.stats().mc_samples_run);
  EXPECT_FALSE(second[1].trace.empty());
  EXPECT_EQ(second[1].trace, first[1].trace);
}

}  // namespace
}  // namespace swapgame::engine
