// Standalone tests of the collateral Oracle's settlement rules
// (src/proto/oracle), exercised directly against two ledgers.
#include "proto/oracle.hpp"

#include <gtest/gtest.h>

#include "crypto/secret.hpp"
#include "math/rng.hpp"
#include "model/params.hpp"

namespace swapgame::proto {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : chain_a_({chain::ChainId::kChainA, 3.0, 1.0}, queue_),
        chain_b_({chain::ChainId::kChainB, 4.0, 1.0}, queue_) {
    chain_a_.create_account(alice_, chain::Amount::from_tokens(5.0));
    chain_a_.create_account(bob_, chain::Amount::from_tokens(5.0));
    chain_b_.create_account(alice_, chain::Amount{});
    chain_b_.create_account(bob_, chain::Amount::from_tokens(1.0));
    math::Xoshiro256 rng(555);
    secret_ = crypto::Secret::generate(rng);
    schedule_ = model::idealized_schedule(model::SwapParams::table3_defaults(), 0.0);
    chain_a_.charge_collateral(alice_, q_);
    chain_a_.charge_collateral(bob_, q_);
  }

  CollateralOracle make_oracle() {
    return CollateralOracle(queue_, chain_a_, chain_b_, alice_, bob_, q_);
  }

  void bob_locks() {
    chain_b_.submit(chain::DeployHtlcPayload{
        bob_, alice_, chain::Amount::from_tokens(1.0), secret_.commitment(),
        schedule_.t_b});
  }

  void alice_reveals(chain::Hours at) {
    queue_.run_until(at);
    const chain::HtlcContract* contract =
        chain_b_.find_htlc_by_hash(secret_.commitment());
    ASSERT_NE(contract, nullptr);
    chain_b_.submit(chain::ClaimHtlcPayload{contract->id, secret_, alice_});
  }

  chain::EventQueue queue_;
  chain::Ledger chain_a_;
  chain::Ledger chain_b_;
  const chain::Address alice_{"alice"};
  const chain::Address bob_{"bob"};
  const chain::Amount q_ = chain::Amount::from_tokens(0.5);
  crypto::Secret secret_;
  model::Schedule schedule_;
};

TEST_F(OracleTest, BothFulfilledReturnsBothCollaterals) {
  CollateralOracle oracle = make_oracle();
  oracle.arm(secret_.commitment(), schedule_);
  queue_.run_until(schedule_.t2);
  bob_locks();
  alice_reveals(schedule_.t3);
  queue_.run();
  EXPECT_DOUBLE_EQ(oracle.released_to_alice(), 0.5);
  EXPECT_DOUBLE_EQ(oracle.released_to_bob(), 0.5);
  EXPECT_EQ(chain_a_.vault_total(), chain::Amount{});
  // alice: 5 - 0.5 charged + 0.5 back = 5.
  EXPECT_EQ(chain_a_.balance(alice_), chain::Amount::from_tokens(4.5 + 0.5));
}

TEST_F(OracleTest, BobNeverLocksAliceGetsBoth) {
  CollateralOracle oracle = make_oracle();
  oracle.arm(secret_.commitment(), schedule_);
  queue_.run();
  EXPECT_DOUBLE_EQ(oracle.released_to_alice(), 1.0);
  EXPECT_DOUBLE_EQ(oracle.released_to_bob(), 0.0);
  EXPECT_EQ(chain_a_.balance(alice_), chain::Amount::from_tokens(5.5));
  EXPECT_EQ(chain_a_.balance(bob_), chain::Amount::from_tokens(4.5));
}

TEST_F(OracleTest, AliceNeverRevealsBobGetsHers) {
  CollateralOracle oracle = make_oracle();
  oracle.arm(secret_.commitment(), schedule_);
  queue_.run_until(schedule_.t2);
  bob_locks();
  queue_.run();
  EXPECT_DOUBLE_EQ(oracle.released_to_alice(), 0.0);
  EXPECT_DOUBLE_EQ(oracle.released_to_bob(), 1.0);  // own Q + Alice's Q
  EXPECT_EQ(chain_a_.balance(bob_), chain::Amount::from_tokens(5.5));
}

TEST_F(OracleTest, ReleaseTimingMatchesPaper) {
  // Bob's collateral releases at t3 and confirms tau_a later; Alice's at
  // t4 + tau_a (paper Section IV-1/2).
  CollateralOracle oracle = make_oracle();
  oracle.arm(secret_.commitment(), schedule_);
  queue_.run_until(schedule_.t2);
  bob_locks();
  alice_reveals(schedule_.t3);
  // Just before t3 + tau_a: bob not yet paid.
  queue_.run_until(schedule_.t3 + 3.0 - 0.001);
  EXPECT_EQ(chain_a_.balance(bob_), chain::Amount::from_tokens(4.5));
  queue_.run_until(schedule_.t3 + 3.0);
  EXPECT_EQ(chain_a_.balance(bob_), chain::Amount::from_tokens(5.0));
  // Alice's release confirms at t4 + tau_a.
  queue_.run_until(schedule_.t4 + 3.0 - 0.001);
  EXPECT_EQ(chain_a_.balance(alice_), chain::Amount::from_tokens(4.5));
  queue_.run_until(schedule_.t4 + 3.0);
  EXPECT_EQ(chain_a_.balance(alice_), chain::Amount::from_tokens(5.0));
}

TEST_F(OracleTest, SecretVisibleOnlyAfterEpsilonStillCounts) {
  // Alice reveals right at t3; the claim is visible at t3 + eps_b = t4,
  // exactly when the oracle checks -- she must be credited.
  CollateralOracle oracle = make_oracle();
  oracle.arm(secret_.commitment(), schedule_);
  queue_.run_until(schedule_.t2);
  bob_locks();
  alice_reveals(schedule_.t3);
  queue_.run();
  EXPECT_DOUBLE_EQ(oracle.released_to_alice(), 0.5);
}

}  // namespace
}  // namespace swapgame::proto
