// Unit tests for streaming statistics (src/math/stats).
#include "math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace swapgame::math {
namespace {

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingleton) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.standard_error(), 0.0);
  stats.add(3.0);
  EXPECT_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  RunningStats stats;
  const double offset = 1e9;
  for (double x : {4.0, 7.0, 13.0, 16.0}) stats.add(offset + x);
  EXPECT_NEAR(stats.variance(), 30.0, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 1.5);
}

TEST(RunningStats, CiHalfWidthScalesWithConfidence) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(i % 10);
  const double ci90 = stats.ci_half_width(0.90);
  const double ci99 = stats.ci_half_width(0.99);
  EXPECT_GT(ci99, ci90);
  EXPECT_THROW((void)stats.ci_half_width(0.0), std::invalid_argument);
  EXPECT_THROW((void)stats.ci_half_width(1.0), std::invalid_argument);
}

TEST(BinomialCounter, ProportionAndMerge) {
  BinomialCounter c;
  EXPECT_EQ(c.proportion(), 0.0);
  for (int i = 0; i < 30; ++i) c.add(i % 3 == 0);
  EXPECT_EQ(c.trials(), 30u);
  EXPECT_EQ(c.successes(), 10u);
  EXPECT_NEAR(c.proportion(), 1.0 / 3.0, 1e-12);

  BinomialCounter d;
  for (int i = 0; i < 10; ++i) d.add(true);
  c.merge(d);
  EXPECT_EQ(c.trials(), 40u);
  EXPECT_EQ(c.successes(), 20u);
}

TEST(BinomialCounter, WilsonIntervalCoversProportion) {
  BinomialCounter c;
  for (int i = 0; i < 100; ++i) c.add(i < 70);
  const auto ci = c.wilson_interval(0.95);
  EXPECT_LT(ci.lo, 0.7);
  EXPECT_GT(ci.hi, 0.7);
  EXPECT_GT(ci.lo, 0.59);
  EXPECT_LT(ci.hi, 0.79);
}

TEST(BinomialCounter, WilsonIntervalEdgeCases) {
  BinomialCounter empty;
  const auto ci = empty.wilson_interval();
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);

  BinomialCounter all;
  for (int i = 0; i < 50; ++i) all.add(true);
  const auto ca = all.wilson_interval();
  EXPECT_GT(ca.lo, 0.9);
  EXPECT_LE(ca.hi, 1.0 + 1e-12);

  EXPECT_THROW((void)all.wilson_interval(1.5), std::invalid_argument);
}

TEST(Histogram, BinsCountsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i * 0.1);  // 0.0 .. 9.9 uniform
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_EQ(h.count(b), 10u) << "bin " << b;
    EXPECT_NEAR(h.density(b), 0.1, 1e-12);
  }
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  // Non-finite bounds must throw instead of poisoning width_ -- the ctor
  // used to compute the bin width before validating anything.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Histogram(0.0, inf, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(-inf, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(nan, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, nan, 10), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::math
