// Unit tests for the fixed-point Amount type and chain ids (src/chain/types).
#include "chain/types.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace swapgame::chain {
namespace {

TEST(Amount, FromTokensRoundTrips) {
  EXPECT_DOUBLE_EQ(Amount::from_tokens(2.0).tokens(), 2.0);
  EXPECT_DOUBLE_EQ(Amount::from_tokens(0.0).tokens(), 0.0);
  EXPECT_DOUBLE_EQ(Amount::from_tokens(1.5).tokens(), 1.5);
  EXPECT_EQ(Amount::from_tokens(1.0).units(), Amount::kUnitsPerToken);
}

TEST(Amount, RoundsToNearestBaseUnit) {
  // 1e-9 tokens = 1 unit; half a unit rounds away from zero via std::round.
  EXPECT_EQ(Amount::from_tokens(1e-9).units(), 1);
  EXPECT_EQ(Amount::from_tokens(0.4e-9).units(), 0);
  EXPECT_EQ(Amount::from_tokens(0.6e-9).units(), 1);
}

TEST(Amount, FromTokensRejectsInvalid) {
  EXPECT_THROW((void)Amount::from_tokens(-1.0), std::invalid_argument);
  EXPECT_THROW((void)Amount::from_tokens(std::nan("")), std::invalid_argument);
  EXPECT_THROW(
      (void)Amount::from_tokens(std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  EXPECT_THROW((void)Amount::from_tokens(1e20), std::overflow_error);
}

TEST(Amount, FromUnitsRejectsNegative) {
  EXPECT_THROW((void)Amount::from_units(-1), std::invalid_argument);
  EXPECT_EQ(Amount::from_units(5).units(), 5);
}

TEST(Amount, ArithmeticIsExact) {
  const Amount a = Amount::from_tokens(0.1);
  Amount sum;
  for (int i = 0; i < 10; ++i) sum += a;
  // 10 * 0.1 == 1.0 exactly in fixed point (no binary-float drift).
  EXPECT_EQ(sum, Amount::from_tokens(1.0));
}

TEST(Amount, SubtractionUnderflowThrows) {
  const Amount small = Amount::from_tokens(1.0);
  const Amount big = Amount::from_tokens(2.0);
  EXPECT_THROW((void)(small - big), std::underflow_error);
  EXPECT_EQ((big - small).tokens(), 1.0);
}

TEST(Amount, AdditionOverflowThrows) {
  const Amount max = Amount::from_units(std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW((void)(max + Amount::from_units(1)), std::overflow_error);
}

TEST(Amount, Comparisons) {
  EXPECT_LT(Amount::from_tokens(1.0), Amount::from_tokens(2.0));
  EXPECT_EQ(Amount::from_tokens(1.0), Amount::from_units(Amount::kUnitsPerToken));
  EXPECT_TRUE(Amount{}.is_zero());
  EXPECT_FALSE(Amount::from_tokens(0.5).is_zero());
}

TEST(Amount, ToStringFixedPoint) {
  EXPECT_EQ(Amount::from_tokens(2.0).to_string(), "2.000000000");
  EXPECT_EQ(Amount::from_tokens(0.5).to_string(), "0.500000000");
  EXPECT_EQ(Amount::from_units(1).to_string(), "0.000000001");
}

TEST(ChainId, Names) {
  EXPECT_STREQ(to_string(ChainId::kChainA), "Chain_a");
  EXPECT_STREQ(to_string(ChainId::kChainB), "Chain_b");
}

TEST(Address, ValueSemantics) {
  const Address a{"alice"};
  const Address b{"alice"};
  const Address c{"bob"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);  // lexicographic
}

}  // namespace
}  // namespace swapgame::chain
