// Tests for the success-rate sensitivity analysis (src/model/sensitivity).
#include "model/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/basic_game.hpp"

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(Sensitivity, ValidatesInput) {
  EXPECT_THROW((void)success_rate_sensitivities(defaults(), 2.0, 0.0),
               std::invalid_argument);
  // Non-viable point: SR = 0 (tiny alpha kills the band).
  SwapParams dead = defaults();
  dead.bob.alpha = 0.0;
  dead.bob.r = 0.05;
  EXPECT_THROW((void)success_rate_sensitivities(dead, 2.0),
               std::invalid_argument);
}

TEST(Sensitivity, SignsMatchSectionIIIF) {
  const SensitivityReport report = success_rate_sensitivities(defaults(), 2.0);
  EXPECT_NEAR(report.success_rate, 0.7143, 2e-3);
  EXPECT_LT(report["sigma"].derivative, 0.0);    // volatility hurts
  EXPECT_GT(report["mu"].derivative, 0.0);       // drift helps
  EXPECT_GT(report["alpha_A"].derivative, 0.0);  // premiums help
  EXPECT_GT(report["alpha_B"].derivative, 0.0);
  // Bob's impatience hurts (narrows his lock band)...
  EXPECT_LT(report["r_B"].derivative, 0.0);
  // ...but Alice's impatience RAISES the post-initiation SR: her refund
  // arrives later (eps_b + 2 tau_a) than the token-b (tau_b), so a more
  // impatient Alice has a LOWER reveal cutoff and defects less.  The
  // Section III-F claim "higher r narrows the viable range" is about the
  // feasibility band, which is a different object than conditional SR.
  EXPECT_GT(report["r_A"].derivative, 0.0);
  EXPECT_LT(report["tau_a"].derivative, 0.0);    // slow chains hurt
  EXPECT_LT(report["tau_b"].derivative, 0.0);
}

TEST(Sensitivity, VolatilityIsTheDominantLever) {
  // The paper's headline sensitivity claim: sigma "significantly affects"
  // SR.  In elasticity terms it tops the market parameters.
  const SensitivityReport report = success_rate_sensitivities(defaults(), 2.0);
  const double sigma_el = std::abs(report["sigma"].elasticity);
  EXPECT_GT(sigma_el, std::abs(report["mu"].elasticity));
  EXPECT_GT(sigma_el, std::abs(report["r_A"].elasticity));
  EXPECT_GT(sigma_el, std::abs(report["tau_a"].elasticity));
  EXPECT_GT(sigma_el, std::abs(report["eps_b"].elasticity));
}

TEST(Sensitivity, SortedByAbsoluteElasticity) {
  const SensitivityReport report = success_rate_sensitivities(defaults(), 2.0);
  for (std::size_t i = 1; i < report.parameters.size(); ++i) {
    EXPECT_GE(std::abs(report.parameters[i - 1].elasticity),
              std::abs(report.parameters[i].elasticity) - 1e-12);
  }
}

TEST(Sensitivity, DerivativesMatchDirectRecomputation) {
  // Spot-check sigma against an independent wide finite difference.
  const SensitivityReport report = success_rate_sensitivities(defaults(), 2.0);
  SwapParams up = defaults();
  up.gbm.sigma = 0.105;
  SwapParams down = defaults();
  down.gbm.sigma = 0.095;
  const double wide = (BasicGame(up, 2.0).success_rate() -
                       BasicGame(down, 2.0).success_rate()) /
                      0.01;
  EXPECT_NEAR(report["sigma"].derivative, wide,
              0.05 * std::abs(wide) + 1e-3);
}

TEST(Sensitivity, PStarDerivativeChangesSignAcrossTheOptimum) {
  // SR is concave in P*: the derivative is positive below the optimum
  // (~2.08) and negative above it.
  const SensitivityReport low = success_rate_sensitivities(defaults(), 1.8);
  const SensitivityReport high = success_rate_sensitivities(defaults(), 2.4);
  EXPECT_GT(low["p_star"].derivative, 0.0);
  EXPECT_LT(high["p_star"].derivative, 0.0);
}

TEST(Sensitivity, UnknownParameterThrows) {
  const SensitivityReport report = success_rate_sensitivities(defaults(), 2.0);
  EXPECT_THROW((void)report["bogus"], std::out_of_range);
}

}  // namespace
}  // namespace swapgame::model
