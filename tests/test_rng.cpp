// Unit tests for the PRNG stack (src/math/rng).
#include "math/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "math/stats.hpp"

namespace swapgame::math {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for seed 0 (widely published SplitMix64 vectors).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, StreamsAreDecorrelated) {
  const Xoshiro256 base(42);
  Xoshiro256 s0 = base.stream(0);
  Xoshiro256 s1 = base.stream(1);
  Xoshiro256 s2 = base.stream(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(s0());
    seen.insert(s1());
    seen.insert(s2());
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across streams
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanAndVarianceMatchUniform) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(uniform01(rng));
  EXPECT_NEAR(stats.mean(), 0.5, 0.003);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(NormalInverseCdfDraw, MomentsMatchStandardNormal) {
  Xoshiro256 rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(normal_inverse_cdf_draw(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(NormalInverseCdfDraw, TailProbabilities) {
  Xoshiro256 rng(17);
  int beyond2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(normal_inverse_cdf_draw(rng)) > 2.0) ++beyond2;
  }
  // P[|Z| > 2] = 4.55% +/- sampling noise.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.004);
}

TEST(NormalBoxMuller, MomentsMatchStandardNormal) {
  Xoshiro256 rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const NormalPair pair = normal_box_muller(rng);
    stats.add(pair.first);
    stats.add(pair.second);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(NormalBoxMuller, PairComponentsUncorrelated) {
  Xoshiro256 rng(23);
  double sum_xy = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const NormalPair pair = normal_box_muller(rng);
    sum_xy += pair.first * pair.second;
  }
  EXPECT_NEAR(sum_xy / n, 0.0, 0.02);
}

}  // namespace
}  // namespace swapgame::math
