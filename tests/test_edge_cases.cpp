// Edge-case and invariance tests across the model and protocol:
// scale invariance (the game is homogeneous of degree zero in prices),
// asymmetric chain timings, extreme magnitudes, and protocol behaviour at
// unusual but valid parameter corners.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/naive.hpp"
#include "agents/rational.hpp"
#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"
#include "model/premium_game.hpp"
#include "proto/swap_protocol.hpp"

namespace swapgame {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

TEST(ScaleInvariance, SuccessRateIsHomogeneousOfDegreeZero) {
  // Rescaling the numeraire (P_t0, P*, and any deposits by a common factor)
  // must leave every decision, and hence SR, unchanged: utilities are
  // linear in prices and decisions compare like against like.
  for (double lambda : {0.001, 0.1, 10.0, 1000.0}) {
    model::SwapParams scaled = defaults();
    scaled.p_t0 *= lambda;
    const model::BasicGame base(defaults(), 2.0);
    const model::BasicGame big(scaled, 2.0 * lambda);
    EXPECT_NEAR(big.success_rate(), base.success_rate(), 1e-6)
        << "lambda=" << lambda;
    EXPECT_NEAR(big.alice_t3_cutoff(), base.alice_t3_cutoff() * lambda,
                1e-9 * lambda);
    EXPECT_NEAR(big.alice_t1_cont(), base.alice_t1_cont() * lambda,
                1e-6 * lambda);
  }
}

TEST(ScaleInvariance, CollateralAndPremiumScaleWithPrices) {
  const double lambda = 50.0;
  model::SwapParams scaled = defaults();
  scaled.p_t0 *= lambda;
  const model::CollateralGame base_c(defaults(), 2.0, 0.5);
  const model::CollateralGame big_c(scaled, 2.0 * lambda, 0.5 * lambda);
  EXPECT_NEAR(big_c.success_rate(), base_c.success_rate(), 1e-6);
  const model::PremiumGame base_p(defaults(), 2.0, 0.3);
  const model::PremiumGame big_p(scaled, 2.0 * lambda, 0.3 * lambda);
  EXPECT_NEAR(big_p.success_rate(), base_p.success_rate(), 1e-6);
}

TEST(AsymmetricTimings, FastChainBSlowChainA) {
  // tau_b < tau_a inverts the paper's default ordering; everything must
  // still hold together (Eq. 3 only constrains eps_b < tau_b).
  model::SwapParams p = defaults();
  p.tau_a = 5.0;
  p.tau_b = 1.5;
  p.eps_b = 0.5;
  const model::BasicGame game(p, 2.0);
  const double sr = game.success_rate();
  EXPECT_GT(sr, 0.0);
  EXPECT_LE(sr, 1.0);
  // Protocol agrees with the model on a deterministic path.
  agents::RationalStrategy alice(agents::Role::kAlice, p, 2.0);
  agents::RationalStrategy bob(agents::Role::kBob, p, 2.0);
  proto::SwapSetup setup;
  setup.params = p;
  setup.p_star = 2.0;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
  // Timeline identities still hold (Eq. 13 with these taus).
  EXPECT_DOUBLE_EQ(r.schedule.t5, p.tau_a + 2.0 * p.tau_b);
}

TEST(AsymmetricTimings, SubHourChains) {
  // Fast-finality chains (minutes-scale): the model is unit-agnostic.
  model::SwapParams p = defaults();
  p.tau_a = 0.05;
  p.tau_b = 0.08;
  p.eps_b = 0.01;
  // Rescale rates so the discounting per step stays comparable.
  p.alice.r = 0.6;
  p.bob.r = 0.6;
  const model::BasicGame game(p, 2.0);
  EXPECT_GT(game.success_rate(), 0.0);
  EXPECT_LE(game.success_rate(), 1.0);
  const auto band = game.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_GT(band->hi, band->lo);
}

TEST(ExtremePreferences, HugePremiumNearCertainReveal) {
  model::SwapParams p = defaults();
  p.alice.alpha = 10.0;  // Alice desperately wants token-b
  const model::BasicGame game(p, 2.0);
  // Her cutoff collapses toward zero and SR approaches Bob's band mass.
  EXPECT_LT(game.alice_t3_cutoff(), 0.2);
  EXPECT_GT(game.success_rate(), 0.8);
}

TEST(ExtremePreferences, NearZeroPremiumStillWellDefined) {
  model::SwapParams p = defaults();
  p.alice.alpha = 1e-9;
  p.bob.alpha = 1e-9;
  const model::BasicGame game(p, 2.0);
  const double sr = game.success_rate();
  EXPECT_GE(sr, 0.0);
  EXPECT_LE(sr, 1.0);
}

TEST(ProtocolEdge, TinyAmountsSurviveFixedPointRounding) {
  // P* near the fixed-point resolution: the ledger rounds to 1e-9 tokens;
  // balances must stay consistent.
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 1e-6;
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
  EXPECT_NEAR(r.bob.final_token_a, 1e-6, 1e-12);
}

TEST(ProtocolEdge, LargeAmounts) {
  proto::SwapSetup setup;
  setup.params = defaults();
  setup.p_star = 1e6;
  agents::HonestStrategy alice, bob;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
  EXPECT_DOUBLE_EQ(r.bob.final_token_a, 1e6);
}

TEST(ProtocolEdge, EpsilonCloseToTauStillOrdersEvents) {
  model::SwapParams p = defaults();
  p.eps_b = 3.999;  // just under tau_b = 4 (Eq. 3 boundary)
  agents::HonestStrategy alice, bob;
  proto::SwapSetup setup;
  setup.params = p;
  setup.p_star = 2.0;
  const proto::ConstantPricePath path(2.0);
  const proto::SwapResult r = proto::run_swap(setup, alice, bob, path);
  EXPECT_EQ(r.outcome, proto::SwapOutcome::kSuccess);
  EXPECT_TRUE(r.conservation_ok);
}

TEST(ModelEdge, CutoffIndifferenceUnderRandomDepositsEverywhere) {
  // Region-boundary indifference for the deposit games across a grid of
  // (P*, deposit) corners, including where the cutoff clamps to zero.
  for (double p_star : {0.7, 2.0, 3.5}) {
    for (double d : {0.01, 0.7, 3.0}) {
      const model::CollateralGame cg(defaults(), p_star, d);
      if (cg.alice_t3_cutoff() > 0.0) {
        EXPECT_NEAR(cg.alice_t3_cont(cg.alice_t3_cutoff()),
                    cg.alice_t3_stop(), 1e-9 * (1.0 + cg.alice_t3_stop()))
            << "collateral p*=" << p_star << " d=" << d;
      }
      const model::PremiumGame pg(defaults(), p_star, d);
      if (pg.alice_t3_cutoff() > 0.0) {
        EXPECT_NEAR(pg.alice_t3_cont(pg.alice_t3_cutoff()),
                    pg.alice_t3_stop(), 1e-9 * (1.0 + pg.alice_t3_stop()))
            << "premium p*=" << p_star << " d=" << d;
      }
    }
  }
}

}  // namespace
}  // namespace swapgame
