// Tests for the collateralized game (src/model/collateral_game): Section IV
// thresholds, the odd-root continuation region (Fig. 7), viability sets
// (Fig. 8) and the SR-increases-with-Q claim (Fig. 9).
#include "model/collateral_game.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swapgame::model {
namespace {

SwapParams defaults() { return SwapParams::table3_defaults(); }

TEST(CollateralGame, ConstructorValidates) {
  EXPECT_THROW(CollateralGame(defaults(), 2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(CollateralGame(defaults(), 0.0, 0.5), std::invalid_argument);
  EXPECT_NO_THROW(CollateralGame(defaults(), 2.0, 0.0));
}

TEST(CollateralGame, ZeroCollateralReducesToBasicGame) {
  const CollateralGame cg(defaults(), 2.0, 0.0);
  const BasicGame& bg = cg.basic();
  EXPECT_NEAR(cg.alice_t3_cutoff(), bg.alice_t3_cutoff(), 1e-12);
  EXPECT_NEAR(cg.success_rate(), bg.success_rate(), 1e-9);
  for (double p : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(cg.alice_t3_cont(p), bg.alice_t3_cont(p), 1e-12);
    EXPECT_NEAR(cg.bob_t2_cont(p), bg.bob_t2_cont(p), 1e-9);
    EXPECT_NEAR(cg.alice_t2_cont(p), bg.alice_t2_cont(p), 1e-9);
  }
  // Continuation region equals the basic band.
  const auto band = bg.bob_t2_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_TRUE(cg.bob_decision_t2(0.5 * (band->lo + band->hi)) == Action::kCont);
  EXPECT_TRUE(cg.bob_decision_t2(band->lo * 0.5) == Action::kStop);
}

TEST(CollateralGame, T3CutoffDecreasesWithCollateral) {
  // Eq. (34): the recovery term shifts the cutoff down.
  double prev = CollateralGame(defaults(), 2.0, 0.0).alice_t3_cutoff();
  for (double q : {0.2, 0.5, 1.0, 1.5}) {
    const double cut = CollateralGame(defaults(), 2.0, q).alice_t3_cutoff();
    EXPECT_LT(cut, prev) << "q=" << q;
    prev = cut;
  }
}

TEST(CollateralGame, T3CutoffClampsToZeroForLargeCollateral) {
  // When the discounted collateral recovery exceeds the discounted refund,
  // Alice reveals at any price (max(.., 0) in Eq. (34)).
  const CollateralGame game(defaults(), 2.0, 2.5);
  EXPECT_EQ(game.alice_t3_cutoff(), 0.0);
  EXPECT_EQ(game.alice_decision_t3(0.0001), Action::kCont);
}

TEST(CollateralGame, T3IndifferenceAtPositiveCutoff) {
  const CollateralGame game(defaults(), 2.0, 0.5);
  const double cut = game.alice_t3_cutoff();
  ASSERT_GT(cut, 0.0);
  EXPECT_NEAR(game.alice_t3_cont(cut), game.alice_t3_stop(), 1e-10);
}

TEST(CollateralGame, BobT2RegionIncludesZeroWithPositiveQ) {
  // Section IV-3 intuition 2: at near-zero prices Bob continues to recover
  // his collateral rather than keep a worthless token.
  const CollateralGame game(defaults(), 2.0, 0.3);
  EXPECT_EQ(game.bob_decision_t2(1e-6), Action::kCont);
  EXPECT_FALSE(game.bob_t2_region().empty());
  EXPECT_TRUE(game.bob_t2_region().contains(1e-6));
}

TEST(CollateralGame, BobT2RegionBoundariesAreIndifferencePoints) {
  const CollateralGame game(defaults(), 2.0, 0.3);
  for (const math::Interval& piece : game.bob_t2_region().intervals()) {
    if (piece.lo > 0.0) {
      EXPECT_NEAR(game.bob_t2_cont(piece.lo), game.bob_t2_stop(piece.lo), 1e-6);
    }
    if (std::isfinite(piece.hi)) {
      EXPECT_NEAR(game.bob_t2_cont(piece.hi), game.bob_t2_stop(piece.hi), 1e-6);
    }
  }
}

TEST(CollateralGame, OddNumberOfIndifferencePoints) {
  // Fig. 7: the indifference equation has 1 or 3 roots.  Count boundary
  // points (excluding 0 and infinity) over a Q grid.
  for (double q : {0.05, 0.1, 0.3, 0.6, 1.0}) {
    const CollateralGame game(defaults(), 2.0, q);
    int boundary_points = 0;
    for (const math::Interval& piece : game.bob_t2_region().intervals()) {
      if (piece.lo > 0.0) ++boundary_points;
      if (std::isfinite(piece.hi)) ++boundary_points;
    }
    EXPECT_TRUE(boundary_points == 1 || boundary_points == 3)
        << "q=" << q << " region=" << game.bob_t2_region().to_string();
  }
}

TEST(CollateralGame, SuccessRateIncreasesWithCollateral) {
  // Fig. 9's headline claim: SR increases with Q.
  double prev = -1.0;
  for (double q : {0.0, 0.2, 0.5, 1.0, 2.0}) {
    const double sr = CollateralGame(defaults(), 2.0, q).success_rate();
    EXPECT_GE(sr, prev - 1e-9) << "q=" << q;
    EXPECT_LE(sr, 1.0 + 1e-12);
    prev = sr;
  }
  EXPECT_NEAR(prev, 1.0, 1e-3);  // Q=2 drives SR to ~1 at defaults
}

TEST(CollateralGame, SuccessRateRegressionAtDefaults) {
  EXPECT_NEAR(CollateralGame(defaults(), 2.0, 0.5).success_rate(), 0.9688,
              2e-3);
}

TEST(CollateralGame, T1StopUtilitiesIncludeCollateral) {
  const CollateralGame game(defaults(), 2.2, 0.7);
  EXPECT_DOUBLE_EQ(game.alice_t1_stop(), 2.2 + 0.7);  // Eq. (38)
  EXPECT_DOUBLE_EQ(game.bob_t1_stop(), 2.0 + 0.7);    // Eq. (39)
}

TEST(CollateralGame, BothAgentsEngageAtDefaultRate) {
  for (double q : {0.0, 0.3, 1.0}) {
    const CollateralGame game(defaults(), 2.0, q);
    EXPECT_EQ(game.alice_decision_t1(), Action::kCont) << "q=" << q;
    EXPECT_EQ(game.bob_decision_t1(), Action::kCont) << "q=" << q;
    EXPECT_TRUE(game.engaged());
  }
}

TEST(CollateralGame, ViabilitySetsIntersectSensibly) {
  const CollateralViability v = collateral_viable_rates(defaults(), 0.5);
  EXPECT_FALSE(v.alice.empty());
  EXPECT_FALSE(v.bob.empty());
  EXPECT_FALSE(v.both.empty());
  // The intersection contains the default rate P* = 2.
  EXPECT_TRUE(v.both.contains(2.0));
  // And is contained in each side.
  for (const math::Interval& piece : v.both.intervals()) {
    const double mid = 0.5 * (piece.lo + piece.hi);
    EXPECT_TRUE(v.alice.contains(mid));
    EXPECT_TRUE(v.bob.contains(mid));
  }
}

TEST(CollateralGame, ViabilityConsistentWithEngagementDecisions) {
  const CollateralViability v = collateral_viable_rates(defaults(), 0.5);
  for (double p_star : {1.0, 1.5, 1.9, 2.3, 2.8, 4.0}) {
    const CollateralGame game(defaults(), p_star, 0.5);
    EXPECT_EQ(v.both.contains(p_star), game.engaged()) << "p_star=" << p_star;
  }
}

TEST(CollateralGame, T2RegionGrowsWithCollateral) {
  // Higher Q expands the feasible token-b price range at t2 (the mechanism
  // behind Fig. 9, per the paper's closing discussion of Section IV).
  const auto measure_within = [](const CollateralGame& g, double cap) {
    double total = 0.0;
    for (const math::Interval& piece : g.bob_t2_region().intervals()) {
      total += std::max(0.0, std::min(piece.hi, cap) - std::min(piece.lo, cap));
    }
    return total;
  };
  const CollateralGame g0(defaults(), 2.0, 0.0);
  const CollateralGame g1(defaults(), 2.0, 0.5);
  const CollateralGame g2(defaults(), 2.0, 1.0);
  EXPECT_LT(measure_within(g0, 20.0), measure_within(g1, 20.0));
  EXPECT_LT(measure_within(g1, 20.0), measure_within(g2, 20.0));
}

}  // namespace
}  // namespace swapgame::model
