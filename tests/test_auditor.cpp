// Tests for the runtime invariant auditor (src/chain/auditor): clean runs
// across every payload type, detection of supply/vault breaches (including
// the vault-release attribution bug the auditor originally caught), strict
// throw-on-violation mode, and whole-protocol audits.
#include "chain/auditor.hpp"

#include <gtest/gtest.h>

#include "agents/naive.hpp"
#include "chain/ledger.hpp"
#include "crypto/secret.hpp"
#include "math/rng.hpp"
#include "proto/swap_protocol.hpp"

namespace swapgame {
namespace {

constexpr double kTau = 3.0;
constexpr double kEps = 1.0;

class AuditorTest : public ::testing::Test {
 protected:
  AuditorTest()
      : ledger_({chain::ChainId::kChainA, kTau, kEps}, queue_) {
    ledger_.create_account(alice_, chain::Amount::from_tokens(10.0));
    ledger_.create_account(bob_, chain::Amount::from_tokens(5.0));
  }

  crypto::Secret make_secret(std::uint64_t seed = 1) {
    math::Xoshiro256 rng(seed);
    return crypto::Secret::generate(rng);
  }

  chain::EventQueue queue_;
  chain::Ledger ledger_;
  chain::InvariantAuditor auditor_;
  const chain::Address alice_{"alice"};
  const chain::Address bob_{"bob"};
};

TEST_F(AuditorTest, CleanAcrossEveryPayloadType) {
  // Property: a workload exercising every payload type -- success AND
  // failure paths -- keeps the auditor silent, and the supply conserved.
  auditor_.attach(ledger_);
  const chain::Amount supply = ledger_.total_supply();
  const crypto::Secret s1 = make_secret(1);
  const crypto::Secret s2 = make_secret(2);
  const crypto::Secret wrong = make_secret(3);

  // Transfers: one good, one bouncing.
  ledger_.submit(chain::TransferPayload{alice_, bob_,
                                        chain::Amount::from_tokens(1.0)});
  ledger_.submit(chain::TransferPayload{bob_, alice_,
                                        chain::Amount::from_tokens(50.0)});
  // Standard HTLC claimed with the right preimage after a failed attempt.
  const chain::TxId d1 = ledger_.submit(chain::DeployHtlcPayload{
      alice_, bob_, chain::Amount::from_tokens(2.0), s1.commitment(), 30.0});
  const chain::HtlcId c1 = ledger_.pending_contract_of(d1);
  // Standard HTLC left to its auto-refund at expiry.
  ledger_.submit(chain::DeployHtlcPayload{
      alice_, bob_, chain::Amount::from_tokens(1.5), s2.commitment(), 12.0});
  // Inverse escrow cancelled back before expiry.
  const chain::TxId d3 = ledger_.submit(chain::DeployHtlcPayload{
      alice_, bob_, chain::Amount::from_tokens(0.5), s2.commitment(), 30.0,
      chain::HtlcKind::kInverse});
  const chain::HtlcId c3 = ledger_.pending_contract_of(d3);
  queue_.run_until(kTau);
  ledger_.submit(chain::ClaimHtlcPayload{c1, wrong, bob_});   // fails
  ledger_.submit(chain::ClaimHtlcPayload{c1, s1, bob_});      // lands
  ledger_.submit(chain::RefundHtlcPayload{c1, alice_});       // too early
  ledger_.submit(chain::CancelHtlcPayload{c3, alice_});
  // Vault: deposit, partial release, and an underfunded release.
  ledger_.submit(chain::DepositCollateralPayload{
      bob_, chain::Amount::from_tokens(2.0)});
  queue_.run_until(2.0 * kTau);
  ledger_.submit(chain::ReleaseCollateralPayload{
      alice_, chain::Amount::from_tokens(1.0)});
  ledger_.submit(chain::ReleaseCollateralPayload{
      alice_, chain::Amount::from_tokens(99.0)});              // fails
  queue_.run();

  EXPECT_TRUE(auditor_.ok()) << (auditor_.violations().empty()
                                     ? ""
                                     : auditor_.violations().front().what);
  EXPECT_GT(auditor_.checks_run(), 8u);
  EXPECT_EQ(ledger_.total_supply(), supply);
}

TEST_F(AuditorTest, VaultReleaseAttributionStaysConsistent) {
  // Regression for the apply_release bug: releases used to decrement the
  // pool total but not the per-depositor map, so vault_deposits drifted
  // away from vault_total.  The auditor's vault check fails loudly if the
  // bug is reintroduced.
  auditor_.attach(ledger_);
  ledger_.submit(chain::DepositCollateralPayload{
      alice_, chain::Amount::from_tokens(3.0)});
  ledger_.submit(chain::DepositCollateralPayload{
      bob_, chain::Amount::from_tokens(2.0)});
  queue_.run_until(kTau);
  // 4 tokens to Bob: his own 2 come back first, the remaining 2 are drawn
  // from Alice's deposit.
  ledger_.submit(chain::ReleaseCollateralPayload{
      bob_, chain::Amount::from_tokens(4.0)});
  queue_.run();

  EXPECT_TRUE(auditor_.ok()) << (auditor_.violations().empty()
                                     ? ""
                                     : auditor_.violations().front().what);
  EXPECT_EQ(ledger_.vault_total(), chain::Amount::from_tokens(1.0));
  EXPECT_EQ(ledger_.vault_deposit_of(bob_), chain::Amount{});
  EXPECT_EQ(ledger_.vault_deposit_of(alice_), chain::Amount::from_tokens(1.0));
  // The breakdown map carries no zeroed-out entries and sums to the total.
  chain::Amount sum;
  for (const auto& [who, amount] : ledger_.vault_deposits()) {
    EXPECT_FALSE(amount.is_zero()) << who.value;
    sum += amount;
  }
  EXPECT_EQ(sum, ledger_.vault_total());
  EXPECT_EQ(ledger_.balance(bob_), chain::Amount::from_tokens(7.0));
}

TEST_F(AuditorTest, DetectsSupplyViolation) {
  auditor_.attach(ledger_);
  // Minting mid-run (illegitimate after attach) breaks the conserved
  // baseline; the very next applied transaction exposes it.
  ledger_.create_account(chain::Address{"minter"},
                         chain::Amount::from_tokens(1.0));
  ledger_.submit(chain::TransferPayload{alice_, bob_,
                                        chain::Amount::from_tokens(1.0)});
  queue_.run();
  ASSERT_FALSE(auditor_.ok());
  EXPECT_NE(auditor_.violations().front().what.find("supply"),
            std::string::npos);
}

TEST_F(AuditorTest, StrictModeThrowsAtFirstViolation) {
  auditor_.attach(ledger_);
  auditor_.set_throw_on_violation(true);
  ledger_.create_account(chain::Address{"minter"},
                         chain::Amount::from_tokens(1.0));
  ledger_.submit(chain::TransferPayload{alice_, bob_,
                                        chain::Amount::from_tokens(1.0)});
  EXPECT_THROW(queue_.run(), std::logic_error);
  // Recorded as well as thrown.
  EXPECT_FALSE(auditor_.ok());
}

TEST_F(AuditorTest, DetachStopsAuditing) {
  auditor_.attach(ledger_);
  auditor_.detach();
  ledger_.create_account(chain::Address{"minter"},
                         chain::Amount::from_tokens(1.0));
  ledger_.submit(chain::TransferPayload{alice_, bob_,
                                        chain::Amount::from_tokens(1.0)});
  queue_.run();
  EXPECT_TRUE(auditor_.ok());
  EXPECT_EQ(auditor_.checks_run(), 0u);
}

TEST(AuditorProtocol, WholeProtocolRunsStayClean) {
  // run_swap attaches auditors by default; every mechanism and every
  // decision path must come back invariant-clean.
  const proto::ConstantPricePath path(2.0);
  proto::SwapSetup setup;
  setup.params = model::SwapParams::table3_defaults();
  setup.p_star = 2.0;

  struct Case {
    double collateral;
    double premium;
    agents::Stage defect_stage;
    bool defect = false;
  };
  const Case cases[] = {
      {0.0, 0.0, agents::Stage::kT1Initiate, false},   // basic success
      {0.5, 0.0, agents::Stage::kT1Initiate, false},   // collateralized
      {0.0, 0.1, agents::Stage::kT1Initiate, false},   // premium escrow
      {0.0, 0.1, agents::Stage::kT2Lock, true},        // bob walks away
      {0.5, 0.0, agents::Stage::kT3Reveal, true},      // alice withholds
      {0.0, 0.0, agents::Stage::kT4Claim, true},       // bob crashes at t4
  };
  for (const Case& c : cases) {
    setup.collateral = c.collateral;
    setup.premium = c.premium;
    agents::HonestStrategy honest_alice, honest_bob;
    proto::SwapResult r = [&] {
      if (!c.defect) {
        return proto::run_swap(setup, honest_alice, honest_bob, path);
      }
      agents::DefectorStrategy defector(c.defect_stage);
      const bool alice_defects = c.defect_stage == agents::Stage::kT1Initiate ||
                                 c.defect_stage == agents::Stage::kT3Reveal;
      return alice_defects
                 ? proto::run_swap(setup, defector, honest_bob, path)
                 : proto::run_swap(setup, honest_alice, defector, path);
    }();
    EXPECT_TRUE(r.invariants_ok)
        << "Q=" << c.collateral << " pr=" << c.premium
        << (r.invariant_violations.empty() ? ""
                                           : r.invariant_violations.front());
    EXPECT_TRUE(r.invariant_violations.empty());
    EXPECT_TRUE(r.conservation_ok);
  }
}

}  // namespace
}  // namespace swapgame
