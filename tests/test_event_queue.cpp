// Unit tests for the discrete-event scheduler (src/chain/event_queue).
#include "chain/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace swapgame::chain {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleNewEvents) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] {
    fired.push_back(q.now());
    q.schedule_at(2.0, [&] { fired.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_EQ(fired_at, 7.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(1.0); });
  q.schedule_at(2.0, [&] { fired.push_back(2.0); });
  q.schedule_at(5.0, [&] { fired.push_back(5.0); });
  EXPECT_EQ(q.run_until(3.0), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(q.now(), 3.0);   // clock advanced even with no event at 3.0
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired.back(), 5.0);
}

TEST(EventQueue, RunUntilIncludesEventsAtBoundary) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(2.0, [&] { fired = true; });
  q.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RunWithLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RejectsPastAndInvalidScheduling) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run();
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule_at(2.0, [] {}));  // "now" is allowed
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(3.0, EventQueue::Callback{}),
               std::invalid_argument);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilRejectsPast) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW((void)q.run_until(4.0), std::invalid_argument);
}

TEST(EventQueue, HeapChurnPreservesGlobalWhenSeqOrder) {
  // Regression for the vector+push_heap/pop_heap rewrite (the old
  // priority_queue step() moved through a const_cast on top(), formally
  // UB): under heavy interleaved scheduling -- including callbacks that
  // schedule more events at equal and later times -- every event still
  // fires in strict (when, then scheduling-order) sequence.
  EventQueue q;
  std::vector<std::pair<double, int>> fired;
  int tag = 0;
  // A deterministic but scrambled schedule: times cycle through a residue
  // pattern so insertion order is far from heap order.
  for (int i = 0; i < 200; ++i) {
    const double when = static_cast<double>((i * 7) % 31) + 0.25 * (i % 4);
    q.schedule_at(when, [&fired, &q, &tag, when] {
      fired.push_back({when, tag++});
      if (fired.size() % 3 == 0) {
        const double again = q.now() + static_cast<double>(fired.size() % 5);
        q.schedule_at(again, [&fired, &tag, again] {
          fired.push_back({again, tag++});
        });
      }
    });
  }
  q.run();
  ASSERT_GE(fired.size(), 200u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);  // time-ordered
    EXPECT_LT(fired[i - 1].second, fired[i].second);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace swapgame::chain
