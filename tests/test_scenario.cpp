// Tests for the scenario sweep harness (src/sim/scenario) running on the
// batch engine (src/engine/scenario_batch).
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/scenario_batch.hpp"
#include "model/basic_game.hpp"
#include "model/collateral_game.hpp"
#include "model/premium_game.hpp"

namespace swapgame::sim {
namespace {

model::SwapParams defaults() { return model::SwapParams::table3_defaults(); }

TEST(MechanismNames, ToString) {
  EXPECT_STREQ(to_string(Mechanism::kNone), "htlc");
  EXPECT_STREQ(to_string(Mechanism::kCollateral), "htlc+collateral");
  EXPECT_STREQ(to_string(Mechanism::kPremium), "htlc+premium");
}

TEST(RunScenarios, AnalyticSrMatchesPerMechanismSolvers) {
  const std::vector<ScenarioPoint> points = {
      {"plain", defaults(), 2.0, Mechanism::kNone, 0.0},
      {"collateral", defaults(), 2.0, Mechanism::kCollateral, 0.5},
      {"premium", defaults(), 2.0, Mechanism::kPremium, 0.5},
  };
  McConfig cfg;
  cfg.samples = 400;
  cfg.seed = 77;
  const auto results = engine::run_scenarios(points, cfg);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NEAR(results[0].analytic_sr,
              model::BasicGame(defaults(), 2.0).success_rate(), 1e-9);
  EXPECT_NEAR(results[1].analytic_sr,
              model::CollateralGame(defaults(), 2.0, 0.5).success_rate(),
              1e-9);
  EXPECT_NEAR(results[2].analytic_sr,
              model::PremiumGame(defaults(), 2.0, 0.5).success_rate(), 1e-9);
  for (const ScenarioResult& r : results) {
    EXPECT_TRUE(r.initiated) << r.point.label;
  }
}

TEST(RunScenarios, ProtocolSrTracksAnalytic) {
  const std::vector<ScenarioPoint> points = {
      {"plain", defaults(), 2.0, Mechanism::kNone, 0.0},
      {"collateral", defaults(), 2.0, Mechanism::kCollateral, 1.0},
  };
  McConfig cfg;
  cfg.samples = 1200;
  cfg.seed = 78;
  const auto results = engine::run_scenarios(points, cfg);
  for (const ScenarioResult& r : results) {
    EXPECT_NEAR(r.protocol_sr, r.analytic_sr, 0.05) << r.point.label;
    EXPECT_LE(r.protocol_sr_ci_lo, r.protocol_sr + 1e-12);
    EXPECT_GE(r.protocol_sr_ci_hi, r.protocol_sr - 1e-12);
  }
  // Fig. 9 ordering survives the full pipeline.
  EXPECT_GT(results[1].protocol_sr, results[0].protocol_sr);
}

TEST(RunScenarios, NonViableCellReportsNotInitiated) {
  const std::vector<ScenarioPoint> points = {
      {"absurd-rate", defaults(), 6.0, Mechanism::kNone, 0.0},
  };
  McConfig cfg;
  cfg.samples = 50;
  cfg.seed = 79;
  const auto results = engine::run_scenarios(points, cfg);
  EXPECT_FALSE(results[0].initiated);
  // Never-initiated cells report NaN (conditioning on an empty event), not
  // a fake "always fails" zero.
  EXPECT_TRUE(std::isnan(results[0].protocol_sr));
}

TEST(CsvTable, RendersHeaderAndRows) {
  CsvTable table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"x", "y"});
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.to_string(), "a,b\n1,2\nx,y\n");
}

TEST(CsvTable, ValidatesShape) {
  EXPECT_THROW(CsvTable({}), std::invalid_argument);
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace swapgame::sim
